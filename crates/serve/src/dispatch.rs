//! Shared dispatch machinery: the functional execution of one batch on
//! a leased cluster slice, used by both the single-cluster
//! [`crate::ProofService`] runner and the multi-cluster
//! [`crate::FleetService`] runner.
//!
//! Execution here is *eager* but commit is the caller's job: running a
//! raw batch returns per-job [`Completion`]s (outcome + execution
//! interval) instead of pushing them into a report, so a fleet runner
//! can defer — and, after a chaos kill or a lost hedge race, discard —
//! results whose completion instant never arrives.

use std::collections::BTreeMap;

use rand::{rngs::StdRng, SeedableRng};
use unintt_core::{Cluster, ClusterNttEngine, UniNttOptions};
use unintt_ff::{BabyBear, Field, Goldilocks, PrimeField, TwoAdicField};
use unintt_fri::{commit_trace, verify_trace, FriConfig, LdeBackend};
use unintt_gpu_sim::{presets, FaultPlan, FieldSpec, KernelProfile};
use unintt_ntt::{batch_transform_parallel, Direction, KernelMode, Ntt};
use unintt_zkp::{
    prove, random_circuit, setup, verify, Backend, ProvingKey, VerifyingKey, Witness,
};

use unintt_pipeline::ProofPipeline;

use crate::coalesce::{BatchKey, QueuedJob, ReadyBatch};
use crate::config::{SchedulerPolicy, ServiceConfig};
use crate::job::{DagKind, JobId, JobOutcome, JobStatus, ServiceField};

/// Pins the process-wide host kernel mode for the duration of a batch,
/// restoring the previous mode on drop (so PLONK/STARK dispatches and
/// host code outside the service keep their own mode). Publishes the
/// active mode as the `sim_kernel_mode` gauge (0 = vector, 1 = fast,
/// 2 = legacy) when telemetry records.
struct KernelModeGuard {
    prev: KernelMode,
}

impl KernelModeGuard {
    fn pin(cfg: &ServiceConfig) -> Self {
        let prev = unintt_ntt::kernel_mode();
        let mode = unintt_core::kernel_mode_override().unwrap_or(cfg.kernel_mode);
        unintt_ntt::set_kernel_mode(mode);
        let encoded = match mode {
            KernelMode::Vector => 0.0,
            KernelMode::Fast => 1.0,
            KernelMode::Legacy => 2.0,
        };
        unintt_telemetry::gauge_set("sim_kernel_mode", encoded);
        Self { prev }
    }
}

impl Drop for KernelModeGuard {
    fn drop(&mut self) {
        unintt_ntt::set_kernel_mode(self.prev);
    }
}

/// Seed domain for per-job synthetic payloads.
const PAYLOAD_SEED: u64 = 0x0b5e_55ed_0d15_ea5e;
/// Seed domain for PLONK/STARK fixtures.
const FIXTURE_SEED: u64 = 0xf1c5_0123_4567_89ab;

/// Canned circuit + keys for PLONK jobs of one size.
struct PlonkFixture {
    pk: ProvingKey,
    vk: VerifyingKey,
    witness: Witness,
}

/// Process-lifetime caches shared by every dispatch a runner performs:
/// cluster engines per transform size and canned proof fixtures. Keyed
/// through `BTreeMap` so iteration (and thus behaviour) is deterministic.
#[derive(Default)]
pub(crate) struct EngineCaches {
    engines_g: BTreeMap<u32, ClusterNttEngine<Goldilocks>>,
    engines_b: BTreeMap<u32, ClusterNttEngine<BabyBear>>,
    plonk_fixtures: BTreeMap<u32, PlonkFixture>,
    stark_fixtures: BTreeMap<(u32, usize), Vec<Vec<Goldilocks>>>,
}

impl EngineCaches {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

/// One job's finished execution, not yet committed to a report.
#[derive(Clone, Debug)]
pub(crate) struct Completion {
    /// The fully built outcome (status is always `Completed`).
    pub outcome: JobOutcome,
    /// When the job's execution began on the lease, simulated ns.
    pub exec_start_ns: f64,
    /// The submitting job, so a fleet can re-dispatch it (priorities and
    /// deadlines intact) after a chaos kill or for a hedge.
    pub job: QueuedJob,
}

/// Result of one raw-NTT batch dispatch.
pub(crate) struct RawDispatch {
    /// Simulated time the lease was occupied (cluster delta + overhead).
    pub elapsed_ns: f64,
    /// Per-job completions, in batch order.
    pub completions: Vec<Completion>,
    /// Jobs not run because the lease ran out of healthy nodes; the
    /// caller requeues (or re-shards) them. No job is ever failed.
    pub leftover: Vec<QueuedJob>,
}

/// The batch `policy` would run next from `ready` (`None` when empty),
/// plus its scheduling key `(ready_ns, priority, cost, first_id)` so a
/// caller mixing batches with other work (DAG stages) can compare like
/// for like. Shared by the single-cluster runner and every fleet
/// cluster so all schedulers order work identically.
pub(crate) fn next_batch_index(
    ready: &[ReadyBatch],
    policy: SchedulerPolicy,
) -> Option<(usize, DispatchKey)> {
    let key = |b: &ReadyBatch| DispatchKey {
        ready_ns: b.ready_ns,
        priority: b
            .jobs
            .iter()
            .map(|j| j.spec.priority)
            .max()
            .unwrap_or_default(),
        cost: b
            .jobs
            .iter()
            .map(|j| j.spec.class.estimated_cost())
            .sum::<f64>(),
        id: b.first_id(),
    };
    ready
        .iter()
        .enumerate()
        .map(|(i, b)| (i, key(b)))
        .min_by(|(_, a), (_, b)| a.cmp_under(b, policy))
}

/// The policy-relevant attributes of one schedulable unit (a ready batch
/// or a ready DAG stage), so heterogeneous work competes for a lease
/// under one ordering.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DispatchKey {
    /// When the unit became dispatchable, simulated ns.
    pub ready_ns: f64,
    /// Scheduling priority (max over batch members).
    pub priority: crate::job::Priority,
    /// Estimated cost for shortest-job-first.
    pub cost: f64,
    /// Submission-order tiebreak.
    pub id: JobId,
}

impl DispatchKey {
    /// Total order under `policy`: smallest compares first.
    pub fn cmp_under(&self, other: &Self, policy: SchedulerPolicy) -> std::cmp::Ordering {
        let fifo = self
            .ready_ns
            .partial_cmp(&other.ready_ns)
            .expect("ready times are finite")
            .then(self.id.cmp(&other.id));
        match policy {
            SchedulerPolicy::Fifo => fifo,
            SchedulerPolicy::Priority => other.priority.cmp(&self.priority).then(fifo),
            SchedulerPolicy::ShortestJobFirst => self
                .cost
                .partial_cmp(&other.cost)
                .expect("costs are finite")
                .then(fifo),
        }
    }
}

/// Removes and returns the batch `policy` runs next from `ready`.
pub(crate) fn take_next_batch(ready: &mut Vec<ReadyBatch>, policy: SchedulerPolicy) -> ReadyBatch {
    let (idx, _) = next_batch_index(ready, policy).expect("take_next_batch with ready batches");
    ready.swap_remove(idx)
}

/// Splits a dequeued batch into still-viable jobs and
/// [`JobStatus::DeadlineExceeded`] outcomes for members whose deadline
/// passed while they sat queued — those are cancelled at `now` and never
/// occupy a lease.
pub(crate) fn split_expired(jobs: Vec<QueuedJob>, now: f64) -> (Vec<QueuedJob>, Vec<JobOutcome>) {
    let mut live = Vec::with_capacity(jobs.len());
    let mut expired = Vec::new();
    for job in jobs {
        match job.spec.deadline_ns {
            Some(deadline_ns) if deadline_ns <= now => expired.push(JobOutcome {
                id: job.id,
                tenant: job.spec.tenant,
                class_name: job.spec.class.name(),
                status: JobStatus::DeadlineExceeded { deadline_ns },
                arrival_ns: job.spec.arrival_ns,
                completed_ns: now,
                batch_size: 0,
                retries: 0,
                replans: 0,
                missed_deadline: true,
                output_digest: 0,
            }),
            _ => live.push(job),
        }
    }
    (live, expired)
}

/// Runs a coalesced raw-NTT batch on `cluster`: every member shares the
/// lease, the plan (from the engine cache), and — crucially — one fixed
/// dispatch overhead. Member jobs execute back-to-back with fault
/// recovery; a job that cannot complete because the lease lost its last
/// healthy node lands in `leftover`.
pub(crate) fn run_raw_batch(
    caches: &mut EngineCaches,
    cfg: &ServiceConfig,
    key: BatchKey,
    jobs: &[QueuedJob],
    cluster: &mut Cluster,
    dispatch_seq: u64,
    start_ns: f64,
) -> RawDispatch {
    match key.field {
        ServiceField::Goldilocks => run_raw_batch_in::<Goldilocks>(
            &mut caches.engines_g,
            cfg,
            FieldSpec::goldilocks(),
            key,
            jobs,
            cluster,
            dispatch_seq,
            start_ns,
        ),
        ServiceField::BabyBear => run_raw_batch_in::<BabyBear>(
            &mut caches.engines_b,
            cfg,
            FieldSpec::babybear(),
            key,
            jobs,
            cluster,
            dispatch_seq,
            start_ns,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_raw_batch_in<F: TwoAdicField>(
    engines: &mut BTreeMap<u32, ClusterNttEngine<F>>,
    cfg: &ServiceConfig,
    field_spec: FieldSpec,
    key: BatchKey,
    jobs: &[QueuedJob],
    cluster: &mut Cluster,
    dispatch_seq: u64,
    start_ns: f64,
) -> RawDispatch {
    let _kernels = KernelModeGuard::pin(cfg);
    let engine = engines.entry(key.log_n).or_insert_with(|| {
        let node_cfg = presets::a100_nvlink(cfg.lease.gpus_per_node);
        let mut opts = UniNttOptions::tuned_for(&field_spec);
        opts.comm_mode = cfg.comm_mode;
        opts.host_kernels = cfg.kernel_mode;
        ClusterNttEngine::new(key.log_n, cfg.lease.nodes, &node_cfg, opts, field_spec)
    });
    if let Some(rates) = cfg.fault_rates {
        for node in 0..cluster.num_nodes() {
            let seed = cfg.fault_seed
                ^ dispatch_seq.wrapping_mul(0xa076_1d64_78bd_642f)
                ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            cluster
                .node_mut(node)
                .set_fault_plan(FaultPlan::random(seed, rates));
        }
    }
    let n = 1usize << key.log_n;
    let direction = if key.forward {
        Direction::Forward
    } else {
        Direction::Inverse
    };
    let inputs: Vec<Vec<F>> = jobs.iter().map(|j| payload::<F>(j.id, key.log_n)).collect();

    // CPU references for the whole batch in one batched call — the
    // service's host-side check rides the same `ntt::batch` path and
    // shared plan/twiddle caches provers use.
    let references: Option<Vec<F>> = cfg.verify_outputs.then(|| {
        let ntt = Ntt::<F>::new(key.log_n);
        let mut flat: Vec<F> = inputs.iter().flatten().copied().collect();
        batch_transform_parallel(&ntt, &mut flat, direction, jobs.len().min(8));
        flat
    });

    let inv_n = F::from_u64(n as u64)
        .inverse()
        .expect("domain size is invertible in an NTT-friendly field");
    let t0 = cluster.total_time_ns();
    let mut completions = Vec::with_capacity(jobs.len());
    let mut leftover = Vec::new();
    for (idx, (job, input)) in jobs.iter().zip(&inputs).enumerate() {
        let exec_start_ns = start_ns + (cluster.total_time_ns() - t0);
        match engine.forward_with_recovery(cluster, input, &cfg.recovery) {
            Ok(mut report) => {
                let output = if key.forward {
                    std::mem::take(&mut report.output)
                } else {
                    inverse_from_forward(&report.output, inv_n, cluster)
                };
                if let Some(flat) = &references {
                    assert_eq!(
                        output,
                        flat[idx * n..(idx + 1) * n],
                        "cluster output diverged from the CPU reference for {}",
                        job.id
                    );
                }
                let done = start_ns + (cluster.total_time_ns() - t0) + cfg.dispatch_overhead_ns;
                completions.push(Completion {
                    outcome: JobOutcome {
                        id: job.id,
                        tenant: job.spec.tenant,
                        class_name: job.spec.class.name(),
                        status: JobStatus::Completed,
                        arrival_ns: job.spec.arrival_ns,
                        completed_ns: done,
                        batch_size: jobs.len(),
                        retries: report.total_retries(),
                        replans: report.replans,
                        missed_deadline: job.spec.deadline_ns.is_some_and(|d| done > d),
                        output_digest: digest(&output),
                    },
                    exec_start_ns,
                    job: *job,
                });
            }
            Err(_) => {
                leftover.extend_from_slice(&jobs[idx..]);
                break;
            }
        }
    }
    RawDispatch {
        elapsed_ns: cluster.total_time_ns() - t0 + cfg.dispatch_overhead_ns,
        completions,
        leftover,
    }
}

/// The canned PLONK fixture for one circuit size (built on first use).
fn plonk_fixture(caches: &mut EngineCaches, log_gates: u32) -> &PlonkFixture {
    caches.plonk_fixtures.entry(log_gates).or_insert_with(|| {
        let mut rng = StdRng::seed_from_u64(FIXTURE_SEED ^ u64::from(log_gates));
        let (circuit, witness) = random_circuit(1usize << log_gates, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        PlonkFixture { pk, vk, witness }
    })
}

/// The canned STARK trace for one shape (built on first use).
fn stark_fixture(
    caches: &mut EngineCaches,
    log_trace: u32,
    columns: usize,
) -> &Vec<Vec<Goldilocks>> {
    caches
        .stark_fixtures
        .entry((log_trace, columns))
        .or_insert_with(|| {
            let mut rng =
                StdRng::seed_from_u64(FIXTURE_SEED ^ (u64::from(log_trace) << 32) ^ columns as u64);
            (0..columns)
                .map(|_| {
                    (0..1usize << log_trace)
                        .map(|_| Goldilocks::random(&mut rng))
                        .collect()
                })
                .collect()
        })
}

/// A PLONK proof over the canned circuit of the requested size, run
/// through the simulated backend. Returns the simulated duration
/// (excluding the fixed dispatch overhead; the caller charges that) and
/// the proof's content digest.
pub(crate) fn run_plonk(
    caches: &mut EngineCaches,
    cfg: &ServiceConfig,
    log_gates: u32,
) -> (f64, u64) {
    let gpus = cfg.lease.total_gpus();
    let verify_outputs = cfg.verify_outputs;
    let fixture = plonk_fixture(caches, log_gates);
    let mut backend = Backend::simulated(presets::a100_nvlink(gpus), presets::a100_nvlink(gpus));
    let proof = prove(&fixture.pk, &fixture.witness, &[], &mut backend);
    if verify_outputs {
        assert!(
            verify(&fixture.vk, &proof, &[]),
            "service-produced proof must verify"
        );
    }
    (backend.report().total_ns(), proof.content_digest())
}

/// A STARK trace commitment over a canned trace, run through the
/// simulated LDE backend. Returns the simulated duration and the
/// commitment's content digest.
pub(crate) fn run_stark(
    caches: &mut EngineCaches,
    cfg: &ServiceConfig,
    log_trace: u32,
    columns: usize,
) -> (f64, u64) {
    let gpus = cfg.lease.total_gpus();
    let verify_outputs = cfg.verify_outputs;
    let trace = stark_fixture(caches, log_trace, columns);
    let mut backend = LdeBackend::simulated(presets::a100_nvlink(gpus));
    let config = FriConfig::standard();
    let commitment = commit_trace(trace, &config, &mut backend);
    if verify_outputs {
        assert!(
            verify_trace(&commitment, &config),
            "service-produced commitment must verify"
        );
    }
    (backend.sim_time_ns(), commitment.content_digest())
}

/// Builds the staged pipeline for a [`DagKind`] job over the *same*
/// fixtures the monolithic runners use, so the finished output digest is
/// identical to the monolithic dispatch's.
pub(crate) fn build_dag(
    caches: &mut EngineCaches,
    cfg: &ServiceConfig,
    kind: DagKind,
) -> ProofPipeline {
    let gpus = cfg.lease.total_gpus();
    match kind {
        DagKind::Plonk { log_gates } => {
            let fixture = plonk_fixture(caches, log_gates);
            let backend =
                Backend::simulated(presets::a100_nvlink(gpus), presets::a100_nvlink(gpus));
            ProofPipeline::plonk(&fixture.pk, &fixture.witness, &[], backend)
        }
        DagKind::Stark { log_trace, columns } => {
            let trace = stark_fixture(caches, log_trace, columns).clone();
            let backend = LdeBackend::simulated(presets::a100_nvlink(gpus));
            ProofPipeline::stark(trace, FriConfig::standard(), backend)
        }
    }
}

/// Verifies a completed DAG pipeline's output against the same checks
/// the monolithic runners apply (called only when `verify_outputs` is
/// on).
pub(crate) fn verify_dag_output(caches: &mut EngineCaches, kind: DagKind, pipe: &ProofPipeline) {
    match kind {
        DagKind::Plonk { log_gates } => {
            let fixture = plonk_fixture(caches, log_gates);
            let proof = pipe.proof().expect("complete PLONK pipeline");
            assert!(
                verify(&fixture.vk, proof, &[]),
                "DAG-produced proof must verify"
            );
        }
        DagKind::Stark { .. } => {
            let commitment = pipe.commitment().expect("complete STARK pipeline");
            assert!(
                verify_trace(commitment, &FriConfig::standard()),
                "DAG-produced commitment must verify"
            );
        }
    }
}

/// Records the lifecycle spans for one completed job on its own track:
/// a `job` root covering arrival → completion, with `queued` and
/// `execute` children splitting the interval at dispatch time. No-op
/// when telemetry is disabled.
pub(crate) fn record_job_spans(
    id: JobId,
    class: &'static str,
    arrival_ns: f64,
    exec_start_ns: f64,
    done_ns: f64,
    batch_size: usize,
) {
    let Some(root) = unintt_telemetry::reserve_span_id() else {
        return;
    };
    use unintt_telemetry::{fresh_id, record_span, Span, SpanLevel};
    let track = id.to_string();
    record_span(|| Span {
        id: fresh_id(),
        parent: Some(root),
        name: "queued".into(),
        level: SpanLevel::Serve,
        category: "queue",
        track: track.clone(),
        t_start_ns: arrival_ns,
        t_end_ns: exec_start_ns,
        attrs: vec![],
    });
    record_span(|| Span {
        id: fresh_id(),
        parent: Some(root),
        name: "execute".into(),
        level: SpanLevel::Serve,
        category: "execute",
        track: track.clone(),
        t_start_ns: exec_start_ns,
        t_end_ns: done_ns,
        attrs: vec![("class", class.into())],
    });
    record_span(|| Span {
        id: root,
        parent: None,
        name: "job".into(),
        level: SpanLevel::Serve,
        category: "job",
        track,
        t_start_ns: arrival_ns,
        t_end_ns: done_ns,
        attrs: vec![("class", class.into()), ("batch", batch_size.into())],
    });
    unintt_telemetry::counter_add("serve_jobs_completed", 1);
}

/// Commits one completion: records its lifecycle spans and returns the
/// outcome for the report.
pub(crate) fn commit_completion(c: &Completion) -> JobOutcome {
    record_job_spans(
        c.outcome.id,
        c.outcome.class_name,
        c.outcome.arrival_ns,
        c.exec_start_ns,
        c.outcome.completed_ns,
        c.outcome.batch_size,
    );
    c.outcome
}

/// Deterministic synthetic payload for one raw job.
fn payload<F: Field>(id: JobId, log_n: u32) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(PAYLOAD_SEED ^ id.0.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (0..1usize << log_n).map(|_| F::random(&mut rng)).collect()
}

/// FNV-1a over canonical representatives: the output fingerprint chaos
/// experiments compare against a fault-free run.
fn digest<F: PrimeField>(out: &[F]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in out {
        h ^= x.to_canonical_u64();
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The inverse transform from a forward cluster run:
/// `INTT(a)[j] = n⁻¹ · NTT(a)[(n−j) mod n]`. The index reversal and scale
/// are charged as one small fused kernel on the first healthy node.
fn inverse_from_forward<F: Field>(forward: &[F], inv_n: F, cluster: &mut Cluster) -> Vec<F> {
    let n = forward.len();
    let mut out = vec![F::ZERO; n];
    out[0] = forward[0] * inv_n;
    for j in 1..n {
        out[j] = forward[n - j] * inv_n;
    }
    if let Some(&node) = cluster.healthy_nodes().first() {
        let mut profile = KernelProfile::named("serve-inverse-fixup");
        profile.field_muls = n as u64;
        profile.blocks = (n as u64 / 256).max(1);
        let mut unused = ();
        cluster.node_mut(node).on_device(0, &mut unused, |ctx, _| {
            ctx.launch(&profile);
        });
    }
    out
}
