//! Field-arithmetic microbenchmarks: the per-operation costs that justify
//! the simulator's `FieldSpec` ratios (Goldilocks ≈ 1 limb-mul unit,
//! BN254-Fr ≈ 20×).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;
use unintt_ff::{BabyBear, Bn254Fr, Field, Goldilocks};

fn bench_field<F: Field>(c: &mut Criterion, name: &str) {
    let mut rng = StdRng::seed_from_u64(42);
    let a = F::random(&mut rng);
    let b = F::random(&mut rng);

    let mut group = c.benchmark_group(format!("field/{name}"));
    group.bench_function("mul", |bench| {
        bench.iter(|| black_box(black_box(a) * black_box(b)))
    });
    group.bench_function("add", |bench| {
        bench.iter(|| black_box(black_box(a) + black_box(b)))
    });
    group.bench_function("square", |bench| {
        bench.iter(|| black_box(black_box(a).square()))
    });
    group.bench_function("inverse", |bench| {
        bench.iter(|| black_box(black_box(a).inverse()))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_field::<Goldilocks>(c, "goldilocks");
    bench_field::<BabyBear>(c, "babybear");
    bench_field::<Bn254Fr>(c, "bn254_fr");
}

criterion_group!(field_benches, benches);
criterion_main!(field_benches);
