//! Wall-clock MSM benchmarks: Pippenger vs naive, and scaling with size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{Bn254Fr, Field};
use unintt_msm::{msm, msm_naive, G1Affine};

fn random_pairs(n: usize, seed: u64) -> (Vec<Bn254Fr>, Vec<G1Affine>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let scalars = (0..n).map(|_| Bn254Fr::random(&mut rng)).collect();
    let points = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
    (scalars, points)
}

fn bench_pippenger(c: &mut Criterion) {
    let mut group = c.benchmark_group("msm/pippenger");
    group.sample_size(10);
    for log_n in [6u32, 8, 10] {
        let n = 1usize << log_n;
        let (scalars, points) = random_pairs(n, log_n as u64);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_n}")),
            &n,
            |b, _| b.iter(|| msm(&scalars, &points)),
        );
    }
    group.finish();
}

fn bench_pippenger_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("msm/pippenger_vs_naive_2^7");
    group.sample_size(10);
    let (scalars, points) = random_pairs(128, 7);
    group.bench_function("pippenger", |b| b.iter(|| msm(&scalars, &points)));
    group.bench_function("naive", |b| b.iter(|| msm_naive(&scalars, &points)));
    group.finish();
}

criterion_group!(msm_benches, bench_pippenger, bench_pippenger_vs_naive);
criterion_main!(msm_benches);
