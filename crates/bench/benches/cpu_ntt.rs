//! E10 — wall-clock CPU NTT benchmarks (serial vs multithreaded, both
//! fields), the real-hardware baseline of the reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{Bn254Fr, Field, Goldilocks};
use unintt_ntt::{Ntt, ParallelNtt};

fn random_vec<F: Field>(n: usize, seed: u64) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| F::random(&mut rng)).collect()
}

fn bench_serial_goldilocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_ntt/serial/goldilocks");
    group.sample_size(10);
    for log_n in [12u32, 14, 16, 18] {
        let n = 1usize << log_n;
        let ntt = Ntt::<Goldilocks>::new(log_n);
        let input = random_vec::<Goldilocks>(n, log_n as u64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_n}")),
            &n,
            |b, _| {
                b.iter_batched(
                    || input.clone(),
                    |mut data| ntt.forward(&mut data),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_serial_bn254(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_ntt/serial/bn254_fr");
    group.sample_size(10);
    for log_n in [12u32, 14, 16] {
        let n = 1usize << log_n;
        let ntt = Ntt::<Bn254Fr>::new(log_n);
        let input = random_vec::<Bn254Fr>(n, log_n as u64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_n}")),
            &n,
            |b, _| {
                b.iter_batched(
                    || input.clone(),
                    |mut data| ntt.forward(&mut data),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_ntt/parallel/goldilocks_2^18");
    group.sample_size(10);
    let log_n = 18u32;
    let input = random_vec::<Goldilocks>(1 << log_n, 1);
    for threads in [1usize, 2, 4, 8] {
        let ntt = ParallelNtt::<Goldilocks>::new(log_n, threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &threads,
            |b, _| {
                b.iter_batched(
                    || input.clone(),
                    |mut data| ntt.forward(&mut data),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_radix4(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_ntt/radix4_vs_radix2/goldilocks_2^16");
    group.sample_size(10);
    let log_n = 16u32;
    let ntt = Ntt::<Goldilocks>::new(log_n);
    let input = random_vec::<Goldilocks>(1 << log_n, 2);
    group.bench_function("radix2", |b| {
        b.iter_batched(
            || input.clone(),
            |mut data| ntt.forward(&mut data),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("radix4", |b| {
        b.iter_batched(
            || input.clone(),
            |mut data| ntt.forward_radix4(&mut data),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_bitrev(c: &mut Criterion) {
    // The table-driven bit-reversal permutation on its own: the dominant
    // non-arithmetic cost of the legacy path at large sizes.
    let mut group = c.benchmark_group("cpu_ntt/bitrev/goldilocks");
    group.sample_size(10);
    for log_n in [12u32, 16, 20] {
        let n = 1usize << log_n;
        let input = random_vec::<Goldilocks>(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_n}")),
            &n,
            |b, _| {
                b.iter_batched(
                    || input.clone(),
                    |mut data| unintt_ntt::bit_reverse_permute(&mut data),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_kernel_modes(c: &mut Criterion) {
    // Legacy vs Shoup/six-step on the same size — the ratio the
    // `bench-host` harness gate tracks, as a criterion entry.
    use unintt_ntt::{set_kernel_mode, KernelMode};
    let mut group = c.benchmark_group("cpu_ntt/kernel_modes/goldilocks_2^18");
    group.sample_size(10);
    let log_n = 18u32;
    let ntt = Ntt::<Goldilocks>::new(log_n);
    let input = random_vec::<Goldilocks>(1 << log_n, 4);
    group.bench_function("legacy", |b| {
        set_kernel_mode(KernelMode::Legacy);
        b.iter_batched(
            || input.clone(),
            |mut data| ntt.forward(&mut data),
            criterion::BatchSize::LargeInput,
        );
        set_kernel_mode(KernelMode::Fast);
    });
    group.bench_function("shoup", |b| {
        b.iter_batched(
            || input.clone(),
            |mut data| ntt.forward(&mut data),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_goldilocks,
    bench_serial_bn254,
    bench_parallel,
    bench_radix4,
    bench_bitrev,
    bench_kernel_modes
);
criterion_main!(benches);
