//! Algorithm-variant wall-clock benches: the ablation data behind the
//! design choices DESIGN.md calls out (kernel shape, digit encoding,
//! hash-based commitment cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{Bn254Fr, Field, Goldilocks};
use unintt_fri::{commit_trace, hash_elements, FriConfig, LdeBackend};
use unintt_msm::{msm_signed_with_window, msm_with_window, G1Affine};
use unintt_ntt::Ntt;

fn random_vec<F: Field>(n: usize, seed: u64) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| F::random(&mut rng)).collect()
}

fn bench_ntt_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("variants/ntt_kernels/goldilocks_2^16");
    group.sample_size(10);
    let log_n = 16u32;
    let ntt = Ntt::<Goldilocks>::new(log_n);
    let input = random_vec::<Goldilocks>(1 << log_n, 1);
    group.bench_function("radix2_bitrev", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| ntt.forward(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("radix4_fused", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| ntt.forward_radix4(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("stockham_autosort", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| ntt.forward_stockham(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_msm_digits(c: &mut Criterion) {
    let mut group = c.benchmark_group("variants/msm_digits/2^9");
    group.sample_size(10);
    let n = 1usize << 9;
    let mut rng = StdRng::seed_from_u64(2);
    let scalars = random_vec::<Bn254Fr>(n, 3);
    let points: Vec<G1Affine> = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
    let window = 8;
    group.bench_function("unsigned", |b| {
        b.iter(|| msm_with_window(&scalars, &points, window))
    });
    group.bench_function("signed", |b| {
        b.iter(|| msm_signed_with_window(&scalars, &points, window + 1))
    });
    group.finish();
}

fn bench_hash_and_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("variants/fri");
    group.sample_size(10);
    let input = random_vec::<Goldilocks>(1 << 10, 4);
    group.bench_function("sponge_hash_2^10_elems", |b| {
        b.iter(|| hash_elements(&input))
    });

    let config = FriConfig::standard();
    let trace: Vec<Vec<Goldilocks>> = (0..4).map(|i| random_vec(1 << 10, 10 + i)).collect();
    group.bench_function("trace_commit_2^10x4", |b| {
        b.iter(|| commit_trace(&trace, &config, &mut LdeBackend::cpu()))
    });
    group.finish();
}

criterion_group!(
    variant_benches,
    bench_ntt_variants,
    bench_msm_digits,
    bench_hash_and_commit
);
criterion_main!(variant_benches);
