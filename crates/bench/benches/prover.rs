//! Wall-clock end-to-end prover benchmark (CPU backend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unintt_zkp::{prove, random_circuit, setup, Backend};

fn bench_prover(c: &mut Criterion) {
    let mut group = c.benchmark_group("prover/cpu");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for log_rows in [6u32, 8] {
        let rows = 1usize << log_rows;
        let (circuit, witness) = random_circuit(rows, &mut rng);
        let (pk, _vk) = setup(&circuit, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_rows}_gates")),
            &rows,
            |b, _| {
                b.iter(|| {
                    let mut backend = Backend::cpu();
                    prove(&pk, &witness, &[], &mut backend)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(prover_benches, bench_prover);
criterion_main!(prover_benches);
