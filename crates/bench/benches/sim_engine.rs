//! Wall-clock cost of the *simulator itself*: how fast the functional
//! multi-GPU engine executes on the host, and how cheap the cost-only
//! path is. (Simulated time is an output, not what Criterion measures.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use unintt_core::{ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Field, Goldilocks};
use unintt_gpu_sim::{presets, FieldSpec, Machine};

fn bench_functional_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/functional_forward/goldilocks");
    group.sample_size(10);
    let gpus = 4;
    let cfg = presets::a100_nvlink(gpus);
    let fs = FieldSpec::goldilocks();
    let mut rng = StdRng::seed_from_u64(3);
    for log_n in [14u32, 16, 18] {
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
        let input: Vec<Goldilocks> = (0..1usize << log_n)
            .map(|_| Goldilocks::random(&mut rng))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_n}")),
            &log_n,
            |b, _| {
                b.iter_batched(
                    || {
                        (
                            Machine::new(cfg.clone(), fs),
                            Sharded::distribute(&input, gpus, ShardLayout::Cyclic),
                        )
                    },
                    |(mut machine, mut data)| engine.forward(&mut machine, &mut data),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_cost_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/cost_only_forward");
    group.sample_size(20);
    let cfg = presets::a100_nvlink(8);
    let fs = FieldSpec::goldilocks();
    for log_n in [20u32, 28] {
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{log_n}")),
            &log_n,
            |b, _| {
                b.iter(|| {
                    let mut machine = Machine::new(cfg.clone(), fs);
                    engine.simulate_forward(&mut machine, 1);
                    machine.max_clock_ns()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(sim_benches, bench_functional_engine, bench_cost_only);
criterion_main!(sim_benches);
