//! Command-line entry point regenerating the evaluation tables.

use std::process::ExitCode;

use unintt_bench::experiments;
use unintt_bench::Table;
use unintt_bench::{artifacts, perf_gate};

const USAGE: &str = "\
usage: harness [--quick] [--legacy-kernels] [--scalar-kernels] [--portable-lanes] [--blocking-comm] [--serial-streams] <experiment>...
       harness [--quick] [--trace-dir <path>] trace <experiment>...
       harness attribute <workload>
       harness perf-gate [<artifact>...]
  <experiment>      one or more of: e1 e2 e3 e4 e5 e6 e7 e8 e9 e11 e12 e13
                    e14 e15 e16 e17 e18 e19 e20 e21 bench-host all
  trace             run the named experiments with telemetry enabled and
                    write a Chrome/Perfetto trace_<experiment>.json into
                    the trace directory (e16 manages its own session and
                    always writes trace.json + trace.folded there)
  attribute         print the bottleneck-attribution verdicts for a
                    known-class workload: msm, ntt, pcie, or all
                    (substring match against the workload scope)
  perf-gate         rerun the experiment behind each committed
                    BENCH_*.json (all of them, or just the named
                    artifacts/experiments) and diff fresh output against
                    the committed baseline; exits non-zero on regression
  --trace-dir       where trace artifacts land (default: target/traces)
  --quick           trimmed sweeps (seconds instead of minutes)
  --legacy-kernels  run all host NTTs on the original radix-2 DIT path
                    instead of the vectorized default (A/B escape hatch;
                    outputs are bit-identical either way)
  --scalar-kernels  run all host NTTs on the scalar Shoup/six-step fast
                    path instead of the vectorized default (A/B escape
                    hatch; outputs are bit-identical either way)
  --portable-lanes  keep the vectorized kernels but pin them to the
                    portable lane path — no AVX2/AVX-512 intrinsics even
                    where detected (outputs are bit-identical either way)
  --blocking-comm   pin every simulated engine to the legacy blocking
                    exchange schedule instead of the chunked overlapped
                    pipeline (A/B escape hatch; outputs are bit-identical
                    either way)
  --serial-streams  pin the proving service to one compute queue per
                    lease — DAG stages serialize exactly as before the
                    multi-queue scheduler existed (A/B escape hatch;
                    outputs are bit-identical either way)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut selected: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--quick" => quick = true,
            "--legacy-kernels" => {
                unintt_ntt::set_kernel_mode(unintt_ntt::KernelMode::Legacy);
                unintt_core::set_kernel_mode_override(Some(unintt_ntt::KernelMode::Legacy));
            }
            "--scalar-kernels" => {
                unintt_ntt::set_kernel_mode(unintt_ntt::KernelMode::Fast);
                unintt_core::set_kernel_mode_override(Some(unintt_ntt::KernelMode::Fast));
            }
            "--portable-lanes" => {
                unintt_ntt::set_vector_backend_override(Some(unintt_ntt::VectorBackend::Portable));
            }
            "--blocking-comm" => {
                unintt_core::set_comm_mode_override(Some(unintt_core::CommMode::Blocking));
            }
            "--serial-streams" => {
                unintt_core::set_streams_override(Some(1));
            }
            "--trace-dir" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--trace-dir needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                artifacts::set_trace_dir(value);
                i += 1;
            }
            _ if a.starts_with("--trace-dir=") => {
                artifacts::set_trace_dir(&a["--trace-dir=".len()..]);
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag '{a}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            _ => selected.push(a.to_string()),
        }
        i += 1;
    }
    let selected: Vec<&str> = selected.iter().map(String::as_str).collect();

    if selected.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }

    match selected[0] {
        "attribute" => {
            let which = selected.get(1).copied().unwrap_or("all");
            return match experiments::e21_slo::attribution_report(which) {
                Some(table) => {
                    println!("{table}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("no workload matches '{which}' (try msm, ntt, pcie, all)\n{USAGE}");
                    ExitCode::FAILURE
                }
            };
        }
        "perf-gate" => {
            let (table, ok) = perf_gate::run_gate(&selected[1..]);
            println!("{table}");
            return if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        _ => {}
    }

    let trace_mode = selected.first() == Some(&"trace");
    let selected: Vec<&str> = if trace_mode {
        let rest = selected[1..].to_vec();
        if rest.is_empty() {
            eprintln!("trace mode needs at least one experiment\n{USAGE}");
            return ExitCode::FAILURE;
        }
        rest
    } else {
        selected
    };

    let run_one = |name: &str| -> Option<Table> {
        let table = match name {
            "bench-host" => unintt_bench::host_bench::run(quick),
            "e1" => experiments::e1_headline::run(quick),
            "e2" => experiments::e2_scaling::run(quick),
            "e3" => experiments::e3_vs_baseline::run(quick),
            "e4" => experiments::e4_comm_volume::run(quick),
            "e5" => experiments::e5_breakdown::run(quick),
            "e6" => experiments::e6_ablation::run(quick),
            "e7" => experiments::e7_topology::run(quick),
            "e8" => experiments::e8_end_to_end::run(quick),
            "e9" => experiments::e9_batching::run(quick),
            "e11" => experiments::e11_stark_commit::run(quick),
            "e12" => experiments::e12_multi_node::run(quick),
            "e13" => experiments::e13_fault_tolerance::run(quick),
            "e14" => experiments::e14_serving::run(quick),
            "e15" => experiments::e15_comm_overlap::run(quick),
            "e16" => experiments::e16_observability::run(quick),
            "e17" => experiments::e17_resilience::run(quick),
            "e18" => experiments::e18_vector_kernels::run(quick),
            "e19" => experiments::e19_pipeline::run(quick),
            "e20" => experiments::e20_streams::run(quick),
            "e21" => experiments::e21_slo::run(quick),
            _ => return None,
        };
        Some(table)
    };

    for name in &selected {
        if trace_mode && *name != "all" && *name != "e16" && *name != "e21" {
            // E16 and E21 drive their own telemetry sessions (nesting
            // would deadlock on the session lock); E16 always writes
            // trace.json into the trace directory itself.
            let guard = unintt_telemetry::start_session();
            let Some(table) = run_one(name) else {
                eprintln!("unknown experiment '{name}'\n{USAGE}");
                return ExitCode::FAILURE;
            };
            let session = unintt_telemetry::take_session();
            drop(guard);
            println!("{table}");
            let path = artifacts::trace_path(&format!("trace_{name}.json"));
            match std::fs::write(&path, unintt_telemetry::chrome_trace_json(&session)) {
                Ok(()) => println!(
                    "trace with {} spans / {} instants written to {}",
                    session.spans.len(),
                    session.instants.len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("could not write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        } else if *name == "all" {
            for table in experiments::run_all(quick) {
                println!("{table}");
            }
        } else {
            match run_one(name) {
                Some(table) => println!("{table}"),
                None => {
                    eprintln!("unknown experiment '{name}'\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
