//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A column-aligned text table with a title.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Appends a footnote line printed under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line_len = widths.iter().sum::<usize>() + 3 * ncols.saturating_sub(1);

        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:>width$}", h, width = widths[i]);
            if i + 1 < ncols {
                out.push_str("   ");
            }
        }
        out.push('\n');
        out.push_str(&"-".repeat(line_len));
        out.push('\n');

        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < ncols {
                    out.push_str("   ");
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a byte count with an adaptive binary unit.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "time"]);
        t.row(vec!["2^20".into(), "1.5 ms".into()]);
        t.row(vec!["2^24".into(), "12.0 ms".into()]);
        t.note("synthetic");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("2^24"));
        assert!(s.contains("note: synthetic"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3.2e9), "3.20 s");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.50 KiB");
        assert_eq!(fmt_bytes(1 << 30), "1.00 GiB");
    }
}
