//! Perf-regression gate: rerun the experiments behind every committed
//! `BENCH_*.json` and diff the fresh bytes against the committed
//! baseline.
//!
//! The simulation experiments (E14–E17, E19–E21) run on a deterministic
//! simulated clock, so their artifacts must match **byte-for-byte** —
//! any diff is a regression (or an intentional change that needs a new
//! committed baseline) and fails the gate. The host-kernel benchmark
//! (E18 → `BENCH_ntt.json`) measures wall-clock time and is inherently
//! noisy; for it the gate masks every numeric literal and compares only
//! the JSON *shape* (keys, rows, nesting), warning — never failing — on
//! value drift.
//!
//! The committed baseline is read from `git show HEAD:<file>` so a dirty
//! working tree cannot fool the gate; files not yet committed fall back
//! to the on-disk copy at the repo root. Each rerun's mode (quick/full)
//! is taken from the committed artifact's own `"quick"` field, so the
//! gate always compares like with like.
//!
//! ```bash
//! cargo run -p unintt-bench --release --bin harness -- perf-gate
//! cargo run -p unintt-bench --release --bin harness -- perf-gate BENCH_serve.json
//! ```

use std::path::PathBuf;
use std::process::Command;

use crate::experiments;
use crate::report::Table;

/// One gated artifact: which experiment regenerates it and whether its
/// bytes are deterministic.
pub struct GateSpec {
    /// Artifact name as committed at the repo root.
    pub file: &'static str,
    /// Harness experiment id that regenerates it.
    pub experiment: &'static str,
    /// Deterministic artifacts hard-fail on any byte diff; wall-clock
    /// ones only warn, and only when the masked shape diverges.
    pub deterministic: bool,
    runner: fn(bool) -> Table,
}

/// Every artifact the gate knows how to regenerate, in experiment order.
pub fn gate_specs() -> Vec<GateSpec> {
    vec![
        GateSpec {
            file: "BENCH_serve.json",
            experiment: "e14",
            deterministic: true,
            runner: experiments::e14_serving::run,
        },
        GateSpec {
            file: "BENCH_comm.json",
            experiment: "e15",
            deterministic: true,
            runner: experiments::e15_comm_overlap::run,
        },
        GateSpec {
            file: "BENCH_obs.json",
            experiment: "e16",
            deterministic: true,
            runner: experiments::e16_observability::run,
        },
        GateSpec {
            file: "BENCH_resilience.json",
            experiment: "e17",
            deterministic: true,
            runner: experiments::e17_resilience::run,
        },
        GateSpec {
            file: "BENCH_ntt.json",
            experiment: "e18",
            deterministic: false,
            runner: experiments::e18_vector_kernels::run,
        },
        GateSpec {
            file: "BENCH_pipeline.json",
            experiment: "e19",
            deterministic: true,
            runner: experiments::e19_pipeline::run,
        },
        GateSpec {
            file: "BENCH_streams.json",
            experiment: "e20",
            deterministic: true,
            runner: experiments::e20_streams::run,
        },
        GateSpec {
            file: "BENCH_slo.json",
            experiment: "e21",
            deterministic: true,
            runner: experiments::e21_slo::run,
        },
    ]
}

/// What the gate concluded about one artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Fresh bytes match the committed baseline (byte-exact for
    /// deterministic artifacts, shape-exact for wall-clock ones).
    Pass,
    /// Wall-clock values drifted but the shape held — informational.
    Warn(String),
    /// A deterministic artifact diverged (or a noisy one changed shape).
    Fail(String),
    /// No committed baseline exists yet; nothing to compare against.
    Skip(String),
}

impl Outcome {
    fn label(&self) -> &'static str {
        match self {
            Outcome::Pass => "pass",
            Outcome::Warn(_) => "warn",
            Outcome::Fail(_) => "FAIL",
            Outcome::Skip(_) => "skip",
        }
    }

    fn detail(&self) -> String {
        match self {
            Outcome::Pass => "bytes match committed baseline".into(),
            Outcome::Warn(d) | Outcome::Fail(d) | Outcome::Skip(d) => d.clone(),
        }
    }
}

/// One row of the gate report.
pub struct GateRow {
    /// Artifact name.
    pub file: &'static str,
    /// Experiment that regenerated it.
    pub experiment: &'static str,
    /// Mode the committed baseline was captured in (and the rerun used).
    pub quick: bool,
    /// Verdict.
    pub outcome: Outcome,
}

/// The repo root (so `git show` and the disk fallback resolve no matter
/// which subdirectory the harness runs from).
fn repo_root() -> PathBuf {
    Command::new("git")
        .args(["rev-parse", "--show-toplevel"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| PathBuf::from(s.trim()))
        .unwrap_or_else(|| PathBuf::from("."))
}

/// The committed bytes of `file` at `HEAD`, falling back to the on-disk
/// copy at the repo root for artifacts that exist but are not yet
/// committed.
fn committed_bytes(file: &str) -> Option<Vec<u8>> {
    let root = repo_root();
    let shown = Command::new("git")
        .args(["show", &format!("HEAD:{file}")])
        .current_dir(&root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| o.stdout);
    shown.or_else(|| std::fs::read(root.join(file)).ok())
}

/// Parses the artifact's own `"quick"` field (defaults to full mode).
fn committed_quick(bytes: &[u8]) -> bool {
    let text = String::from_utf8_lossy(bytes);
    text.find("\"quick\":")
        .map(|i| text[i + 8..].trim_start().starts_with("true"))
        .unwrap_or(false)
}

/// Masks every numeric literal so wall-clock artifacts can be compared
/// structurally: `"p50_ns": 1234.5` and `"p50_ns": 987.0` both become
/// `"p50_ns": #`.
fn mask_numbers(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    let mut in_string = false;
    let mut prev = ' ';
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if c == '"' && prev != '\\' {
                in_string = false;
            }
            prev = c;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '0'..='9' | '-' if !prev.is_ascii_alphanumeric() => {
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() || n == '.' || n == 'e' || n == '-' || n == '+' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push('#');
            }
            _ => out.push(c),
        }
        prev = c;
    }
    out
}

/// 1-based line of the first byte where the two renderings diverge.
fn first_diff_line(a: &str, b: &str) -> usize {
    let mut line = 1;
    for (ca, cb) in a.chars().zip(b.chars()) {
        if ca != cb {
            return line;
        }
        if ca == '\n' {
            line += 1;
        }
    }
    line
}

/// Reruns one gated artifact and compares it against its baseline.
///
/// The experiment writes its JSON into the current directory; the gate
/// snapshots whatever was there before and restores it afterwards, so a
/// gate run never perturbs the working tree (a fresh artifact only
/// survives on disk when there was nothing to clobber).
pub fn run_one(spec: &GateSpec) -> GateRow {
    let Some(committed) = committed_bytes(spec.file) else {
        return GateRow {
            file: spec.file,
            experiment: spec.experiment,
            quick: false,
            outcome: Outcome::Skip("no committed baseline (run the experiment and commit)".into()),
        };
    };
    let quick = committed_quick(&committed);
    let preexisting = std::fs::read(spec.file).ok();

    let _ = (spec.runner)(quick);
    let fresh = std::fs::read(spec.file).ok();

    // Put the working directory back exactly as we found it.
    match &preexisting {
        Some(bytes) => {
            let _ = std::fs::write(spec.file, bytes);
        }
        None => {
            let _ = std::fs::remove_file(spec.file);
        }
    }

    let Some(fresh) = fresh else {
        return GateRow {
            file: spec.file,
            experiment: spec.experiment,
            quick,
            outcome: Outcome::Fail(format!("rerun produced no {}", spec.file)),
        };
    };

    let outcome = if fresh == committed {
        Outcome::Pass
    } else {
        let committed_text = String::from_utf8_lossy(&committed).into_owned();
        let fresh_text = String::from_utf8_lossy(&fresh).into_owned();
        if spec.deterministic {
            Outcome::Fail(format!(
                "bytes diverged at line {} (deterministic artifact)",
                first_diff_line(&committed_text, &fresh_text)
            ))
        } else if mask_numbers(&committed_text) == mask_numbers(&fresh_text) {
            Outcome::Warn("wall-clock values drifted; shape matches (noise-tolerated)".into())
        } else {
            Outcome::Fail(format!(
                "shape diverged at line {} (even with numeric values masked)",
                first_diff_line(&mask_numbers(&committed_text), &mask_numbers(&fresh_text))
            ))
        }
    };
    GateRow {
        file: spec.file,
        experiment: spec.experiment,
        quick,
        outcome,
    }
}

/// Runs the gate over `files` (all known artifacts when empty). Returns
/// the rendered report and whether the gate passed (no `Fail` rows).
pub fn run_gate(files: &[&str]) -> (Table, bool) {
    let specs = gate_specs();
    let selected: Vec<&GateSpec> = if files.is_empty() {
        specs.iter().collect()
    } else {
        specs
            .iter()
            .filter(|s| files.contains(&s.file) || files.contains(&s.experiment))
            .collect()
    };
    let mut table = Table::new(
        "Perf-regression gate: fresh reruns vs committed BENCH baselines",
        &["artifact", "experiment", "mode", "verdict", "detail"],
    );
    let mut ok = true;
    for spec in &selected {
        let row = run_one(spec);
        if matches!(row.outcome, Outcome::Fail(_)) {
            ok = false;
        }
        table.row(vec![
            row.file.into(),
            row.experiment.into(),
            if row.quick { "quick" } else { "full" }.into(),
            row.outcome.label().into(),
            row.outcome.detail(),
        ]);
    }
    if selected.is_empty() {
        table.note("no artifact matched the requested names");
        ok = false;
    }
    table.note("deterministic artifacts must match byte-for-byte; BENCH_ntt.json is wall-clock and only shape-checked");
    table.note(if ok { "gate: PASS" } else { "gate: FAIL" });
    (table, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_numbers_hides_values_but_keeps_shape() {
        let a = mask_numbers("{\"p50_ns\": 1234.5, \"rows\": [1, -2e9]}");
        let b = mask_numbers("{\"p50_ns\": 9.87, \"rows\": [42, 7]}");
        assert_eq!(a, b);
        assert_eq!(a, "{\"p50_ns\": #, \"rows\": [#, #]}");
    }

    #[test]
    fn mask_numbers_leaves_strings_and_keys_alone() {
        let s = "{\"e21 v2\": \"x-9\", \"k3\": 5}";
        assert_eq!(
            mask_numbers(s),
            "{\"e21 v2\": \"x-9\", \"k3\": 5}".replace(": 5", ": #")
        );
    }

    #[test]
    fn committed_quick_parses_both_modes() {
        assert!(committed_quick(b"{\n  \"quick\": true,\n}"));
        assert!(!committed_quick(b"{\n  \"quick\": false,\n}"));
        assert!(!committed_quick(b"{}"));
    }

    #[test]
    fn first_diff_line_counts_newlines() {
        assert_eq!(first_diff_line("a\nb\nc", "a\nb\nd"), 3);
        assert_eq!(first_diff_line("same", "same"), 1);
    }

    #[test]
    fn gate_specs_cover_every_committed_artifact() {
        let specs = gate_specs();
        let root = repo_root();
        let mut missing = Vec::new();
        for entry in std::fs::read_dir(&root).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            if name.starts_with("BENCH_")
                && name.ends_with(".json")
                && !specs.iter().any(|s| s.file == name)
            {
                missing.push(name);
            }
        }
        assert!(
            missing.is_empty(),
            "BENCH artifacts with no gate entry: {missing:?}"
        );
    }
}
