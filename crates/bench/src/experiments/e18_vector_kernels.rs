//! E18 — vectorized host kernels: lane-packed Shoup butterflies,
//! radix-4/8 stage fusion, and the per-`(field, log_n)` specialized plan
//! cache, measured wall-clock against the scalar fast path and the
//! legacy radix-2 kernels.
//!
//! This is the capture wrapper around `bench-host`: it runs the full
//! two-field sweep (writing `BENCH_ntt.json` with the stage breakdown
//! and the acceptance gates) and then demonstrates the per-mode
//! dispatch counters end-to-end: one transform per kernel mode under a
//! telemetry session must produce exactly one increment of the matching
//! `ntt_dispatch_*` counter.

use unintt_ff::{Field, Goldilocks};
use unintt_ntt::{set_kernel_mode, KernelMode, Ntt};

use crate::host_bench;
use crate::report::Table;

/// Runs the host-kernel sweep plus the dispatch-counter demonstration.
pub fn run(quick: bool) -> Table {
    let mut table = host_bench::run(quick);

    // One transform per mode under a session: the registry must show one
    // increment per matching counter and nothing on the other two.
    let log_n = 10u32;
    let ntt = Ntt::<Goldilocks>::new(log_n);
    let input: Vec<Goldilocks> = {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xe18);
        (0..1usize << log_n)
            .map(|_| Goldilocks::random(&mut rng))
            .collect()
    };
    let guard = unintt_telemetry::start_session();
    for mode in [KernelMode::Vector, KernelMode::Fast, KernelMode::Legacy] {
        set_kernel_mode(mode);
        let mut buf = input.clone();
        ntt.forward(&mut buf);
    }
    set_kernel_mode(KernelMode::default());
    let registry = unintt_telemetry::registry_snapshot();
    drop(guard);
    let count = |name: &str| registry.counters.get(name).copied().unwrap_or(0);
    table.note(format!(
        "dispatch counters after one transform per mode: vector={} fast={} legacy={}",
        count("ntt_dispatch_vector"),
        count("ntt_dispatch_fast"),
        count("ntt_dispatch_legacy"),
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_counters_track_modes() {
        let ntt = Ntt::<Goldilocks>::new(6);
        let input: Vec<Goldilocks> = (0..64u64).map(unintt_ff::PrimeField::from_u64).collect();
        let guard = unintt_telemetry::start_session();
        for mode in [
            KernelMode::Vector,
            KernelMode::Vector,
            KernelMode::Fast,
            KernelMode::Legacy,
        ] {
            set_kernel_mode(mode);
            let mut buf = input.clone();
            ntt.forward(&mut buf);
        }
        set_kernel_mode(KernelMode::default());
        let registry = unintt_telemetry::registry_snapshot();
        drop(guard);
        assert_eq!(registry.counters.get("ntt_dispatch_vector"), Some(&2));
        assert_eq!(registry.counters.get("ntt_dispatch_fast"), Some(&1));
        assert_eq!(registry.counters.get("ntt_dispatch_legacy"), Some(&1));
    }
}
