//! **E3 — UniNTT vs the naive four-step multi-GPU baseline**: the
//! transpose-based implementation pays three all-to-alls and standalone
//! pack/twiddle kernels; UniNTT pays one fused all-to-all. The gap widens
//! as communication dominates, and at small sizes *both* lose to a single
//! GPU (the crossover the paper motivates).

use unintt_core::UniNttOptions;
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec};

use crate::experiments::{baseline_run, single_gpu_run, unintt_run};
use crate::report::{fmt_ns, Table};

/// Runs E3 and renders the table.
pub fn run(quick: bool) -> Table {
    let gpus = 4;
    let cfg = presets::a100_nvlink(gpus);
    let fs = FieldSpec::bn254_fr();
    let sizes: &[u32] = if quick {
        &[16, 24]
    } else {
        &[14, 16, 18, 20, 22, 24, 26, 28]
    };

    let mut table = Table::new(
        format!("E3: UniNTT vs naive four-step on {gpus}×A100 (BN254-Fr)"),
        &[
            "log2(N)",
            "1-GPU",
            "four-step-4",
            "UniNTT-4",
            "UniNTT gain",
            "multi-GPU worth it?",
        ],
    );

    for &log_n in sizes {
        let (t1, _) = single_gpu_run::<Bn254Fr>(log_n, &cfg, fs);
        let (tb, _) = baseline_run::<Bn254Fr>(log_n, &cfg, fs);
        let (tu, _) = unintt_run::<Bn254Fr>(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs, 1);
        table.row(vec![
            format!("2^{log_n}"),
            fmt_ns(t1),
            fmt_ns(tb),
            fmt_ns(tu),
            format!("{:.2}x", tb / tu),
            if tu < t1 {
                "yes".into()
            } else {
                "no (latency-bound)".into()
            },
        ]);
    }
    table.note("UniNTT gain = four-step time / UniNTT time (same GPU count)");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unintt_always_beats_four_step() {
        let rendered = run(false).render();
        let mut rows = 0;
        for line in rendered
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with("2^"))
        {
            rows += 1;
            let gain: f64 = line
                .split_whitespace()
                .rev()
                .find(|c| c.ends_with('x'))
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!(gain > 1.0, "UniNTT must beat the baseline: {line}");
        }
        assert!(rows >= 8, "expected a full sweep, got {rows} rows");
    }

    #[test]
    fn crossover_exists() {
        // Small sizes should say "no", large sizes "yes".
        let rendered = run(false).render();
        let find = |prefix: &str| {
            rendered
                .lines()
                .map(str::trim)
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing row {prefix} in:\n{rendered}"))
                .to_string()
        };
        let first = find("2^14");
        let last = find("2^28");
        assert!(
            first.contains("no"),
            "2^14 should be latency-bound: {first}"
        );
        assert!(last.contains("yes"), "2^28 should profit: {last}");
    }
}
