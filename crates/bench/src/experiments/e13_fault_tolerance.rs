//! **E13 — fault tolerance** (beyond the paper): what does surviving a
//! lossy fabric cost? Sweeps per-collective fault rates against recovery
//! policies on the functional multi-GPU forward NTT, reporting completion
//! rate, recovery overhead (the `Category::Fault` share of simulated
//! time), and bytes retransmitted by the checksummed exchange. Every run
//! that completes under the full policy is bit-checked against the CPU
//! reference — recovery is only worth reporting if the answer stays
//! exact.
//!
//! The fault model is `unintt_gpu_sim::FaultPlan`: seeded, deterministic,
//! and charged entirely to the simulated clock, so the sweep is
//! reproducible down to the nanosecond.

use unintt_core::{RecoveryPolicy, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Goldilocks, PrimeField};
use unintt_gpu_sim::{presets, Category, FaultPlan, FaultRates, FieldSpec, Machine};
use unintt_ntt::Ntt;

use crate::report::{fmt_bytes, fmt_ns, Table};

/// One policy column of the sweep.
struct Policy {
    name: &'static str,
    policy: RecoveryPolicy,
}

fn policies() -> [Policy; 3] {
    [
        Policy {
            name: "none",
            policy: RecoveryPolicy::none(),
        },
        Policy {
            name: "retry",
            policy: RecoveryPolicy::retry_only(),
        },
        Policy {
            name: "full",
            policy: RecoveryPolicy::default(),
        },
    ]
}

/// Runs E13 and renders the table.
pub fn run(quick: bool) -> Table {
    let fs = FieldSpec::goldilocks();
    let (log_n, gpus, trials, reps) = if quick { (10, 4, 4, 4) } else { (12, 8, 8, 8) };
    // 5e-2 is far beyond any realistic fabric, but stresses the
    // corruption path enough for the checksum columns to be non-trivial.
    let rates: &[f64] = &[0.0, 1e-3, 1e-2, 5e-2];

    let mut table = Table::new(
        format!("E13: fault tolerance (2^{log_n} Goldilocks forward NTT, {gpus}×A100)"),
        &[
            "p/collective",
            "policy",
            "runs",
            "completed",
            "silent corrupt",
            "retries",
            "retransmitted",
            "fault time",
            "total time",
        ],
    );

    let cfg = presets::a100_nvlink(gpus);
    let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
    let input: Vec<Goldilocks> = (0..1usize << log_n)
        .map(|i| Goldilocks::from_u64(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)))
        .collect();
    let reference = {
        let ntt = Ntt::<Goldilocks>::new(log_n);
        let mut v = input.clone();
        ntt.forward(&mut v);
        v
    };

    for &p in rates {
        for pol in policies() {
            let mut completed = 0u64;
            let mut corrupted = 0u64;
            let mut retries = 0u64;
            let mut retransmitted = 0u64;
            let mut fault_ns = 0.0f64;
            let mut total_ns = 0.0f64;
            let runs = (trials * reps) as u64;

            for trial in 0..trials {
                let mut machine = Machine::new(cfg.clone(), fs);
                if p > 0.0 {
                    // Seed varies per (rate, trial) so fault positions
                    // differ across trials but replay identically.
                    let seed = 1000 * trial as u64 + (p * 1e4) as u64;
                    machine.set_fault_plan(FaultPlan::random(seed, FaultRates::transfers_only(p)));
                }
                for _ in 0..reps {
                    let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
                    match engine.try_forward(&mut machine, &mut data, &pol.policy) {
                        Ok(()) => {
                            if data.collect() == reference {
                                completed += 1;
                            } else {
                                // Only possible without checksums: the
                                // corruption sailed through undetected.
                                assert!(
                                    !pol.policy.verify_checksums,
                                    "checksummed run must not return corrupt data"
                                );
                                corrupted += 1;
                            }
                        }
                        Err(e) => assert!(e.is_transient(), "transfers_only cannot lose devices"),
                    }
                }
                let stats = machine.stats();
                retries += stats.retries;
                retransmitted += stats.interconnect_bytes_retransmitted;
                fault_ns += stats.time_ns.get(Category::Fault);
                total_ns += machine.max_clock_ns();
            }

            table.row(vec![
                format!("{p:.0e}"),
                pol.name.to_string(),
                runs.to_string(),
                format!("{:.1}%", 100.0 * completed as f64 / runs as f64),
                corrupted.to_string(),
                retries.to_string(),
                fmt_bytes(retransmitted),
                format!("{:.2}%", 100.0 * fault_ns / total_ns),
                fmt_ns(total_ns),
            ]);
        }
    }
    table.note(
        "fault time = simulated ns charged under Category::Fault (timeouts, backoff, retransmits)",
    );
    table.note(
        "finding: retry alone completes through drops but lets corruption through silently; \
         checksums turn corruption into a targeted chunk retransmit and are the only policy \
         that keeps completion at 100% with zero silent corruptions",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_expected_rows() {
        let table = run(true);
        // 4 rates × 3 policies.
        assert_eq!(table.len(), 12, "{}", table.render());
    }

    #[test]
    fn zero_rate_always_completes_with_zero_overhead() {
        let table = run(true);
        let rendered = table.render();
        // The p=0 rows must show 100% completion.
        assert!(rendered.contains("100.0%"), "{rendered}");
    }
}
