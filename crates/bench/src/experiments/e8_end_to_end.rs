//! **E8 — end-to-end proof generation**: the PLONK-style prover with
//! (a) the status quo — multi-GPU MSM but single-GPU NTT — versus
//! (b) the UniNTT system — both multi-GPU. This is the paper's motivating
//! scenario: without multi-GPU NTT, Amdahl's law caps the end-to-end win.
//!
//! Two sections:
//! * **functional** rows (small circuits): real proofs are generated on
//!   both configurations, checked bit-identical, and verified;
//! * **projected** rows (production-scale circuits): the same prover
//!   operation mix — 4 iNTT(n), 13 coset NTT(4n), 1 iNTT(4n), 7 MSMs —
//!   charged through the cost-only simulation paths (which tests keep in
//!   lock-step with the functional paths).

use rand::{rngs::StdRng, SeedableRng};
use unintt_core::{single_gpu, UniNttEngine, UniNttOptions};
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec, Machine, MachineConfig};
use unintt_msm::simulate_multi_gpu_msm;
use unintt_zkp::{prove, random_circuit, setup, verify, Backend};

use crate::report::{fmt_ns, Table};

/// Projected prover time: `(ntt_ns, msm_ns)` for a circuit of `2^log_rows`
/// gates with NTT on `ntt_cfg` and MSM on `msm_cfg`.
fn projected(log_rows: u32, ntt_cfg: &MachineConfig, msm_cfg: &MachineConfig) -> (f64, f64) {
    let fs = FieldSpec::bn254_fr();
    let opts = {
        let mut o = UniNttOptions::tuned_for(&fs);
        o.natural_output = true; // the prover chains mixed-size domains
        o
    };
    // The PLONK prover's operation mix (see `unintt_zkp::prover` docs):
    // 4 iNTT(n) for wires + grand product, 13 coset NTT(4n), 1 iNTT(4n).
    let mut ntt_machine = Machine::new(ntt_cfg.clone(), fs);
    let small = UniNttEngine::<Bn254Fr>::new(log_rows, ntt_cfg, opts, fs);
    let big = UniNttEngine::<Bn254Fr>::new(log_rows + 2, ntt_cfg, opts, fs);
    small.simulate_inverse(&mut ntt_machine, 4); // wires + z interpolation
    big.simulate_coset_forward(&mut ntt_machine, 13); // coset LDEs
    big.simulate_inverse(&mut ntt_machine, 1); // quotient interpolation

    // MSMs: 3 wires + z (size n), quotient (3n), batched opening (3n),
    // shifted opening (n).
    let mut msm_machine = Machine::new(msm_cfg.clone(), fs);
    let n = 1u64 << log_rows;
    for size in [n, n, n, n, 3 * n, 3 * n, n] {
        simulate_multi_gpu_msm(&mut msm_machine, size);
    }
    (ntt_machine.max_clock_ns(), msm_machine.max_clock_ns())
}

/// Runs E8 and renders the table.
pub fn run(quick: bool) -> Table {
    let gpus = 8;
    let functional_sizes: &[usize] = if quick {
        &[1 << 8]
    } else {
        &[1 << 8, 1 << 10, 1 << 12]
    };
    let projected_sizes: &[u32] = if quick { &[20] } else { &[16, 18, 20, 22, 24] };

    let mut table = Table::new(
        format!("E8: end-to-end proof generation ({gpus}×A100, BN254)"),
        &[
            "gates",
            "mode",
            "status-quo (1-GPU NTT)",
            "NTT share",
            "UniNTT (8-GPU NTT)",
            "NTT share",
            "gain",
        ],
    );

    // Functional section: real proofs, bit-identical across backends.
    let mut rng = StdRng::seed_from_u64(2025);
    for &rows in functional_sizes {
        let (circuit, witness) = random_circuit(rows, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);

        let mut status_quo =
            Backend::simulated(presets::a100_nvlink(1), presets::a100_nvlink(gpus));
        let proof_sq = prove(&pk, &witness, &[], &mut status_quo);
        assert!(verify(&vk, &proof_sq, &[]), "status-quo proof must verify");
        let r_sq = status_quo.report();

        let mut unintt = Backend::simulated(presets::a100_nvlink(gpus), presets::a100_nvlink(gpus));
        let proof_u = prove(&pk, &witness, &[], &mut unintt);
        assert_eq!(proof_sq, proof_u, "backends must agree bit-for-bit");
        let r_u = unintt.report();

        table.row(vec![
            format!("2^{}", rows.trailing_zeros()),
            "functional".into(),
            fmt_ns(r_sq.total_ns()),
            format!("{:.0}%", 100.0 * r_sq.ntt_fraction()),
            fmt_ns(r_u.total_ns()),
            format!("{:.0}%", 100.0 * r_u.ntt_fraction()),
            format!("{:.2}x", r_sq.total_ns() / r_u.total_ns()),
        ]);
    }

    // Projected section: production-scale circuits, cost-only paths.
    for &log_rows in projected_sizes {
        let one = single_gpu::config(&presets::a100_nvlink(gpus));
        let eight = presets::a100_nvlink(gpus);
        let (ntt_sq, msm_sq) = projected(log_rows, &one, &eight);
        let (ntt_u, msm_u) = projected(log_rows, &eight, &eight);
        let (total_sq, total_u) = (ntt_sq + msm_sq, ntt_u + msm_u);
        table.row(vec![
            format!("2^{log_rows}"),
            "projected".into(),
            fmt_ns(total_sq),
            format!("{:.0}%", 100.0 * ntt_sq / total_sq),
            fmt_ns(total_u),
            format!("{:.0}%", 100.0 * ntt_u / total_u),
            format!("{:.2}x", total_sq / total_u),
        ]);
    }

    table.note("functional rows: identical, verified proofs on both configurations");
    table.note("projected rows: same operation mix through the cost-only simulation paths");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_gpu_ntt_pays_off_at_scale() {
        let one = single_gpu::config(&presets::a100_nvlink(8));
        let eight = presets::a100_nvlink(8);
        for log_rows in [20u32, 24] {
            let (ntt_sq, msm) = projected(log_rows, &one, &eight);
            let (ntt_u, _) = projected(log_rows, &eight, &eight);
            let gain = (ntt_sq + msm) / (ntt_u + msm);
            assert!(
                gain > 1.2,
                "end-to-end gain at 2^{log_rows} should be material: {gain:.2}x"
            );
        }
    }

    #[test]
    fn ntt_dominates_status_quo_at_scale() {
        let one = single_gpu::config(&presets::a100_nvlink(8));
        let eight = presets::a100_nvlink(8);
        let (ntt_sq, msm) = projected(24, &one, &eight);
        assert!(
            ntt_sq / (ntt_sq + msm) > 0.4,
            "with single-GPU NTT and multi-GPU MSM, NTT should be a major share: {:.0}%",
            100.0 * ntt_sq / (ntt_sq + msm)
        );
    }

    #[test]
    fn functional_rows_verify_and_match() {
        // run(quick) already asserts proof equality + verification inside.
        let rendered = run(true).render();
        assert!(rendered.contains("functional"));
        assert!(rendered.contains("projected"));
    }
}
