//! **E4 — communication volume**: bytes injected into the inter-GPU
//! fabric per transform. UniNTT's single fused all-to-all moves `(G−1)/G`
//! of the data once; the four-step baseline moves it three times.
//!
//! Bytes are counted at link injection, so the totals are identical
//! under the blocking and overlapped exchange schedules — the pipeline
//! (E15) changes *when* chunks cross the fabric, never how many bytes
//! do. `harness --blocking-comm e4` reproduces exactly this table.

use unintt_core::UniNttOptions;
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec};

use crate::experiments::{baseline_run, unintt_run};
use crate::report::{fmt_bytes, Table};

/// Runs E4 and renders the table.
pub fn run(quick: bool) -> Table {
    let gpus = 8;
    let cfg = presets::a100_nvlink(gpus);
    let fs = FieldSpec::bn254_fr();
    let sizes: &[u32] = if quick {
        &[20, 24]
    } else {
        &[20, 22, 24, 26, 28]
    };

    let mut table = Table::new(
        format!("E4: inter-GPU traffic per forward NTT ({gpus}×A100, BN254-Fr)"),
        &[
            "log2(N)",
            "data size",
            "UniNTT bytes",
            "four-step bytes",
            "ratio",
        ],
    );

    for &log_n in sizes {
        let total_bytes = (1u64 << log_n) * fs.elem_bytes as u64;
        let (_, su) = unintt_run::<Bn254Fr>(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs, 1);
        let (_, sb) = baseline_run::<Bn254Fr>(log_n, &cfg, fs);
        table.row(vec![
            format!("2^{log_n}"),
            fmt_bytes(total_bytes),
            fmt_bytes(su.interconnect_bytes_sent),
            fmt_bytes(sb.interconnect_bytes_sent),
            format!(
                "{:.2}x",
                sb.interconnect_bytes_sent as f64 / su.interconnect_bytes_sent as f64
            ),
        ]);
    }
    table.note("bytes summed over all devices; UniNTT sends (G-1)/G of the data exactly once");
    table.note(
        "volumes are schedule-invariant: blocking and overlapped modes inject the same bytes",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::unintt_run;

    #[test]
    fn unintt_sends_exactly_one_exchange() {
        let cfg = presets::a100_nvlink(8);
        let fs = FieldSpec::bn254_fr();
        let log_n = 24;
        let (_, stats) = unintt_run::<Bn254Fr>(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs, 1);
        // Each device egresses shard_bytes * 7/8; eight devices.
        let shard_bytes = (1u64 << (log_n - 3)) * 32;
        assert_eq!(stats.interconnect_bytes_sent, 8 * shard_bytes * 7 / 8);
    }

    #[test]
    fn baseline_sends_three_times_as_much() {
        let table = run(true);
        let rendered = table.render();
        let mut rows = 0;
        for line in rendered
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with("2^"))
        {
            rows += 1;
            let ratio: f64 = line
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('x')
                .parse()
                .unwrap();
            assert!((2.9..3.1).contains(&ratio), "expected ~3x, got {line}");
        }
        assert!(rows >= 2, "expected data rows");
    }
}
