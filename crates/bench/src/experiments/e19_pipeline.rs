//! **E19 — pipelined whole-proof DAG scheduling**: the same mixed
//! multi-tenant workload served twice — once with proofs submitted as
//! monolithic jobs (one lease held for the whole proof) and once with
//! the identical proofs submitted as [`unintt_serve::JobClass::ProveDag`]
//! stage DAGs, dispatched stage-by-stage under the ordinary lease
//! policies and interleaved with every other tenant's work.
//!
//! The two submission streams are *identical* except for the class tag
//! (the DAG stream maps each proof class through
//! `JobClass::pipelined()` after generation, so arrivals, tenants,
//! priorities and fixtures match job-for-job), which makes three claims
//! checkable per load level:
//!
//! * **bit identity** — every job's `output_digest` matches between the
//!   monolithic and DAG runs (run_pair asserts this);
//! * **occupancy** — dispatching ready stages instead of whole proofs
//!   lets independent stages of one proof (e.g. PLONK's z-commit and
//!   quotient LDE) run on different leases concurrently and lets short
//!   raw-NTT jobs fill the gaps between stages, raising mean lease
//!   occupancy and finishing the same work in a shorter horizon;
//! * **attribution** — the DAG runs report lease-occupied time per
//!   stage kind (`ServiceReport::stage_ns`), the per-stage breakdown a
//!   monolithic dispatch cannot see.
//!
//! Everything is charged to the simulated clock and every workload is
//! seeded, so two runs produce byte-identical output — including the
//! machine-readable `BENCH_pipeline.json` written next to the process.

use std::fmt::Write as _;

use unintt_serve::{
    JobSpec, ProofService, ServiceConfig, ServiceReport, WorkloadMix, WorkloadSpec,
};

use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_pipeline.json";

/// One measured service run (one load level, one submission mode).
struct Cell {
    load_jobs_per_s: f64,
    pipelined: bool,
    report: ServiceReport,
}

impl Cell {
    fn mode(&self) -> &'static str {
        if self.pipelined {
            "dag"
        } else {
            "monolithic"
        }
    }

    /// Completed proof jobs (PLONK + STARK, either submission form).
    fn proofs(&self) -> usize {
        self.report
            .outcomes
            .iter()
            .filter(|o| o.completed() && o.class_name != "raw-ntt")
            .count()
    }

    /// Completed proofs per simulated second.
    fn proofs_per_s(&self) -> f64 {
        if self.report.metrics.horizon_ns <= 0.0 {
            return 0.0;
        }
        self.proofs() as f64 / (self.report.metrics.horizon_ns * 1e-9)
    }

    /// The stage attribution as "ntt 42% msm 31% ..." (empty for
    /// monolithic cells, which cannot see inside a proof dispatch).
    fn attribution(&self) -> String {
        let total: f64 = self.report.stage_ns.values().sum();
        if total <= 0.0 {
            return "-".into();
        }
        let mut parts: Vec<(f64, &str)> = self
            .report
            .stage_ns
            .iter()
            .map(|(&name, &ns)| (ns / total, name))
            .collect();
        parts.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(b.1)));
        parts
            .iter()
            .map(|(frac, name)| format!("{name} {:.0}%", 100.0 * frac))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The swept grid: offered loads and jobs per cell.
fn grid(quick: bool) -> (Vec<f64>, usize) {
    let loads = vec![5_000.0, 20_000.0, 80_000.0];
    let jobs = if quick { 24 } else { 64 };
    (loads, jobs)
}

/// The seeded proof-heavy submission stream for one load level. Half
/// raw NTTs (the coalescer's food), half proofs — the stream every cell
/// at this load serves, so monolithic and DAG cells differ only in the
/// class tag. E20 reuses the same stream so its cells are comparable
/// with this experiment's row for row.
pub(crate) fn stream(load: f64, jobs: usize) -> Vec<JobSpec> {
    WorkloadSpec {
        mix: WorkloadMix {
            raw: 0.5,
            plonk: 0.25,
            stark: 0.25,
        },
        ..WorkloadSpec::raw_only(0xe19 ^ load.to_bits(), jobs, load)
    }
    .generate()
}

/// Runs one service configuration over the seeded stream for `load`,
/// mapping proof classes through `pipelined()` when asked. The mapping
/// happens *after* generation, so the DAG cell's arrivals, tenants and
/// priorities are job-for-job identical to the monolithic cell's.
fn run_cell(load: f64, jobs: usize, pipelined: bool) -> Cell {
    let mut stream = stream(load, jobs);
    if pipelined {
        for spec in &mut stream {
            spec.class = spec.class.pipelined();
        }
    }
    let mut service = ProofService::new(ServiceConfig::default());
    service.submit_all(stream);
    let report = service.run();
    assert!(
        report.all_completed(),
        "E19 runs under capacity-512 admission: nothing should be shed or failed"
    );
    Cell {
        load_jobs_per_s: load,
        pipelined,
        report,
    }
}

/// Runs the monolithic and DAG cells for one load and asserts the two
/// runs produced bit-identical outputs job-for-job.
fn run_pair(load: f64, jobs: usize) -> (Cell, Cell) {
    let mono = run_cell(load, jobs, false);
    let dag = run_cell(load, jobs, true);
    assert_eq!(mono.report.outcomes.len(), dag.report.outcomes.len());
    for (m, d) in mono.report.outcomes.iter().zip(&dag.report.outcomes) {
        assert_eq!(m.id, d.id);
        assert!(
            m.output_digest != 0,
            "{} {} must digest its output",
            m.id,
            m.class_name
        );
        assert_eq!(
            m.output_digest, d.output_digest,
            "{} ({} vs {}): DAG scheduling must not change a single output bit",
            m.id, m.class_name, d.class_name
        );
    }
    (mono, dag)
}

fn render_json(cells: &[Cell], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"pipeline-dag-scheduling\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let m = &c.report.metrics;
        let raw = &m.classes["raw-ntt"];
        let _ = write!(
            out,
            "    {{\"load_jobs_per_s\": {:.0}, \"mode\": \"{}\", \"completed\": {}, \
             \"proofs\": {}, \"horizon_ns\": {:.0}, \"throughput_jobs_per_s\": {:.1}, \
             \"proofs_per_s\": {:.2}, \"occupancy\": {:.4}, \"raw_p95_ns\": {:.0}, \
             \"stage_ns\": {{",
            c.load_jobs_per_s,
            c.mode(),
            m.completed(),
            c.proofs(),
            m.horizon_ns,
            m.throughput_jobs_per_s(),
            c.proofs_per_s(),
            m.mean_occupancy(),
            raw.latency.p95_ns,
        );
        for (j, (name, ns)) in c.report.stage_ns.iter().enumerate() {
            let _ = write!(out, "{}\"{name}\": {ns:.0}", if j == 0 { "" } else { ", " });
        }
        out.push_str("}}");
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_row(table: &mut Table, c: &Cell) {
    let m = &c.report.metrics;
    let raw = &m.classes["raw-ntt"];
    table.row(vec![
        format!("{:.0}k/s", c.load_jobs_per_s / 1_000.0),
        c.mode().into(),
        format!("{:.0}", m.throughput_jobs_per_s()),
        format!("{:.1}", c.proofs_per_s()),
        format!("{:.0}%", 100.0 * m.mean_occupancy()),
        fmt_ns(raw.latency.p95_ns),
        c.attribution(),
    ]);
}

/// Runs E19 and renders the table (also writes [`JSON_PATH`]).
pub fn run(quick: bool) -> Table {
    let (loads, jobs) = grid(quick);
    let mut table = Table::new(
        "E19: DAG-pipelined vs monolithic proving under mixed load (2 leases of 2 nodes x 2 A100)",
        &[
            "load",
            "mode",
            "jobs/s",
            "proofs/s",
            "occ",
            "raw p95",
            "stage attribution",
        ],
    );
    let mut cells = Vec::new();
    for &load in &loads {
        let (mono, dag) = run_pair(load, jobs);
        cells.push(mono);
        cells.push(dag);
    }

    // The headline claim, checked on every run: at the highest load the
    // DAG cells keep the cluster busier and finish proofs faster.
    let high_mono = &cells[cells.len() - 2];
    let high_dag = &cells[cells.len() - 1];
    assert!(
        high_dag.report.metrics.mean_occupancy() > high_mono.report.metrics.mean_occupancy()
            && high_dag.proofs_per_s() > high_mono.proofs_per_s(),
        "DAG pipelining must raise occupancy and proof throughput at high load: \
         occ {:.4} vs {:.4}, proofs/s {:.2} vs {:.2}",
        high_dag.report.metrics.mean_occupancy(),
        high_mono.report.metrics.mean_occupancy(),
        high_dag.proofs_per_s(),
        high_mono.proofs_per_s(),
    );

    for c in &cells {
        push_row(&mut table, c);
    }

    table.note("same seeded stream per load; dag cells map proof classes via pipelined()");
    table.note("every job's output digest matches its monolithic twin (asserted per pair)");
    let json = render_json(&cells, quick);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use unintt_telemetry as telemetry;

    use super::*;

    #[test]
    fn dag_cells_match_monolithic_digests_and_attribute_stages() {
        // run_pair asserts digest identity internally.
        let (mono, dag) = run_pair(20_000.0, 16);
        assert!(
            mono.report.stage_ns.is_empty(),
            "monolithic cells see no stages"
        );
        assert!(
            dag.report.stage_ns.contains_key("ntt")
                && dag.report.stage_ns.contains_key("msm")
                && dag.report.stage_ns.contains_key("fold"),
            "DAG cells attribute NTT, MSM and FRI-fold time: {:?}",
            dag.report.stage_ns
        );
        assert!(
            !dag.report.stage_ns.contains_key("barrier"),
            "barriers are charge-free and must not appear in the attribution"
        );
    }

    #[test]
    fn dag_pipelining_wins_at_high_load() {
        let (loads, _) = grid(true);
        let high = *loads.last().unwrap();
        let (mono, dag) = run_pair(high, 24);
        assert!(
            dag.report.metrics.mean_occupancy() > mono.report.metrics.mean_occupancy(),
            "stage interleaving should keep leases busier: {:.4} vs {:.4}",
            dag.report.metrics.mean_occupancy(),
            mono.report.metrics.mean_occupancy()
        );
        assert!(
            dag.proofs_per_s() > mono.proofs_per_s(),
            "stage interleaving should finish proofs faster: {:.2} vs {:.2}",
            dag.proofs_per_s(),
            mono.proofs_per_s()
        );
    }

    #[test]
    fn dag_stages_show_up_in_the_exported_trace() {
        let guard = telemetry::start_session();
        let _cell = run_cell(20_000.0, 12, true);
        let session = telemetry::take_session();
        drop(guard);
        let stage_spans: Vec<_> = session
            .spans
            .iter()
            .filter(|s| s.category == "stage")
            .collect();
        assert!(
            !stage_spans.is_empty(),
            "stage dispatches must record per-stage spans"
        );
        assert!(
            stage_spans.iter().any(|s| s.track.starts_with("lease")),
            "stage spans ride the lease tracks so traces show the interleaving"
        );
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let run_once = || {
            let (mono, dag) = run_pair(5_000.0, 12);
            render_json(&[mono, dag], true)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "identical runs must render byte-identical JSON");
        assert!(a.starts_with("{\n") && a.ends_with("}\n"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
