//! **E1 — headline speedup**: UniNTT on 8 GPUs vs the strong single-GPU
//! NTT, across transform sizes and fields. The paper's abstract reports an
//! average 4.26× here.

use unintt_core::UniNttOptions;
use unintt_ff::{Bn254Fr, Goldilocks};
use unintt_gpu_sim::{presets, FieldSpec};

use crate::experiments::{single_gpu_run, unintt_run};
use crate::report::{fmt_ns, Table};

/// Runs E1 and renders the table.
pub fn run(quick: bool) -> Table {
    let gpus = 8;
    let cfg = presets::a100_nvlink(gpus);
    let sizes: &[u32] = if quick {
        &[20, 24]
    } else {
        &[20, 21, 22, 23, 24, 25, 26, 27, 28]
    };

    let mut table = Table::new(
        format!("E1: UniNTT speedup on {gpus}×A100 (NVSwitch) vs 1×A100"),
        &["field", "log2(N)", "1-GPU", "UniNTT-8", "speedup"],
    );

    let mut speedups = Vec::new();
    let mut large_speedups = Vec::new();
    for &(fs, name) in &[
        (FieldSpec::goldilocks(), "Goldilocks"),
        (FieldSpec::bn254_fr(), "BN254-Fr"),
    ] {
        for &log_n in sizes {
            let (t1, t8) = if name == "Goldilocks" {
                (
                    single_gpu_run::<Goldilocks>(log_n, &cfg, fs).0,
                    unintt_run::<Goldilocks>(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs, 1).0,
                )
            } else {
                (
                    single_gpu_run::<Bn254Fr>(log_n, &cfg, fs).0,
                    unintt_run::<Bn254Fr>(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs, 1).0,
                )
            };
            let speedup = t1 / t8;
            speedups.push(speedup);
            if log_n >= 22 {
                large_speedups.push(speedup);
            }
            table.row(vec![
                name.to_string(),
                format!("2^{log_n}"),
                fmt_ns(t1),
                fmt_ns(t8),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let avg_large = large_speedups.iter().sum::<f64>() / large_speedups.len().max(1) as f64;
    table.note(format!(
        "average speedup {avg:.2}x over the full sweep; {avg_large:.2}x at N >= 2^22 \
         (paper abstract: 4.26x average)"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_speedup_in_paper_ballpark() {
        let table = run(false);
        let rendered = table.render();
        // Extract the average from the note.
        let avg: f64 = rendered
            .split("average speedup ")
            .nth(1)
            .and_then(|s| s.split('x').next())
            .and_then(|s| s.parse().ok())
            .expect("note must contain the average");
        assert!(
            (2.5..8.0).contains(&avg),
            "average speedup {avg} far from the paper's 4.26x"
        );
    }
}
