//! **E16 — observability**: the unified telemetry layer exercised end to
//! end, with its books balanced against the cost model.
//!
//! Three reference workloads run under one telemetry session and land in
//! one Chrome/Perfetto trace (`trace.json`, namespaced tracks) plus a
//! folded-stack file for flamegraphs:
//!
//! * **e1/** — the E1 headline shape (UniNTT on one 8×A100 node), with
//!   every retained per-device timeline event exported as a device span
//!   under the engine's phase spans;
//! * **e12/** — the E12 multi-node shape (2 nodes over IB 400G), cluster
//!   phases over per-node fabric phases over device spans;
//! * **serve/** — a small mixed proving-service stream: job lifecycle
//!   spans (queued → execute), lease dispatch spans, coalescer-flush and
//!   lease-repair instants;
//! * **streams/** — the same stream with proofs submitted as stage DAGs
//!   over two compute queues per lease, so the per-queue span tracks
//!   (`lease{l}.q{q}`) show MSM/NTT stages co-resident on one lease.
//!
//! The headline check is **reconciliation**: for every device track the
//! sum of exported span durations must equal the cost model's
//! bottleneck-attributed total (`Stats::time_ns.total()`) to within
//! float-summation rounding — and for the streamed serving section, the
//! per-queue stage spans must sum to the service report's own per-kind
//! stage attribution (`ServiceReport::stage_ns`). A trace that disagrees
//! with the numbers the benchmarks report would be worse than no trace
//! at all.

use std::fmt::Write as _;

use unintt_core::{Cluster, ClusterNttEngine, NetworkConfig, UniNttEngine, UniNttOptions};
use unintt_ff::{Bn254Fr, Goldilocks};
use unintt_gpu_sim::{presets, FieldSpec, Machine};
use unintt_serve::{
    JobSpec, ProofService, ServiceConfig, ServiceReport, WorkloadMix, WorkloadSpec,
};
use unintt_telemetry::{self as telemetry, AttrValue, InstantKind, Registry, Session, SpanLevel};

use crate::report::Table;

/// Where the machine-readable results land (committed, byte-compared —
/// stays in the working directory unlike the trace captures).
pub const JSON_PATH: &str = "BENCH_obs.json";
/// The merged Chrome/Perfetto trace's file name, resolved inside
/// [`crate::artifacts::trace_dir`].
pub const TRACE_FILE: &str = "trace.json";
/// Folded stacks for `flamegraph.pl`-style tooling, same directory.
pub const FOLDED_FILE: &str = "trace.folded";

/// Spans must account for the stats total to within float-summation
/// rounding (the two sides add the same numbers in different orders).
const RECON_REL_TOL: f64 = 1e-9;

/// One device track's reconciliation row: the sum of its telemetry span
/// durations against the cost model's bottleneck-attributed total.
pub struct ReconRow {
    /// Device track name (before section prefixing).
    pub track: String,
    /// Σ duration over the track's exported device spans, ns.
    pub span_ns: f64,
    /// `Stats::time_ns.total()` for the same device, ns.
    pub stats_ns: f64,
}

impl ReconRow {
    /// Relative disagreement between the two accountings.
    pub fn rel_err(&self) -> f64 {
        if self.stats_ns <= 0.0 {
            return if self.span_ns.abs() <= f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            };
        }
        ((self.span_ns - self.stats_ns) / self.stats_ns).abs()
    }
}

/// One trace section plus its reconciliation evidence.
pub struct SectionReport {
    /// Section name, also the track prefix (sans `/`).
    pub name: &'static str,
    /// Spans contributed to the merged trace.
    pub spans: usize,
    /// Instant events contributed.
    pub instants: usize,
    /// Per-device reconciliation rows (empty for the serve section, whose
    /// spans live on the service clock rather than a device clock).
    pub recon: Vec<ReconRow>,
}

/// Everything E16 produces before any file is written.
pub struct Collected {
    /// The merged, track-prefixed telemetry session.
    pub session: Session,
    /// Per-section bookkeeping.
    pub sections: Vec<SectionReport>,
    /// Metrics registry accumulated over all three sections.
    pub registry: Registry,
    /// The same registry in Prometheus text exposition format.
    pub prometheus: String,
}

/// Sums exported device spans per track and pairs each with the cost
/// model's own total. Panics if any device timeline overflowed (a
/// truncated timeline cannot balance) or the books disagree.
fn reconcile_devices(session: &Session, machine: &Machine) -> Vec<ReconRow> {
    (0..machine.num_devices())
        .map(|d| {
            let track = machine.device_track(d);
            assert_eq!(
                machine.timeline(d).dropped(),
                0,
                "reconciliation requires a complete timeline on {track}"
            );
            let span_ns = session
                .spans
                .iter()
                .filter(|s| s.level == SpanLevel::Device && s.track == track)
                .map(|s| s.duration_ns())
                .sum();
            let row = ReconRow {
                track,
                span_ns,
                stats_ns: machine.device_stats(d).time_ns.total(),
            };
            assert!(
                row.rel_err() < RECON_REL_TOL,
                "telemetry drifted from the cost model on {}: spans {} ns vs stats {} ns",
                row.track,
                row.span_ns,
                row.stats_ns
            );
            row
        })
        .collect()
}

/// Sums the per-queue stage spans per stage kind and pairs each with the
/// service report's own attribution — the serving-layer analogue of
/// [`reconcile_devices`] (serve spans live on the service clock, so the
/// report's `stage_ns` books are the total they must balance against).
/// Panics if the books disagree.
fn reconcile_stages(session: &Session, report: &ServiceReport) -> Vec<ReconRow> {
    report
        .stage_ns
        .iter()
        .map(|(&kind, &stats_ns)| {
            let span_ns = session
                .spans
                .iter()
                .filter(|s| {
                    s.category == "stage"
                        && s.attrs
                            .iter()
                            .any(|(k, v)| *k == "kind" && *v == AttrValue::Str(kind))
                })
                .map(|s| s.duration_ns())
                .sum();
            let row = ReconRow {
                track: format!("stage:{kind}"),
                span_ns,
                stats_ns,
            };
            assert!(
                row.rel_err() < RECON_REL_TOL,
                "per-queue spans drifted from the stage attribution on {}: \
                 spans {} ns vs stage_ns {} ns",
                row.track,
                row.span_ns,
                row.stats_ns
            );
            row
        })
        .collect()
}

/// Runs the four reference workloads under one telemetry session and
/// returns the merged trace plus reconciliation evidence. Writes nothing.
pub fn collect(quick: bool) -> Collected {
    let guard = telemetry::start_session();
    let mut sections = Vec::new();
    let mut merged = Session::default();

    // Section e1/ — the headline single-node shape.
    {
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(8);
        let log_n = if quick { 16 } else { 20 };
        let engine =
            UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
        let mut machine = Machine::new(cfg.clone(), fs);
        engine.simulate_forward(&mut machine, 1);
        machine.export_telemetry_spans();
        let mut session = telemetry::take_session();
        let recon = reconcile_devices(&session, &machine);
        session.prefix_tracks("e1/");
        sections.push(SectionReport {
            name: "e1",
            spans: session.spans.len(),
            instants: session.instants.len(),
            recon,
        });
        merged.merge(session);
    }

    // Section e12/ — the multi-node shape over the datacenter network.
    {
        let fs = FieldSpec::bn254_fr();
        let nodes = 2;
        let node_cfg = presets::a100_nvlink(4);
        let log_n = if quick { 14 } else { 18 };
        let engine = ClusterNttEngine::<Bn254Fr>::new(
            log_n,
            nodes,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );
        let mut cluster = Cluster::new(nodes, node_cfg, NetworkConfig::infiniband_400g(), fs);
        engine.simulate_forward(&mut cluster);
        for n in 0..cluster.num_nodes() {
            cluster.node(n).export_telemetry_spans();
        }
        let mut session = telemetry::take_session();
        let mut recon = Vec::new();
        for n in 0..cluster.num_nodes() {
            recon.extend(reconcile_devices(&session, cluster.node(n)));
        }
        session.prefix_tracks("e12/");
        sections.push(SectionReport {
            name: "e12",
            spans: session.spans.len(),
            instants: session.instants.len(),
            recon,
        });
        merged.merge(session);
    }

    // Section serve/ — a small mixed proving-service stream.
    {
        let jobs = if quick { 12 } else { 32 };
        let spec = WorkloadSpec {
            mix: WorkloadMix::mixed(),
            ..WorkloadSpec::raw_only(0xe16, jobs, 20_000.0)
        };
        let mut service = ProofService::new(ServiceConfig::default());
        service.submit_all(spec.generate());
        let report = service.run();
        assert!(
            report.all_completed(),
            "the E16 stream runs well under default admission capacity"
        );
        let mut session = telemetry::take_session();
        // Lease clusters restart their simulated clocks at zero on every
        // dispatch, so their device/fabric/cluster spans do not share the
        // service clock; keep only the service-level story.
        session.spans.retain(|s| s.level == SpanLevel::Serve);
        session.instants.retain(|i| {
            matches!(
                i.kind,
                InstantKind::LeaseRepair | InstantKind::CoalescerFlush
            )
        });
        session.prefix_tracks("serve/");
        sections.push(SectionReport {
            name: "serve",
            spans: session.spans.len(),
            instants: session.instants.len(),
            recon: Vec::new(),
        });
        merged.merge(session);
    }

    // Section streams/ — the same stream with proofs submitted as stage
    // DAGs over two compute queues per lease. Stage spans ride
    // `lease{l}.q{q}` tracks and must sum, kind by kind, to the service
    // report's own stage attribution.
    {
        let jobs = if quick { 12 } else { 32 };
        let spec = WorkloadSpec {
            mix: WorkloadMix::mixed(),
            ..WorkloadSpec::raw_only(0xe16, jobs, 20_000.0)
        };
        let stream: Vec<JobSpec> = spec
            .generate()
            .into_iter()
            .map(|s| JobSpec {
                class: s.class.pipelined(),
                ..s
            })
            .collect();
        let mut service = ProofService::new(ServiceConfig {
            streams_per_lease: 2,
            ..ServiceConfig::default()
        });
        service.submit_all(stream);
        let report = service.run();
        assert!(
            report.all_completed(),
            "the E16 streamed section runs well under default admission capacity"
        );
        let mut session = telemetry::take_session();
        // Same clock rationale as serve/: keep the service-level story.
        session.spans.retain(|s| s.level == SpanLevel::Serve);
        session.instants.retain(|i| {
            matches!(
                i.kind,
                InstantKind::LeaseRepair | InstantKind::CoalescerFlush
            )
        });
        let recon = reconcile_stages(&session, &report);
        session.prefix_tracks("streams/");
        sections.push(SectionReport {
            name: "streams",
            spans: session.spans.len(),
            instants: session.instants.len(),
            recon,
        });
        merged.merge(session);
    }

    let registry = telemetry::registry_snapshot();
    let prometheus = telemetry::render_prometheus();
    drop(guard);
    Collected {
        session: merged,
        sections,
        registry,
        prometheus,
    }
}

fn render_json(collected: &Collected, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"observability\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"sections\": [\n");
    for (i, sec) in collected.sections.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"spans\": {}, \"instants\": {}, \"reconciliation\": [",
            sec.name, sec.spans, sec.instants
        );
        for (j, r) in sec.recon.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"track\": \"{}\", \"span_ns\": {:.3}, \"stats_ns\": {:.3}, \
                 \"rel_err\": {:.3e}}}",
                if j == 0 { "" } else { ", " },
                r.track,
                r.span_ns,
                r.stats_ns,
                r.rel_err()
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < collected.sections.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"counters\": {");
    for (i, (name, value)) in collected.registry.counters.iter().enumerate() {
        let _ = write!(out, "{}\"{name}\": {value}", if i == 0 { "" } else { ", " });
    }
    out.push_str("}\n}\n");
    out
}

/// Runs E16, writes [`TRACE_FILE`] and [`FOLDED_FILE`] into the trace
/// directory plus [`JSON_PATH`] in the working directory, and renders
/// the table.
pub fn run(quick: bool) -> Table {
    let collected = collect(quick);
    let mut table = Table::new(
        "E16: unified telemetry — Perfetto trace + cost-model reconciliation",
        &["section", "spans", "instants", "tracks", "max rel err"],
    );
    for sec in &collected.sections {
        let max_err = sec.recon.iter().map(ReconRow::rel_err).fold(0.0, f64::max);
        table.row(vec![
            sec.name.to_string(),
            sec.spans.to_string(),
            sec.instants.to_string(),
            if sec.recon.is_empty() {
                "-".into()
            } else {
                sec.recon.len().to_string()
            },
            if sec.recon.is_empty() {
                "-".into()
            } else {
                format!("{max_err:.1e}")
            },
        ]);
    }
    table.note("every device track's span total matches Stats::time_ns.total()");

    let trace = telemetry::chrome_trace_json(&collected.session);
    let summary = telemetry::validate_chrome_trace(&trace)
        .expect("exported trace must be well-formed Chrome/Perfetto JSON");
    table.note(format!(
        "trace validated: {} events on {} tracks",
        summary.events, summary.tracks
    ));
    let folded = telemetry::folded_stacks(&collected.session);
    let json = render_json(&collected, quick);
    for (path, body, what) in [
        (
            crate::artifacts::trace_path(TRACE_FILE),
            &trace,
            "Perfetto/chrome://tracing trace",
        ),
        (
            crate::artifacts::trace_path(FOLDED_FILE),
            &folded,
            "folded stacks",
        ),
        (JSON_PATH.into(), &json, "machine-readable results"),
    ] {
        match std::fs::write(&path, body) {
            Ok(()) => table.note(format!("{what} written to {}", path.display())),
            Err(e) => table.note(format!("could not write {}: {e}", path.display())),
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_telemetry::SpanTree;

    #[test]
    fn reconciliation_holds_and_sections_are_populated() {
        let collected = collect(true);
        assert_eq!(collected.sections.len(), 4);
        for sec in &collected.sections {
            assert!(sec.spans > 0, "section {} recorded no spans", sec.name);
        }
        let device_rows: usize = collected.sections[..2].iter().map(|s| s.recon.len()).sum();
        assert_eq!(device_rows, 8 + 2 * 4, "e1 has 8 devices, e12 has 2x4");
        // collect() already asserts each row balances; spot-check one.
        assert!(collected.sections[0].recon[0].stats_ns > 0.0);
        assert!(
            collected.registry.counters.contains_key("sim_collectives"),
            "engine exchanges must bump the collective counter"
        );
        assert!(collected.prometheus.contains("sim_collectives"));
    }

    #[test]
    fn merged_trace_is_valid_and_tree_checks_pass() {
        let collected = collect(true);
        let trace = telemetry::chrome_trace_json(&collected.session);
        let summary = telemetry::validate_chrome_trace(&trace).expect("trace must parse");
        assert!(summary.complete > 0 && summary.metadata > 0);
        assert!(summary.tracks >= 8 + 2 * 4, "one track per device at least");
        assert!(trace.contains("e1/machine/gpu0"));
        assert!(trace.contains("e12/node1/gpu0"));
        assert!(trace.contains("serve/"));

        let tree = SpanTree::build(&collected.session.spans);
        tree.validate().expect("span tree invariants must hold");
        assert!(!telemetry::folded_stacks(&collected.session).is_empty());
    }

    #[test]
    fn serve_section_keeps_the_service_level_story() {
        let collected = collect(true);
        let serve = &collected.sections[2];
        assert!(serve.instants > 0, "coalescer flushes must be marked");
        let serve_spans: Vec<_> = collected
            .session
            .spans
            .iter()
            .filter(|s| s.track.starts_with("serve/"))
            .collect();
        assert!(serve_spans.iter().all(|s| s.level == SpanLevel::Serve));
        assert!(serve_spans.iter().any(|s| s.name == "job"));
        assert!(serve_spans.iter().any(|s| s.name == "dispatch"));
    }

    #[test]
    fn streams_section_reconciles_per_queue_stage_spans() {
        let collected = collect(true);
        let streams = &collected.sections[3];
        assert_eq!(streams.name, "streams");
        assert!(
            !streams.recon.is_empty(),
            "the streamed section must reconcile its stage attribution"
        );
        assert!(streams.recon.iter().all(|r| r.track.starts_with("stage:")));
        // collect() already asserts each row balances; check the spans
        // actually ride per-queue tracks so traces show co-residency.
        let queue_tracks: std::collections::BTreeSet<_> = collected
            .session
            .spans
            .iter()
            .filter(|s| s.track.starts_with("streams/lease") && s.track.contains(".q"))
            .map(|s| s.track.clone())
            .collect();
        assert!(
            queue_tracks.len() > 2,
            "two queues per lease must spread stages over several queue \
             tracks, got {queue_tracks:?}"
        );
    }

    #[test]
    fn output_is_deterministic_run_to_run() {
        let a = collect(true);
        let b = collect(true);
        assert_eq!(
            telemetry::chrome_trace_json(&a.session),
            telemetry::chrome_trace_json(&b.session),
            "identical runs must render byte-identical traces"
        );
        assert_eq!(render_json(&a, true), render_json(&b, true));
        assert_eq!(a.prometheus, b.prometheus);
    }

    #[test]
    fn telemetry_never_changes_the_simulated_numbers() {
        let run_once = || {
            let fs = FieldSpec::goldilocks();
            let cfg = presets::a100_nvlink(8);
            let engine =
                UniNttEngine::<Goldilocks>::new(14, &cfg, UniNttOptions::tuned_for(&fs), fs);
            let mut machine = Machine::new(cfg.clone(), fs);
            engine.simulate_forward(&mut machine, 1);
            (machine.max_clock_ns(), machine.stats())
        };
        let (t_plain, s_plain) = run_once();
        let (t_traced, s_traced) = {
            let _guard = telemetry::start_session();
            run_once()
        };
        assert_eq!(t_plain, t_traced, "recording must not move the clock");
        assert_eq!(s_plain.time_ns.total(), s_traced.time_ns.total());
        assert_eq!(s_plain.comm_hidden_ns, s_traced.comm_hidden_ns);
    }
}
