//! **E21 — SLO burn-rate alerting over injected degradations**: the
//! fleet-scale sensing layer end to end. A seeded multi-tenant stream
//! plays through the `serve::fleet` service three times — fault-free,
//! under a cluster kill/revive, and under a straggler burst of oversized
//! transforms — and every run's job outcomes replay through the
//! [`SloEngine`](unintt_telemetry::SloEngine) in completion order.
//!
//! Three sections:
//! * **slo** — multi-window burn-rate alerting: alerts fire inside every
//!   injected degradation window and **never** on the clean baseline
//!   (zero false positives is asserted, not sampled);
//! * **hist** — streaming-vs-exact reconciliation: the log-bucketed
//!   [`StreamHist`](unintt_telemetry::StreamHist) quantiles of the
//!   baseline sojourn stream stay within 2 % of the exact nearest-rank
//!   percentiles over the same samples;
//! * **attribution** — bottleneck verdicts on known workloads: multi-GPU
//!   MSM is compute-bound, a large-N NTT on NVLink is memory-bound, and
//!   the same transform across a PCIe ring is wire-bound.
//!
//! Everything runs on the simulated clock from seeded workloads, so two
//! runs produce byte-identical output — including the machine-readable
//! `BENCH_slo.json`.

use std::fmt::Write as _;

use unintt_core::{UniNttEngine, UniNttOptions};
use unintt_ff::Goldilocks;
use unintt_gpu_sim::{presets, FieldSpec, Machine, Topology};
use unintt_msm::simulate_multi_gpu_msm;
use unintt_ntt::Direction;
use unintt_serve::{
    AttributionRow, ChaosEvent, ChaosKind, ChaosPlan, FleetConfig, FleetReport, FleetService,
    JobClass, JobOutcome, JobSpec, JobStatus, Priority, SchedulerPolicy, ServiceConfig,
    ServiceField, Verdict, WorkloadSpec,
};
use unintt_telemetry::{
    self as telemetry, BurnWindows, LatencyStats, Objective, SloEngine, SloEvent, SloSpec,
    StreamHist,
};

use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_slo.json";

/// Stream size per mode.
fn jobs(quick: bool) -> usize {
    if quick {
        48
    } else {
        160
    }
}

/// The seeded bursty multi-tenant stream every cell replays.
fn stream(quick: bool) -> WorkloadSpec {
    WorkloadSpec::bursty(0xe21, jobs(quick), 40_000.0)
}

/// A three-cluster fleet with the given chaos plan.
fn fleet_config(chaos: ChaosPlan) -> FleetConfig {
    FleetConfig {
        clusters: 3,
        base: ServiceConfig {
            policy: SchedulerPolicy::Fifo,
            ..ServiceConfig::default()
        },
        chaos,
        ..FleetConfig::default()
    }
}

/// Plays `specs` (already sorted by arrival) through a fleet with `chaos`.
fn run_fleet(specs: Vec<JobSpec>, chaos: ChaosPlan) -> FleetReport {
    let mut fleet = FleetService::new(fleet_config(chaos));
    fleet.submit_all(specs);
    fleet.run()
}

/// The degradation the straggler cell injects: a burst of oversized
/// raw-NTT jobs spread over distinct batch keys so they land on every
/// lease at once, queuing the regular traffic behind them.
fn straggler_burst(start_ns: f64) -> Vec<JobSpec> {
    let shapes = [
        (ServiceField::Goldilocks, 24, Direction::Forward),
        (ServiceField::Goldilocks, 24, Direction::Inverse),
        (ServiceField::BabyBear, 24, Direction::Forward),
        (ServiceField::BabyBear, 24, Direction::Inverse),
        (ServiceField::Goldilocks, 23, Direction::Forward),
        (ServiceField::Goldilocks, 23, Direction::Inverse),
        (ServiceField::BabyBear, 23, Direction::Forward),
        (ServiceField::BabyBear, 23, Direction::Inverse),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(field, log_n, direction))| JobSpec {
            // A tenant id outside the workload's 0..=5 range, so the
            // injected jobs stay identifiable in the outcome stream.
            tenant: 99,
            class: JobClass::RawNtt {
                field,
                log_n,
                direction,
            },
            priority: Priority::Normal,
            deadline_ns: None,
            arrival_ns: start_ns + i as f64 * 1_000.0,
        })
        .collect()
}

/// Merges `extra` into `base` keeping arrival order.
fn merged(base: Vec<JobSpec>, extra: Vec<JobSpec>) -> Vec<JobSpec> {
    let mut all = base;
    all.extend(extra);
    all.sort_by(|a, b| {
        a.arrival_ns
            .partial_cmp(&b.arrival_ns)
            .expect("arrivals are finite")
    });
    all
}

/// The SLO objectives every replay evaluates. `latency_threshold_ns` and
/// `deadline_slack_ns` are calibrated from the fault-free probe run so
/// the baseline is clean by construction, not by tuning.
fn slo_specs(horizon_ns: f64, latency_threshold_ns: f64) -> Vec<SloSpec> {
    // The multi-window ladder pairs the longer window with a lower
    // threshold (the classic 14.4-over-5min / 6-over-6h prescription);
    // the scaled defaults keep 14.4 on the fast window. `min_events`
    // drops with the windows: a quick-mode slow window only holds a
    // handful of completions.
    let windows = BurnWindows {
        slow_threshold: 6.0,
        min_events: 4,
        ..BurnWindows::scaled_to(horizon_ns)
    };
    vec![
        SloSpec {
            name: "raw-ntt-latency",
            tenant: None,
            class: Some("raw-ntt"),
            objective: Objective::Latency {
                threshold_ns: latency_threshold_ns,
                target: 0.97,
            },
            windows,
        },
        SloSpec {
            name: "fleet-availability",
            tenant: None,
            class: None,
            objective: Objective::Availability { target: 0.999 },
            windows,
        },
    ]
}

/// When a job's SLI materializes. Completed (and rejected) jobs count
/// at their terminal instant; a deadline-cancelled job counts at the
/// deadline itself — the moment the promise was broken — not at the
/// (much later) instant the scheduler got around to sweeping it.
fn sli_instant(o: &JobOutcome) -> f64 {
    match o.status {
        JobStatus::DeadlineExceeded { deadline_ns } => deadline_ns,
        _ => o.completed_ns,
    }
}

/// Replays a fleet run's outcomes through the burn-rate engine in
/// SLI-instant order.
fn replay(report: &FleetReport, specs: Vec<SloSpec>) -> SloEngine {
    let mut engine = SloEngine::new(specs);
    let mut ordered: Vec<&JobOutcome> = report.outcomes.iter().collect();
    ordered.sort_by(|a, b| {
        sli_instant(a)
            .partial_cmp(&sli_instant(b))
            .expect("instants are finite")
            .then(a.id.cmp(&b.id))
    });
    for o in &ordered {
        engine.record(&SloEvent {
            t_ns: sli_instant(o),
            tenant: o.tenant,
            class: o.class_name,
            ok: o.completed(),
            latency_ns: o.latency_ns(),
        });
    }
    engine
}

/// One SLO scenario: the run, its replay and the degradation window the
/// alerts must fall into (`None` = no degradation, alerts forbidden).
struct SloCell {
    scenario: &'static str,
    report: FleetReport,
    engine: SloEngine,
    window: Option<(f64, f64)>,
}

impl SloCell {
    fn alerts_ok(&self) -> bool {
        match self.window {
            None => self.engine.alerts().is_empty(),
            Some((lo, hi)) => {
                !self.engine.alerts().is_empty()
                    && self
                        .engine
                        .alerts()
                        .iter()
                        .all(|a| a.t_ns >= lo && a.t_ns <= hi)
            }
        }
    }
}

/// Largest completed-job sojourn in a run, ns.
fn max_latency_ns(report: &FleetReport) -> f64 {
    report
        .outcomes
        .iter()
        .filter(|o| o.completed())
        .map(JobOutcome::latency_ns)
        .fold(0.0f64, f64::max)
}

/// Runs the three SLO scenarios. Returns the cells plus the calibrated
/// latency threshold.
fn run_slo_cells(quick: bool) -> (Vec<SloCell>, f64) {
    let spec = stream(quick);
    let base_jobs = spec.generate();

    // Probe: the fault-free run calibrates everything downstream. The
    // latency SLO promises "no slower than 1.5× the worst fault-free
    // sojourn"; the deadline is looser still, so fault-free runs with
    // deadlines attached behave identically to the probe.
    let probe = run_fleet(base_jobs.clone(), ChaosPlan::none());
    assert!(probe.zero_accepted_failures());
    let horizon = probe.metrics.horizon_ns;
    let threshold_ns = 1.5 * max_latency_ns(&probe);
    let deadline_slack_ns = 2.5 * max_latency_ns(&probe);

    let with_deadlines = |jobs: &[JobSpec]| -> Vec<JobSpec> {
        jobs.iter()
            .map(|j| JobSpec {
                deadline_ns: Some(j.arrival_ns + deadline_slack_ns),
                ..*j
            })
            .collect()
    };

    let mut cells = Vec::new();

    // Baseline: same stream, deadlines attached, no faults — the
    // zero-false-positive reference.
    let baseline = run_fleet(with_deadlines(&base_jobs), ChaosPlan::none());
    assert!(baseline.zero_accepted_failures());
    let engine = replay(&baseline, slo_specs(horizon, threshold_ns));
    cells.push(SloCell {
        scenario: "baseline",
        report: baseline,
        engine,
        window: None,
    });

    // Chaos: two of three clusters die mid-burst and revive late; the
    // survivor's queue grows, sojourns inflate past the SLO threshold
    // and hopeless deadlines are cancelled — burn-rate alerts must fire
    // inside the outage (plus the backlog-drain tail).
    let kill_ns = horizon * 0.25;
    let revive_ns = horizon * 0.7;
    let double_kill = ChaosPlan {
        events: vec![
            ChaosEvent {
                t_ns: kill_ns,
                cluster: 0,
                kind: ChaosKind::Kill,
            },
            ChaosEvent {
                t_ns: kill_ns,
                cluster: 1,
                kind: ChaosKind::Kill,
            },
            ChaosEvent {
                t_ns: revive_ns,
                cluster: 0,
                kind: ChaosKind::Revive,
            },
            ChaosEvent {
                t_ns: revive_ns,
                cluster: 1,
                kind: ChaosKind::Revive,
            },
        ],
    };
    let chaos = run_fleet(with_deadlines(&base_jobs), double_kill);
    assert!(chaos.zero_accepted_failures());
    let engine = replay(&chaos, slo_specs(horizon, threshold_ns));
    // Outage effects persist past the revival: the survivor's backlog
    // drains and deadlines armed during the outage keep lapsing for up
    // to `deadline_slack_ns` after it ends.
    let chaos_window = (kill_ns, revive_ns + deadline_slack_ns + 0.5 * horizon);
    cells.push(SloCell {
        scenario: "chaos-kill",
        report: chaos,
        engine,
        window: Some(chaos_window),
    });

    // Straggler burst: oversized transforms occupy every lease at once;
    // regular jobs queue behind them and blow the latency SLO.
    let burst_ns = horizon * 0.4;
    let straggler = run_fleet(
        merged(with_deadlines(&base_jobs), straggler_burst(burst_ns)),
        ChaosPlan::none(),
    );
    assert!(straggler.zero_accepted_failures());
    let engine = replay(&straggler, slo_specs(horizon, threshold_ns));
    // Like the outage, the jam's effects last until the queued victims
    // drain and the deadlines armed behind the stragglers lapse.
    cells.push(SloCell {
        scenario: "straggler-burst",
        report: straggler,
        engine,
        window: Some((burst_ns, burst_ns + deadline_slack_ns + 0.6 * horizon)),
    });

    (cells, threshold_ns)
}

/// Streaming-vs-exact quantile reconciliation over one latency stream.
struct HistRecon {
    count: u64,
    exact: LatencyStats,
    stream_p50_ns: f64,
    stream_p95_ns: f64,
    stream_p99_ns: f64,
}

impl HistRecon {
    fn from_outcomes(outcomes: &[JobOutcome]) -> Self {
        let samples: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.completed())
            .map(JobOutcome::latency_ns)
            .collect();
        let mut hist = StreamHist::new();
        for &s in &samples {
            hist.observe(s);
        }
        Self {
            count: samples.len() as u64,
            exact: LatencyStats::from_samples(&samples),
            stream_p50_ns: hist.quantile(0.50),
            stream_p95_ns: hist.quantile(0.95),
            stream_p99_ns: hist.quantile(0.99),
        }
    }

    fn worst_rel_err(&self) -> f64 {
        [
            (self.stream_p50_ns, self.exact.p50_ns),
            (self.stream_p95_ns, self.exact.p95_ns),
            (self.stream_p99_ns, self.exact.p99_ns),
        ]
        .iter()
        .map(|&(approx, exact)| {
            if exact == 0.0 {
                0.0
            } else {
                (approx - exact).abs() / exact
            }
        })
        .fold(0.0f64, f64::max)
    }
}

/// One attribution cell: the attributed machine row plus the verdict the
/// workload's roofline analysis predicts.
struct AttrCell {
    row: AttributionRow,
    expected: Verdict,
}

/// The three known-class workloads of the acceptance criteria. All three
/// drive the cost-only simulation paths, so they are cheap enough to
/// keep full-size in quick mode (and the JSON stays mode-independent).
fn attribution_cells() -> Vec<AttrCell> {
    let mut cells = Vec::new();

    // Multi-GPU MSM: Pippenger bucket accumulation is arithmetic-heavy.
    let mut msm_machine = Machine::new(presets::a100_nvlink(4), FieldSpec::bn254_fr());
    simulate_multi_gpu_msm(&mut msm_machine, 1u64 << 20);
    cells.push(AttrCell {
        row: AttributionRow::from_machine("msm/a100x4-nvlink", &msm_machine),
        expected: Verdict::ComputeBound,
    });

    // Large-N NTT on NVLink: butterflies stream the whole vector through
    // global memory every round — memory-bound. (Below ~2^22 the launch
    // overhead and exchange latency still dominate; the verdict flips to
    // memory-bound exactly where the paper's roofline says it should.)
    let fs = FieldSpec::goldilocks();
    let log_n = 24;
    let cfg = presets::a100_nvlink(8);
    let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
    let mut machine = Machine::new(cfg, fs);
    engine.simulate_forward(&mut machine, 1);
    cells.push(AttrCell {
        row: AttributionRow::from_machine("ntt/a100x8-nvlink", &machine),
        expected: Verdict::MemoryBound,
    });

    // The same transform across a PCIe ring: the all-to-all exchange
    // crawls over ~25 GB/s hops — wire-bound.
    let mut pcie = presets::rtx4090_pcie(4);
    pcie.interconnect.topology = Topology::Ring;
    let log_n = 20;
    let engine = UniNttEngine::<Goldilocks>::new(log_n, &pcie, UniNttOptions::tuned_for(&fs), fs);
    let mut machine = Machine::new(pcie.clone(), fs);
    engine.simulate_forward(&mut machine, 1);
    cells.push(AttrCell {
        row: AttributionRow::from_machine("ntt/rtx4090x4-pcie-ring", &machine),
        expected: Verdict::WireBound,
    });

    cells
}

/// Renders the bottleneck-attribution verdicts for `which` — a substring
/// of a workload scope (`msm`, `ntt`, `pcie`, …) or `all`. Backs the
/// `harness attribute <workload>` command. Returns `None` when nothing
/// matches.
pub fn attribution_report(which: &str) -> Option<Table> {
    let cells = attribution_cells();
    let selected: Vec<&AttrCell> = cells
        .iter()
        .filter(|c| which == "all" || c.row.scope.contains(which))
        .collect();
    if selected.is_empty() {
        return None;
    }
    let mut table = Table::new(
        "Bottleneck attribution: utilization-vs-roofline fractions per workload",
        &[
            "workload",
            "total",
            "compute",
            "memory",
            "wire",
            "other",
            "peak-link",
            "verdict",
        ],
    );
    for c in &selected {
        let r = &c.row;
        table.row(vec![
            r.scope.clone(),
            fmt_ns(r.total_ns),
            format!("{:.1}%", 100.0 * r.compute_frac),
            format!("{:.1}%", 100.0 * r.memory_frac),
            format!("{:.1}%", 100.0 * r.wire_frac),
            format!("{:.1}%", 100.0 * r.other_frac),
            r.peak_link_utilization
                .map(|u| format!("{:.1}%", 100.0 * u))
                .unwrap_or_else(|| "-".into()),
            r.verdict.as_str().into(),
        ]);
    }
    table.note("verdict = dominant busy fraction vs the device roofline (see serve::attribution)");
    Some(table)
}

fn render_json(
    slo: &[SloCell],
    threshold_ns: f64,
    recon: &HistRecon,
    attr: &[AttrCell],
    alerts_recorded: usize,
    quick: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"slo-observability\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"latency_slo_threshold_ns\": {threshold_ns:.0},");
    let _ = writeln!(out, "  \"alert_instants_recorded\": {alerts_recorded},");
    out.push_str("  \"slo\": [\n");
    for (i, c) in slo.iter().enumerate() {
        let m = &c.report.metrics;
        let (lo, hi) = c.window.unwrap_or((0.0, 0.0));
        let alert_specs: Vec<String> = c
            .engine
            .alerts()
            .iter()
            .map(|a| format!("\"{}\"", a.spec))
            .collect();
        let _ = write!(
            out,
            "    {{\"scenario\": \"{}\", \"completed\": {}, \"deadline_cancelled\": {}, \
             \"failovers\": {}, \"horizon_ns\": {:.0}, \"p99_ns\": {:.0}, \
             \"alerts\": {}, \"alert_specs\": [{}], \
             \"window_ns\": [{:.0}, {:.0}], \"alerts_in_window\": {}}}",
            c.scenario,
            m.completed(),
            m.deadline_exceeded(),
            c.report.fleet.failovers,
            m.horizon_ns,
            m.classes["raw-ntt"].latency.p99_ns,
            c.engine.alerts().len(),
            alert_specs.join(", "),
            lo,
            hi,
            c.alerts_ok(),
        );
        out.push_str(if i + 1 < slo.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"hist\": {{\"count\": {}, \"exact_p50_ns\": {:.0}, \"stream_p50_ns\": {:.0}, \
         \"exact_p95_ns\": {:.0}, \"stream_p95_ns\": {:.0}, \
         \"exact_p99_ns\": {:.0}, \"stream_p99_ns\": {:.0}, \"worst_rel_err\": {:.6}}},",
        recon.count,
        recon.exact.p50_ns,
        recon.stream_p50_ns,
        recon.exact.p95_ns,
        recon.stream_p95_ns,
        recon.exact.p99_ns,
        recon.stream_p99_ns,
        recon.worst_rel_err(),
    );
    out.push_str("  \"attribution\": [\n");
    for (i, c) in attr.iter().enumerate() {
        let r = &c.row;
        let _ = write!(
            out,
            "    {{\"scope\": \"{}\", \"verdict\": \"{}\", \"expected\": \"{}\", \
             \"total_ns\": {:.0}, \"compute_frac\": {:.4}, \"memory_frac\": {:.4}, \
             \"wire_frac\": {:.4}, \"other_frac\": {:.4}{}}}",
            r.scope,
            r.verdict.as_str(),
            c.expected.as_str(),
            r.total_ns,
            r.compute_frac,
            r.memory_frac,
            r.wire_frac,
            r.other_frac,
            r.peak_link_utilization
                .map(|u| format!(", \"peak_link_utilization\": {u:.4}"))
                .unwrap_or_default(),
        );
        out.push_str(if i + 1 < attr.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs E21 and renders the table (also writes [`JSON_PATH`]).
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E21: SLO burn-rate alerts, streaming histograms, bottleneck attribution",
        &[
            "section",
            "cell",
            "detail",
            "alerts",
            "in-window",
            "p99",
            "verdict",
        ],
    );

    // The SLO replays run under a telemetry session so alert instants
    // and burn-rate gauges land somewhere inspectable.
    let guard = telemetry::start_session();
    let (cells, threshold_ns) = run_slo_cells(quick);
    let session = telemetry::take_session();
    drop(guard);
    let alerts_recorded = session
        .instants
        .iter()
        .filter(|i| i.kind == unintt_telemetry::InstantKind::Alert)
        .count();
    let fired: usize = cells.iter().map(|c| c.engine.alerts().len()).sum();
    assert_eq!(
        alerts_recorded, fired,
        "every fired alert must be recorded in the telemetry session"
    );

    for c in &cells {
        assert!(
            c.alerts_ok(),
            "E21 invariant ({}): alerts {:?} outside window {:?}",
            c.scenario,
            c.engine.alerts(),
            c.window
        );
        table.row(vec![
            "slo".into(),
            c.scenario.into(),
            match c.window {
                None => "no degradation injected".into(),
                Some((lo, hi)) => format!("degraded {}..{}", fmt_ns(lo), fmt_ns(hi)),
            },
            format!("{}", c.engine.alerts().len()),
            match c.window {
                None => "n/a (none allowed)".into(),
                Some(_) => if c.alerts_ok() { "yes" } else { "NO" }.into(),
            },
            fmt_ns(c.report.metrics.classes["raw-ntt"].latency.p99_ns),
            "-".into(),
        ]);
    }

    let recon = HistRecon::from_outcomes(&cells[0].report.outcomes);
    assert!(
        recon.worst_rel_err() < 0.02,
        "streaming quantiles drifted {:.4} > 2% from exact",
        recon.worst_rel_err()
    );
    table.row(vec![
        "hist".into(),
        "stream-vs-exact".into(),
        format!(
            "p99 {} vs {} exact",
            fmt_ns(recon.stream_p99_ns),
            fmt_ns(recon.exact.p99_ns)
        ),
        "-".into(),
        format!("err {:.3}%", 100.0 * recon.worst_rel_err()),
        fmt_ns(recon.exact.p99_ns),
        "-".into(),
    ]);

    let attr = attribution_cells();
    for c in &attr {
        assert_eq!(
            c.row.verdict, c.expected,
            "attribution verdict drifted on {}: {:?}",
            c.row.scope, c.row
        );
        table.row(vec![
            "attribution".into(),
            c.row.scope.clone(),
            format!(
                "compute {:.0}% mem {:.0}% wire {:.0}%",
                100.0 * c.row.compute_frac,
                100.0 * c.row.memory_frac,
                100.0 * c.row.wire_frac
            ),
            "-".into(),
            "-".into(),
            "-".into(),
            c.row.verdict.as_str().into(),
        ]);
    }

    table.note(format!(
        "latency SLO threshold {} = 1.5x the worst fault-free sojourn (self-calibrated)",
        fmt_ns(threshold_ns)
    ));
    table.note(
        "alerts: multi-window burn rate >= 14.4 over both fast (h/24) and slow (h/6) windows",
    );
    table.note("zero false positives on the clean baseline is asserted, not sampled");
    let json = render_json(&cells, threshold_ns, &recon, &attr, alerts_recorded, quick);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_clean_and_degraded_cells_alert_in_window() {
        let (cells, threshold_ns) = run_slo_cells(true);
        assert!(threshold_ns > 0.0);
        assert_eq!(cells.len(), 3);
        let baseline = &cells[0];
        assert!(baseline.window.is_none());
        assert!(
            baseline.engine.alerts().is_empty(),
            "fault-free baseline fired {:?}",
            baseline.engine.alerts()
        );
        for c in &cells[1..] {
            assert!(
                !c.engine.alerts().is_empty(),
                "{} injected a degradation but no alert fired",
                c.scenario
            );
            assert!(
                c.alerts_ok(),
                "{} alerts {:?} escaped window {:?}",
                c.scenario,
                c.engine.alerts(),
                c.window
            );
        }
    }

    #[test]
    fn streaming_quantiles_track_exact_within_two_percent() {
        let (cells, _) = run_slo_cells(true);
        let recon = HistRecon::from_outcomes(&cells[0].report.outcomes);
        assert!(recon.count > 0);
        assert!(
            recon.worst_rel_err() < 0.02,
            "streaming p50/p95/p99 drifted {:.4} from exact",
            recon.worst_rel_err()
        );
    }

    #[test]
    fn attribution_verdicts_match_known_classes() {
        for c in attribution_cells() {
            assert_eq!(
                c.row.verdict, c.expected,
                "attribution verdict drifted on {}: {:?}",
                c.row.scope, c.row
            );
        }
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let run_once = || {
            let (cells, threshold_ns) = run_slo_cells(true);
            let recon = HistRecon::from_outcomes(&cells[0].report.outcomes);
            let fired: usize = cells.iter().map(|c| c.engine.alerts().len()).sum();
            render_json(
                &cells,
                threshold_ns,
                &recon,
                &attribution_cells(),
                fired,
                true,
            )
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "identical runs must render byte-identical JSON");
        assert!(a.starts_with("{\n") && a.ends_with("}\n"));
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"alerts_in_window\": true"));
        assert!(!a.contains("\"alerts_in_window\": false"));
    }
}
