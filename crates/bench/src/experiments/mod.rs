//! The reconstructed evaluation suite: one module per table/figure.
//!
//! Every experiment prints the rows the paper's corresponding table or
//! figure would contain (see `DESIGN.md` for the experiment index E1–E10
//! and `EXPERIMENTS.md` for a captured run with commentary). Experiments
//! E1–E7 and E9 drive the cost-only simulation paths (whose lock-step
//! equivalence with the functional paths is enforced by tests in
//! `unintt-core`); E8 runs the full functional prover.

pub mod e11_stark_commit;
pub mod e12_multi_node;
pub mod e13_fault_tolerance;
pub mod e14_serving;
pub mod e15_comm_overlap;
pub mod e16_observability;
pub mod e17_resilience;
pub mod e18_vector_kernels;
pub mod e19_pipeline;
pub mod e1_headline;
pub mod e20_streams;
pub mod e21_slo;
pub mod e2_scaling;
pub mod e3_vs_baseline;
pub mod e4_comm_volume;
pub mod e5_breakdown;
pub mod e6_ablation;
pub mod e7_topology;
pub mod e8_end_to_end;
pub mod e9_batching;

use unintt_core::{single_gpu, FourStepMultiGpuEngine, UniNttEngine, UniNttOptions};
use unintt_ff::TwoAdicField;
use unintt_gpu_sim::{FieldSpec, Machine, MachineConfig, Stats};

use crate::report::Table;

/// Simulated forward-NTT time and stats for UniNTT with the given options.
pub fn unintt_run<F: TwoAdicField>(
    log_n: u32,
    cfg: &MachineConfig,
    opts: UniNttOptions,
    fs: FieldSpec,
    batch: u64,
) -> (f64, Stats) {
    let engine = UniNttEngine::<F>::new(log_n, cfg, opts, fs);
    let mut machine = Machine::new(cfg.clone(), fs);
    engine.simulate_forward(&mut machine, batch);
    (machine.max_clock_ns(), machine.stats())
}

/// Simulated forward-NTT time on a single GPU of the same model
/// (the strong baseline).
pub fn single_gpu_run<F: TwoAdicField>(
    log_n: u32,
    cfg: &MachineConfig,
    fs: FieldSpec,
) -> (f64, Stats) {
    let engine = single_gpu::engine::<F>(log_n, cfg, fs);
    let mut machine = single_gpu::machine(cfg, fs);
    engine.simulate_forward(&mut machine, 1);
    (machine.max_clock_ns(), machine.stats())
}

/// Simulated forward-NTT time for the naive four-step multi-GPU baseline.
pub fn baseline_run<F: TwoAdicField>(
    log_n: u32,
    cfg: &MachineConfig,
    fs: FieldSpec,
) -> (f64, Stats) {
    let engine = FourStepMultiGpuEngine::<F>::new(log_n, cfg, fs);
    let mut machine = Machine::new(cfg.clone(), fs);
    engine.simulate_forward(&mut machine, 1);
    (machine.max_clock_ns(), machine.stats())
}

/// Runs every experiment and returns the rendered tables in order.
///
/// `quick` trims the sweeps (smaller sizes, fewer points) so the whole
/// suite finishes in seconds; the full mode is what `EXPERIMENTS.md`
/// records.
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        e1_headline::run(quick),
        e2_scaling::run(quick),
        e3_vs_baseline::run(quick),
        e4_comm_volume::run(quick),
        e5_breakdown::run(quick),
        e6_ablation::run(quick),
        e7_topology::run(quick),
        e8_end_to_end::run(quick),
        e9_batching::run(quick),
        e11_stark_commit::run(quick),
        e12_multi_node::run(quick),
        e13_fault_tolerance::run(quick),
        e14_serving::run(quick),
        e15_comm_overlap::run(quick),
        e16_observability::run(quick),
        e17_resilience::run(quick),
        e19_pipeline::run(quick),
        e21_slo::run(quick),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_runs_and_produces_rows() {
        for table in run_all(true) {
            assert!(!table.is_empty(), "{}", table.render());
        }
    }
}
