//! **E11 — STARK trace commitment (Goldilocks)**: the hash-based pipeline
//! (LDE → Merkle → FRI) on one simulated GPU vs eight. This is the
//! transparent-setup counterpart of E8: the workload whose NTT phase is
//! over the 64-bit field, where the interconnect matters most.

use rand::{rngs::StdRng, SeedableRng};
use unintt_core::{UniNttEngine, UniNttOptions};
use unintt_ff::{Field, Goldilocks};
use unintt_fri::{commit_trace, fri, permutations_for, verify_trace, FriConfig, LdeBackend};
use unintt_gpu_sim::{presets, FieldSpec, KernelProfile, Machine, MachineConfig};

use crate::report::{fmt_ns, Table};

/// Projected commitment time for a `2^log_rows × width` trace: the same
/// charge sequence `commit_trace` performs, through the cost-only paths.
fn projected(log_rows: u32, width: usize, cfg: &MachineConfig, config: &FriConfig) -> f64 {
    let fs = FieldSpec::goldilocks();
    let opts = {
        let mut o = UniNttOptions::tuned_for(&fs);
        o.natural_output = true;
        o
    };
    let mut machine = Machine::new(cfg.clone(), fs);
    let big_log = log_rows + config.log_blowup;
    let big_n = 1u64 << big_log;

    // LDE per column: iNTT(n) + coset NTT(n·blowup).
    let small = UniNttEngine::<Goldilocks>::new(log_rows, cfg, opts, fs);
    let big = UniNttEngine::<Goldilocks>::new(big_log, cfg, opts, fs);
    small.simulate_inverse(&mut machine, width as u64);
    big.simulate_coset_forward(&mut machine, width as u64);

    // Hashing + combination + FRI folds, as sharded kernels.
    let devices = machine.num_devices() as u64;
    let charge = |machine: &mut Machine, perms: u64| {
        let mut p = KernelProfile::named("sponge-hash");
        p.blocks = (perms / 32).max(1);
        p.field_muls = perms * 616 / devices;
        p.global_bytes_read = perms * 64 / devices;
        p.global_bytes_written = perms * 32 / devices;
        let mut dummy: Vec<()> = vec![(); devices as usize];
        machine.parallel_phase(&mut dummy, |ctx, _, _| {
            ctx.launch(&p);
        });
    };
    charge(&mut machine, big_n * permutations_for(width) + big_n - 1);
    charge(
        &mut machine,
        fri::prove_hash_permutations(config, big_n as usize),
    );
    machine.max_clock_ns()
}

/// Runs E11 and renders the table.
pub fn run(quick: bool) -> Table {
    let gpus = 8;
    let config = FriConfig::standard();
    let sizes: &[usize] = if quick {
        &[1 << 10]
    } else {
        &[1 << 10, 1 << 12, 1 << 14]
    };
    let width = 8; // trace columns

    let mut table = Table::new(
        format!("E11: STARK trace commitment, {width} columns (Goldilocks, blowup 4)"),
        &["rows", "mode", "1-GPU", "UniNTT-8", "speedup", "verified"],
    );

    let mut rng = StdRng::seed_from_u64(11);
    for &n in sizes {
        let trace: Vec<Vec<Goldilocks>> = (0..width)
            .map(|_| (0..n).map(|_| Goldilocks::random(&mut rng)).collect())
            .collect();

        let mut one = LdeBackend::simulated(presets::a100_nvlink(1));
        let c1 = commit_trace(&trace, &config, &mut one);
        let t1 = one.sim_time_ns();

        let mut eight = LdeBackend::simulated(presets::a100_nvlink(gpus));
        let c8 = commit_trace(&trace, &config, &mut eight);
        let t8 = eight.sim_time_ns();

        assert_eq!(c1.trace_root, c8.trace_root, "backends must agree");
        let ok = verify_trace(&c8, &config);

        table.row(vec![
            format!("2^{}", n.trailing_zeros()),
            "functional".into(),
            fmt_ns(t1),
            fmt_ns(t8),
            format!("{:.2}x", t1 / t8),
            if ok { "yes".into() } else { "NO".into() },
        ]);
    }

    // Production-scale traces, cost-only.
    let projected_sizes: &[u32] = if quick { &[20] } else { &[18, 20, 22, 24] };
    let one_cfg = presets::a100_nvlink(1);
    let eight_cfg = presets::a100_nvlink(gpus);
    for &log_rows in projected_sizes {
        let t1 = projected(log_rows, width, &one_cfg, &config);
        let t8 = projected(log_rows, width, &eight_cfg, &config);
        table.row(vec![
            format!("2^{log_rows}"),
            "projected".into(),
            fmt_ns(t1),
            fmt_ns(t8),
            format!("{:.2}x", t1 / t8),
            "-".into(),
        ]);
    }
    table.note("functional rows: identical commitments on both machine shapes, all verified");
    table.note("projected rows: same charge sequence through the cost-only paths");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_verify() {
        let rendered = run(true).render();
        assert!(rendered.contains("yes"));
        assert!(!rendered.contains("NO"));
    }
}
