//! **E2 — strong scaling**: speedup and parallel efficiency of UniNTT as
//! the GPU count grows from 1 to 8 at fixed transform sizes.

use unintt_core::UniNttOptions;
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec};

use crate::experiments::{single_gpu_run, unintt_run};
use crate::report::{fmt_ns, Table};

/// Runs E2 and renders the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[u32] = if quick { &[24] } else { &[22, 24, 26] };
    let fs = FieldSpec::bn254_fr();

    let mut table = Table::new(
        "E2: strong scaling of UniNTT (BN254-Fr, A100 NVSwitch)",
        &["log2(N)", "GPUs", "time", "speedup", "efficiency"],
    );

    for &log_n in sizes {
        let base_cfg = presets::a100_nvlink(8);
        let (t1, _) = single_gpu_run::<Bn254Fr>(log_n, &base_cfg, fs);
        for gpus in [1usize, 2, 4, 8] {
            let cfg = presets::a100_nvlink(gpus);
            let (t, _) = unintt_run::<Bn254Fr>(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs, 1);
            let speedup = t1 / t;
            table.row(vec![
                format!("2^{log_n}"),
                gpus.to_string(),
                fmt_ns(t),
                format!("{speedup:.2}x"),
                format!("{:.0}%", 100.0 * speedup / gpus as f64),
            ]);
        }
    }
    table.note("speedup relative to the 1-GPU configuration of the same size");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_monotone_in_gpu_count_at_large_n() {
        // Parse the 2^24 block and check monotone speedups.
        let rendered = run(true).render();
        let times: Vec<f64> = rendered
            .lines()
            .filter(|l| l.contains("2^24"))
            .map(|l| {
                let cells: Vec<&str> = l.split_whitespace().collect();
                // speedup column like "3.10x"
                cells[cells.len() - 2]
                    .trim_end_matches('x')
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(times.len(), 4);
        for w in times.windows(2) {
            assert!(w[1] >= w[0] * 0.95, "scaling should not regress: {times:?}");
        }
    }
}
