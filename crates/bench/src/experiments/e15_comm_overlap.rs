//! **E15 — communication–compute overlap**: the chunked, software-
//! pipelined multi-GPU exchange against the legacy blocking schedule,
//! swept over fabric topology and pipeline depth.
//!
//! The exchange-adjacent kernels (the final fused local pass on the
//! producing side, the outer stage on the consuming side) are sliced per
//! chunk and interleaved with the chunk transfers, so wire time hides
//! behind compute. Outputs are bit-identical in both modes — only the
//! simulated clock moves. Three numbers tell the story per row:
//!
//! * **raw comm** — the overlap-blind interconnect charge (identical
//!   across modes: same bytes, same fabric);
//! * **hidden** — how much of it the pipeline buried under compute;
//! * **Δ vs blocking** — the end-to-end simulated-time reduction.
//!
//! Everything is charged to the simulated clock, so two runs produce
//! byte-identical output — including the machine-readable
//! `BENCH_comm.json` written next to the process.

use std::fmt::Write as _;

use unintt_core::{CommMode, UniNttOptions};
use unintt_ff::Goldilocks;
use unintt_gpu_sim::{presets, FieldSpec, MachineConfig};

use crate::experiments::unintt_run;
use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_comm.json";

/// One measured configuration.
struct Cell {
    topology: &'static str,
    mode: &'static str,
    /// Pipeline depth; `0` means the planner's automatic pick.
    chunks: u32,
    time_ns: f64,
    raw_comm_ns: f64,
    exposed_comm_ns: f64,
    hidden_comm_ns: f64,
    /// `1 - time/time_blocking` against the same-topology blocking row.
    reduction_vs_blocking: f64,
}

impl Cell {
    /// Fraction of the raw interconnect charge hidden behind compute.
    fn overlap_efficiency(&self) -> f64 {
        if self.raw_comm_ns <= 0.0 {
            0.0
        } else {
            self.hidden_comm_ns / self.raw_comm_ns
        }
    }
}

/// The swept fabrics: one per `Topology` arm the paper's table covers.
fn topologies() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("NVSwitch crossbar (8x A100)", presets::a100_nvlink(8)),
        ("NVLink ring (8x V100)", presets::v100_nvlink_ring(8)),
        ("SuperPOD 2x4 (hierarchical)", presets::a100_superpod(2, 4)),
    ]
}

fn measure(
    topology: &'static str,
    cfg: &MachineConfig,
    log_n: u32,
    mode: CommMode,
    chunks: u32,
    blocking_ns: f64,
) -> Cell {
    let fs = FieldSpec::goldilocks();
    let mut opts = UniNttOptions::tuned_for(&fs);
    opts.comm_mode = mode;
    opts.comm_chunks = chunks;
    let (time_ns, stats) = unintt_run::<Goldilocks>(log_n, cfg, opts, fs, 1);
    Cell {
        topology,
        mode: match mode {
            CommMode::Blocking => "blocking",
            CommMode::Overlapped => "overlapped",
        },
        chunks,
        time_ns,
        raw_comm_ns: stats.raw_time_ns.interconnect,
        exposed_comm_ns: stats.time_ns.interconnect,
        hidden_comm_ns: stats.comm_hidden_ns,
        reduction_vs_blocking: if blocking_ns > 0.0 {
            1.0 - time_ns / blocking_ns
        } else {
            0.0
        },
    }
}

fn chunk_sweep(quick: bool) -> Vec<u32> {
    if quick {
        vec![1, 0]
    } else {
        vec![1, 2, 4, 8, 0]
    }
}

fn render_json(cells: &[Cell], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"comm-overlap\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"topology\": \"{}\", \"mode\": \"{}\", \"chunks\": {}, \
             \"time_ns\": {:.0}, \"raw_comm_ns\": {:.0}, \"exposed_comm_ns\": {:.0}, \
             \"hidden_comm_ns\": {:.0}, \"overlap_efficiency\": {:.4}, \
             \"reduction_vs_blocking\": {:.4}}}",
            c.topology,
            c.mode,
            c.chunks,
            c.time_ns,
            c.raw_comm_ns,
            c.exposed_comm_ns,
            c.hidden_comm_ns,
            c.overlap_efficiency(),
            // Zero out sub-display-precision deltas (a C=1 pipeline can
            // land a float ulp off the blocking clock) so the JSON never
            // renders a negative zero.
            if c.reduction_vs_blocking.abs() < 0.00005 {
                0.0
            } else {
                c.reduction_vs_blocking
            },
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs E15 and renders the table (also writes [`JSON_PATH`]).
pub fn run(quick: bool) -> Table {
    let log_n = if quick { 22 } else { 24 };
    let mut table = Table::new(
        format!("E15: communication-compute overlap (UniNTT, 2^{log_n} Goldilocks, 8 GPUs)"),
        &[
            "topology",
            "mode",
            "chunks",
            "time",
            "comm(raw)",
            "exposed",
            "hidden",
            "hid%",
            "dT vs blk",
        ],
    );

    let mut cells = Vec::new();
    for (name, cfg) in topologies() {
        let blocking = measure(name, &cfg, log_n, CommMode::Blocking, 0, 0.0);
        let blocking_ns = blocking.time_ns;
        cells.push(blocking);
        for chunks in chunk_sweep(quick) {
            cells.push(measure(
                name,
                &cfg,
                log_n,
                CommMode::Overlapped,
                chunks,
                blocking_ns,
            ));
        }
    }

    for c in &cells {
        table.row(vec![
            c.topology.into(),
            c.mode.into(),
            if c.mode == "blocking" {
                "-".into()
            } else if c.chunks == 0 {
                "auto".into()
            } else {
                c.chunks.to_string()
            },
            fmt_ns(c.time_ns),
            fmt_ns(c.raw_comm_ns),
            fmt_ns(c.exposed_comm_ns),
            fmt_ns(c.hidden_comm_ns),
            format!("{:.0}%", 100.0 * c.overlap_efficiency()),
            if c.mode == "blocking" {
                "-".into()
            } else {
                let delta = -100.0 * c.reduction_vs_blocking;
                format!("{:+.1}%", if delta.abs() < 0.05 { 0.0 } else { delta })
            },
        ]);
    }

    table.note("same bytes cross the fabric in every row; only the schedule changes");
    table.note("chunks=auto lets the planner size the pipeline from the exchange volume");
    let json = render_json(&cells, quick);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_hits_the_target_reduction_at_headline_scale() {
        // The issue's acceptance gate: >= 25% simulated-time reduction at
        // 2^24 / 8 GPUs with the planner-picked pipeline depth.
        let cfg = presets::a100_nvlink(8);
        let blocking = measure("t", &cfg, 24, CommMode::Blocking, 0, 0.0);
        let overlapped = measure("t", &cfg, 24, CommMode::Overlapped, 0, blocking.time_ns);
        assert!(
            overlapped.reduction_vs_blocking >= 0.25,
            "overlap must cut >=25% of simulated time: got {:.1}% (blk {} ovl {})",
            100.0 * overlapped.reduction_vs_blocking,
            blocking.time_ns,
            overlapped.time_ns
        );
        assert!(overlapped.hidden_comm_ns > 0.0);
        assert_eq!(
            overlapped.raw_comm_ns, blocking.raw_comm_ns,
            "same fabric charge in both modes"
        );
    }

    #[test]
    fn every_topology_benefits_from_overlap() {
        for (name, cfg) in topologies() {
            let blocking = measure(name, &cfg, 22, CommMode::Blocking, 0, 0.0);
            let overlapped = measure(name, &cfg, 22, CommMode::Overlapped, 0, blocking.time_ns);
            assert!(
                overlapped.time_ns < blocking.time_ns,
                "{name}: overlap must not be slower"
            );
        }
    }

    #[test]
    fn outputs_bit_identical_across_modes() {
        use rand::{rngs::StdRng, SeedableRng};
        use unintt_core::{ShardLayout, Sharded, UniNttEngine};
        use unintt_ff::Field;
        use unintt_gpu_sim::Machine;

        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(8);
        let mut rng = StdRng::seed_from_u64(0xe15);
        let input: Vec<Goldilocks> = (0..1 << 12).map(|_| Goldilocks::random(&mut rng)).collect();
        let mut outputs = Vec::new();
        for mode in [CommMode::Blocking, CommMode::Overlapped] {
            let mut opts = UniNttOptions::tuned_for(&fs);
            opts.comm_mode = mode;
            let engine = UniNttEngine::<Goldilocks>::new(12, &cfg, opts, fs);
            let mut machine = Machine::new(cfg.clone(), fs);
            let mut data = Sharded::distribute(&input, 8, ShardLayout::Cyclic);
            engine.forward(&mut machine, &mut data);
            outputs.push(data.collect());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "schedule must not change the result"
        );
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let run_once = || {
            let cfg = presets::a100_nvlink(8);
            let b = measure("t", &cfg, 20, CommMode::Blocking, 0, 0.0);
            let bns = b.time_ns;
            let o = measure("t", &cfg, 20, CommMode::Overlapped, 0, bns);
            render_json(&[b, o], true)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "identical runs must render byte-identical JSON");
        assert!(a.starts_with("{\n") && a.ends_with("}\n"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
