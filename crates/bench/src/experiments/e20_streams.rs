//! **E20 — intra-lease stream overlap**: the E19 workload served a
//! third way. E19 established that dispatching proofs as stage DAGs
//! beats monolithic leasing; this experiment adds per-lease compute
//! queues ([`ServiceConfig::streams_per_lease`]) so a compute-bound MSM
//! stage and a memory-bound NTT stage co-reside on one lease, both
//! advancing under the interference-model slowdown instead of
//! serializing.
//!
//! Every load level runs the *identical* seeded stream (shared with E19
//! via [`super::e19_pipeline::stream`]) three ways — monolithic, DAG
//! with one queue (the literal E19 path), and DAG with two queues — and
//! asserts every job's output digest matches across all three. The
//! highest load additionally sweeps queue count 1–4 under both bundled
//! interference models ([`InterferenceModel::default_model`] and the
//! deliberately pessimistic [`InterferenceModel::conservative`]),
//! digest-checked cell by cell: co-scheduling moves simulated clocks
//! only, never data.
//!
//! The headline claim, asserted on every full (non-`--quick`) run
//! unless `--serial-streams` pins the service back to one queue: at the
//! highest offered load, two queues per lease finish the same work in a
//! horizon at least 15% shorter than the one-queue DAG baseline.
//!
//! Everything is seeded and charged to the simulated clock, so two runs
//! produce byte-identical output — including the machine-readable
//! `BENCH_streams.json` written next to the process.

use std::fmt::Write as _;

use unintt_serve::{InterferenceModel, ProofService, ServiceConfig, ServiceReport};

use super::e19_pipeline::stream;
use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_streams.json";

/// The horizon-reduction floor the full-mode run asserts at the highest
/// load: two queues must shave at least this fraction off the one-queue
/// DAG horizon.
const HEADLINE_MIN_REDUCTION: f64 = 0.15;

/// One measured service run (one load level, one scheduling mode).
struct Cell {
    load_jobs_per_s: f64,
    mode: Mode,
    report: ServiceReport,
}

/// How one cell schedules the stream.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Whole proofs hold one lease each (the E19 baseline's baseline).
    Monolithic,
    /// Stage DAGs, one queue per lease — exactly E19's DAG cells.
    Dag,
    /// Stage DAGs over `k` queues per lease under `model`.
    Streams { k: usize, model: ModelChoice },
}

/// Which bundled interference model a streamed cell runs under.
#[derive(Clone, Copy, PartialEq)]
enum ModelChoice {
    Default,
    Conservative,
}

impl ModelChoice {
    fn model(self) -> InterferenceModel {
        match self {
            ModelChoice::Default => InterferenceModel::default_model(),
            ModelChoice::Conservative => InterferenceModel::conservative(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ModelChoice::Default => "default",
            ModelChoice::Conservative => "conservative",
        }
    }
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::Monolithic => "monolithic".into(),
            Mode::Dag => "dag".into(),
            Mode::Streams { k, model } => format!("dag+streams k={k} {}", model.name()),
        }
    }

    fn json_mode(self) -> &'static str {
        match self {
            Mode::Monolithic => "monolithic",
            Mode::Dag => "dag",
            Mode::Streams { .. } => "dag+streams",
        }
    }

    fn streams(self) -> usize {
        match self {
            Mode::Monolithic | Mode::Dag => 1,
            Mode::Streams { k, .. } => k,
        }
    }
}

impl Cell {
    /// Completed proof jobs (PLONK + STARK, either submission form).
    fn proofs(&self) -> usize {
        self.report
            .outcomes
            .iter()
            .filter(|o| o.completed() && o.class_name != "raw-ntt")
            .count()
    }

    /// Completed proofs per simulated second.
    fn proofs_per_s(&self) -> f64 {
        if self.report.metrics.horizon_ns <= 0.0 {
            return 0.0;
        }
        self.proofs() as f64 / (self.report.metrics.horizon_ns * 1e-9)
    }
}

/// The swept grid: offered loads and jobs per cell (E19's grid, so the
/// dag rows here replicate that experiment's cells).
fn grid(quick: bool) -> (Vec<f64>, usize) {
    let loads = vec![5_000.0, 20_000.0, 80_000.0];
    let jobs = if quick { 24 } else { 64 };
    (loads, jobs)
}

/// Runs one scheduling mode over the seeded stream for `load`.
fn run_cell(load: f64, jobs: usize, mode: Mode) -> Cell {
    let mut stream = stream(load, jobs);
    if mode != Mode::Monolithic {
        for spec in &mut stream {
            spec.class = spec.class.pipelined();
        }
    }
    let cfg = match mode {
        Mode::Monolithic | Mode::Dag => ServiceConfig::default(),
        Mode::Streams { k, model } => ServiceConfig {
            streams_per_lease: k,
            interference: model.model(),
            ..ServiceConfig::default()
        },
    };
    let mut service = ProofService::new(cfg);
    service.submit_all(stream);
    let report = service.run();
    assert!(
        report.all_completed(),
        "E20 runs under capacity-512 admission: nothing should be shed or failed"
    );
    Cell {
        load_jobs_per_s: load,
        mode,
        report,
    }
}

/// Asserts two cells over the same stream produced bit-identical
/// outputs job for job.
fn assert_bit_identical(reference: &Cell, other: &Cell) {
    assert_eq!(reference.report.outcomes.len(), other.report.outcomes.len());
    for (r, o) in reference.report.outcomes.iter().zip(&other.report.outcomes) {
        assert_eq!(r.id, o.id);
        assert!(r.output_digest != 0, "{} must digest its output", r.id);
        assert_eq!(
            r.output_digest,
            o.output_digest,
            "{} ({} vs {}): stream overlap must not change a single output bit",
            r.id,
            reference.mode.label(),
            other.mode.label(),
        );
    }
}

fn render_json(cells: &[Cell], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"intra-lease-stream-overlap\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let m = &c.report.metrics;
        let model = match c.mode {
            Mode::Streams { model, .. } => model.name(),
            _ => "-",
        };
        let _ = write!(
            out,
            "    {{\"load_jobs_per_s\": {:.0}, \"mode\": \"{}\", \"streams\": {}, \
             \"interference\": \"{}\", \"completed\": {}, \"proofs\": {}, \
             \"horizon_ns\": {:.0}, \"throughput_jobs_per_s\": {:.1}, \
             \"proofs_per_s\": {:.2}, \"occupancy\": {:.4}, \"raw_p95_ns\": {:.0}}}",
            c.load_jobs_per_s,
            c.mode.json_mode(),
            c.mode.streams(),
            model,
            m.completed(),
            c.proofs(),
            m.horizon_ns,
            m.throughput_jobs_per_s(),
            c.proofs_per_s(),
            m.mean_occupancy(),
            m.classes["raw-ntt"].latency.p95_ns,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_row(table: &mut Table, c: &Cell, dag_horizon: Option<f64>) {
    let m = &c.report.metrics;
    let delta = match dag_horizon {
        Some(base) if base > 0.0 => {
            format!("{:+.1}%", 100.0 * (m.horizon_ns - base) / base)
        }
        _ => "-".into(),
    };
    table.row(vec![
        format!("{:.0}k/s", c.load_jobs_per_s / 1_000.0),
        c.mode.label(),
        fmt_ns(m.horizon_ns),
        delta,
        format!("{:.0}", m.throughput_jobs_per_s()),
        format!("{:.1}", c.proofs_per_s()),
        format!("{:.0}%", 100.0 * m.mean_occupancy()),
        fmt_ns(m.classes["raw-ntt"].latency.p95_ns),
    ]);
}

/// Runs E20 and renders the table (also writes [`JSON_PATH`]).
pub fn run(quick: bool) -> Table {
    let (loads, jobs) = grid(quick);
    let mut table = Table::new(
        "E20: intra-lease stream overlap under mixed load (2 leases of 2 nodes x 2 A100)",
        &[
            "load", "mode", "horizon", "vs dag", "jobs/s", "proofs/s", "occ", "raw p95",
        ],
    );

    // Three-way per load: monolithic / DAG (one queue) / DAG + two
    // queues, digest-checked against each other.
    let mut cells: Vec<(Cell, Option<f64>)> = Vec::new();
    let mut headline: Option<(f64, f64)> = None;
    for &load in &loads {
        let mono = run_cell(load, jobs, Mode::Monolithic);
        let dag = run_cell(load, jobs, Mode::Dag);
        let streamed = run_cell(
            load,
            jobs,
            Mode::Streams {
                k: 2,
                model: ModelChoice::Default,
            },
        );
        assert_bit_identical(&mono, &dag);
        assert_bit_identical(&mono, &streamed);
        let dag_horizon = dag.report.metrics.horizon_ns;
        headline = Some((dag_horizon, streamed.report.metrics.horizon_ns));
        cells.push((mono, None));
        cells.push((dag, None));
        cells.push((streamed, Some(dag_horizon)));
    }

    // Queue-count x interference-model sweep at the highest load; every
    // cell digest-checked against the monolithic reference.
    let high = *loads.last().expect("grid has loads");
    let reference = run_cell(high, jobs, Mode::Monolithic);
    let dag_horizon = cells
        .iter()
        .find(|(c, _)| c.load_jobs_per_s == high && c.mode == Mode::Dag)
        .map(|(c, _)| c.report.metrics.horizon_ns);
    for model in [ModelChoice::Default, ModelChoice::Conservative] {
        for k in 1..=4 {
            if k == 2 && model == ModelChoice::Default {
                continue; // already measured in the three-way pass
            }
            let cell = run_cell(high, jobs, Mode::Streams { k, model });
            assert_bit_identical(&reference, &cell);
            cells.push((cell, dag_horizon));
        }
    }

    // The headline claim: at the highest load, two queues per lease cut
    // the end-to-end horizon by >= 15% versus the one-queue DAG
    // baseline. Quick mode's trimmed stream is too short to saturate
    // the queues, and --serial-streams deliberately collapses every
    // cell to one queue, so the gate applies to full unforced runs.
    if let Some((dag_ns, streamed_ns)) = headline {
        let reduction = 1.0 - streamed_ns / dag_ns;
        if !quick && unintt_core::streams_override().is_none() {
            assert!(
                reduction >= HEADLINE_MIN_REDUCTION,
                "two queues must cut the high-load horizon by >= {:.0}%: \
                 dag {:.0} ns vs streamed {:.0} ns ({:.1}%)",
                100.0 * HEADLINE_MIN_REDUCTION,
                dag_ns,
                streamed_ns,
                100.0 * reduction,
            );
        }
        table.note(format!(
            "high-load horizon reduction with k=2 (default model): {:.1}%",
            100.0 * reduction
        ));
    }

    for (c, base) in &cells {
        push_row(&mut table, c, *base);
    }

    table.note("same seeded stream per load as E19; dag rows replicate that experiment");
    table.note("every cell's output digests match the monolithic reference (asserted)");
    let json_cells: Vec<Cell> = cells.into_iter().map(|(c, _)| c).collect();
    let json = render_json(&json_cells, quick);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_cells_match_monolithic_digests() {
        let mono = run_cell(20_000.0, 12, Mode::Monolithic);
        for k in [2, 3] {
            let streamed = run_cell(
                20_000.0,
                12,
                Mode::Streams {
                    k,
                    model: ModelChoice::Conservative,
                },
            );
            assert_bit_identical(&mono, &streamed);
        }
    }

    #[test]
    fn one_queue_streams_cell_replicates_the_dag_cell() {
        let dag = run_cell(20_000.0, 12, Mode::Dag);
        let one = run_cell(
            20_000.0,
            12,
            Mode::Streams {
                k: 1,
                model: ModelChoice::Default,
            },
        );
        // k == 1 routes through the identical serial code path, so the
        // clocks — not just the digests — must match exactly.
        assert_eq!(dag.report.outcomes, one.report.outcomes);
        assert_eq!(dag.report.stage_ns, one.report.stage_ns);
    }

    #[test]
    fn overlap_shortens_the_high_load_horizon() {
        let dag = run_cell(80_000.0, 24, Mode::Dag);
        let streamed = run_cell(
            80_000.0,
            24,
            Mode::Streams {
                k: 2,
                model: ModelChoice::Default,
            },
        );
        assert_bit_identical(&dag, &streamed);
        assert!(
            streamed.report.metrics.horizon_ns < dag.report.metrics.horizon_ns,
            "co-scheduling must shorten the horizon: {} vs {}",
            streamed.report.metrics.horizon_ns,
            dag.report.metrics.horizon_ns
        );
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let run_once = || {
            let mono = run_cell(5_000.0, 12, Mode::Monolithic);
            let streamed = run_cell(
                5_000.0,
                12,
                Mode::Streams {
                    k: 2,
                    model: ModelChoice::Default,
                },
            );
            render_json(&[mono, streamed], true)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "identical runs must render byte-identical JSON");
        assert!(a.starts_with("{\n") && a.ends_with("}\n"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
