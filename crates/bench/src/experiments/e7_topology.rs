//! **E7 — interconnect sensitivity**: the same UniNTT transform on an
//! NVSwitch all-to-all fabric, an NVLink ring, a two-level hierarchical
//! fabric (NVSwitch islands joined by InfiniBand), and PCIe host-bounce.
//! Multi-GPU NTT is communication-bound, so topology decides whether
//! multi-GPU pays off at all. All rows run the default overlapped
//! exchange schedule — E15 isolates how much each fabric's wire time the
//! pipeline can hide.

use unintt_core::UniNttOptions;
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec, MachineConfig, Topology};

use crate::experiments::{single_gpu_run, unintt_run};
use crate::report::{fmt_ns, Table};

fn with_topology(mut cfg: MachineConfig, topology: Topology) -> MachineConfig {
    cfg.interconnect.topology = topology;
    if topology == Topology::HostBounce {
        // PCIe numbers replace NVLink numbers.
        cfg.interconnect.per_gpu_bandwidth_gbps = 32.0;
        cfg.interconnect.host_aggregate_bandwidth_gbps = 64.0;
        cfg.interconnect.latency_ns = 15_000.0;
    }
    cfg
}

/// Runs E7 and renders the table.
pub fn run(quick: bool) -> Table {
    let fs = FieldSpec::bn254_fr();
    let log_n = if quick { 22 } else { 24 };
    let gpu_counts: &[usize] = if quick { &[8] } else { &[4, 8] };

    let mut table = Table::new(
        format!("E7: interconnect sensitivity (UniNTT, 2^{log_n} BN254-Fr, A100-class GPUs)"),
        &["GPUs", "topology", "time", "vs 1 GPU"],
    );

    for &gpus in gpu_counts {
        let base = presets::a100_nvlink(gpus);
        let (t1, _) = single_gpu_run::<Bn254Fr>(log_n, &base, fs);
        for (topology, name) in [
            (Topology::AllToAll, "NVSwitch all-to-all"),
            (Topology::Ring, "NVLink ring"),
            (Topology::HostBounce, "PCIe host-bounce"),
        ] {
            let cfg = with_topology(base.clone(), topology);
            let (t, _) = unintt_run::<Bn254Fr>(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs, 1);
            table.row(vec![
                gpus.to_string(),
                name.to_string(),
                fmt_ns(t),
                format!("{:.2}x", t1 / t),
            ]);
        }
        // Two-level hierarchy: NVSwitch islands of gpus/2 joined by IB.
        let pod = presets::a100_superpod(2, gpus / 2);
        let (t, _) = unintt_run::<Bn254Fr>(log_n, &pod, UniNttOptions::tuned_for(&fs), fs, 1);
        table.row(vec![
            gpus.to_string(),
            "2-node hierarchical (IB)".to_string(),
            fmt_ns(t),
            format!("{:.2}x", t1 / t),
        ]);
    }
    table.note(">1x means the multi-GPU configuration beats one GPU of the same model");
    table.note("all rows use the overlapped exchange; E15 breaks out hidden vs exposed wire time");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_beats_ring_beats_pcie() {
        let fs = FieldSpec::bn254_fr();
        let base = presets::a100_nvlink(8);
        let mut times = Vec::new();
        for topology in [Topology::AllToAll, Topology::Ring, Topology::HostBounce] {
            let cfg = with_topology(base.clone(), topology);
            times.push(unintt_run::<Bn254Fr>(24, &cfg, UniNttOptions::tuned_for(&fs), fs, 1).0);
        }
        assert!(times[0] < times[1], "switch should beat ring: {times:?}");
        assert!(times[1] < times[2], "ring should beat PCIe: {times:?}");
    }

    #[test]
    fn pcie_makes_multi_gpu_unattractive() {
        let fs = FieldSpec::bn254_fr();
        let base = presets::a100_nvlink(8);
        let (t1, _) = single_gpu_run::<Bn254Fr>(24, &base, fs);
        let pcie = with_topology(base, Topology::HostBounce);
        let (tp, _) = unintt_run::<Bn254Fr>(24, &pcie, UniNttOptions::tuned_for(&fs), fs, 1);
        assert!(
            tp > t1,
            "host-bounced 8-GPU NTT should lose to one GPU: 1gpu={t1} pcie8={tp}"
        );
    }
}
