//! **E14 — proving-service offered load**: the `unintt-serve`
//! multi-tenant service under a swept offered load, coalescing window
//! and scheduling policy.
//!
//! Three sections:
//! * **coalescing** — offered load × batch window under FIFO: at high
//!   load a window lets compatible raw NTTs share one dispatch (and its
//!   fixed overhead), raising throughput and dropping tail latency;
//! * **policy** — FIFO vs priority vs shortest-job-first at the highest
//!   load with the default window;
//! * **faulted** — the same service under seeded device-loss fault
//!   injection: leases degrade, re-plan and get repaired, but every job
//!   completes.
//!
//! Everything is charged to the simulated clock and every workload is
//! seeded, so two runs produce byte-identical output — including the
//! machine-readable `BENCH_serve.json` written next to the process.

use std::fmt::Write as _;

use unintt_gpu_sim::FaultRates;
use unintt_serve::{ProofService, SchedulerPolicy, ServiceConfig, ServiceMetrics, WorkloadSpec};

use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_serve.json";

/// One measured service run.
struct Cell {
    section: &'static str,
    load_jobs_per_s: f64,
    window_ns: f64,
    policy: SchedulerPolicy,
    faulted: bool,
    metrics: ServiceMetrics,
}

/// The swept grid.
fn grid(quick: bool) -> (Vec<f64>, Vec<f64>, usize) {
    let loads = vec![5_000.0, 20_000.0, 80_000.0];
    let windows = if quick {
        vec![0.0, 50_000.0]
    } else {
        vec![0.0, 25_000.0, 100_000.0]
    };
    let jobs = if quick { 32 } else { 96 };
    (loads, windows, jobs)
}

/// Runs one service configuration over the seeded workload for `load`.
/// The stream depends only on `(load, jobs)` so every window/policy cell
/// at one load serves identical submissions.
fn run_cell(
    section: &'static str,
    load: f64,
    jobs: usize,
    window_ns: f64,
    policy: SchedulerPolicy,
    fault_rates: Option<FaultRates>,
) -> Cell {
    let stream = WorkloadSpec::raw_only(0xe14 ^ load.to_bits(), jobs, load).generate();
    let mut service = ProofService::new(ServiceConfig {
        batch_window_ns: window_ns,
        policy,
        fault_rates,
        ..ServiceConfig::default()
    });
    service.submit_all(stream);
    let report = service.run();
    assert!(
        report.all_completed(),
        "E14 runs under capacity-512 admission: nothing should be shed or failed"
    );
    Cell {
        section,
        load_jobs_per_s: load,
        window_ns,
        policy,
        faulted: fault_rates.is_some(),
        metrics: report.metrics,
    }
}

/// Device-loss-heavy rates for the faulted section.
fn e14_fault_rates() -> FaultRates {
    FaultRates {
        drop_p: 0.01,
        device_loss_p: 0.004,
        ..FaultRates::default()
    }
}

fn render_json(cells: &[Cell], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve-offered-load\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let m = &c.metrics;
        let raw = &m.classes["raw-ntt"];
        let _ = write!(
            out,
            "    {{\"section\": \"{}\", \"load_jobs_per_s\": {:.0}, \"window_ns\": {:.0}, \
             \"policy\": \"{}\", \"faulted\": {}, \"completed\": {}, \"rejected\": {}, \
             \"horizon_ns\": {:.0}, \"throughput_jobs_per_s\": {:.1}, \
             \"mean_batch_size\": {:.3}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \
             \"p99_ns\": {:.0}, \"peak_queue\": {}, \"occupancy\": {:.4}, \
             \"retries\": {}, \"replans\": {}}}",
            c.section,
            c.load_jobs_per_s,
            c.window_ns,
            c.policy.name(),
            c.faulted,
            m.completed(),
            m.rejected(),
            m.horizon_ns,
            m.throughput_jobs_per_s(),
            m.mean_batch_size(),
            raw.latency.p50_ns,
            raw.latency.p95_ns,
            raw.latency.p99_ns,
            m.peak_queue_depth,
            m.mean_occupancy(),
            raw.retries,
            raw.replans,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_row(table: &mut Table, c: &Cell) {
    let m = &c.metrics;
    let raw = &m.classes["raw-ntt"];
    table.row(vec![
        c.section.into(),
        format!("{:.0}k/s", c.load_jobs_per_s / 1_000.0),
        if c.window_ns == 0.0 {
            "off".into()
        } else {
            fmt_ns(c.window_ns)
        },
        c.policy.name().into(),
        format!("{:.0}", m.throughput_jobs_per_s()),
        format!("{:.2}", m.mean_batch_size()),
        fmt_ns(raw.latency.p50_ns),
        fmt_ns(raw.latency.p95_ns),
        format!("{:.0}%", 100.0 * m.mean_occupancy()),
        format!("{}+{}", raw.retries, raw.replans),
    ]);
}

/// Runs E14 and renders the table (also writes [`JSON_PATH`]).
pub fn run(quick: bool) -> Table {
    let (loads, windows, jobs) = grid(quick);
    let mut table = Table::new(
        "E14: proving service under offered load (2 leases of 2 nodes x 2 A100)",
        &[
            "section", "load", "window", "policy", "jobs/s", "batch", "p50", "p95", "occ",
            "flt(r+p)",
        ],
    );
    let mut cells = Vec::new();

    // Section 1: coalescing — load × window sweep under FIFO.
    for &load in &loads {
        for &window in &windows {
            cells.push(run_cell(
                "coalescing",
                load,
                jobs,
                window,
                SchedulerPolicy::Fifo,
                None,
            ));
        }
    }

    // Section 2: policy comparison at the highest load, default window.
    let high = *loads.last().expect("non-empty load sweep");
    let default_window = ServiceConfig::default().batch_window_ns;
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::Priority,
        SchedulerPolicy::ShortestJobFirst,
    ] {
        cells.push(run_cell("policy", high, jobs, default_window, policy, None));
    }

    // Section 3: seeded device-loss faults; leases degrade and get
    // repaired but no job fails (run_cell asserts all_completed).
    cells.push(run_cell(
        "faulted",
        loads[1],
        jobs,
        default_window,
        SchedulerPolicy::Fifo,
        Some(e14_fault_rates()),
    ));

    for c in &cells {
        push_row(&mut table, c);
    }

    table.note("same seeded stream per load across windows/policies; simulated clock only");
    table.note("flt(r+p): transient retries + degraded replans absorbed; all jobs completed");
    let json = render_json(&cells, quick);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_beats_no_window_at_high_load() {
        let (loads, _, _) = grid(true);
        let high = *loads.last().unwrap();
        let off = run_cell("t", high, 32, 0.0, SchedulerPolicy::Fifo, None);
        let on = run_cell("t", high, 32, 50_000.0, SchedulerPolicy::Fifo, None);
        // The stream spans 12 shapes (2 fields × 3 sizes × 2 directions),
        // so even at high load batches stay modest — but they must form.
        assert!(
            on.metrics.mean_batch_size() > 1.2,
            "window must actually coalesce: {}",
            on.metrics.mean_batch_size()
        );
        assert!(
            on.metrics.throughput_jobs_per_s() > off.metrics.throughput_jobs_per_s(),
            "coalescing should raise throughput at high load: {} vs {}",
            on.metrics.throughput_jobs_per_s(),
            off.metrics.throughput_jobs_per_s()
        );
    }

    #[test]
    fn faulted_cells_complete_every_job() {
        // run_cell asserts all_completed internally; also check faults fired.
        let c = run_cell(
            "t",
            20_000.0,
            32,
            25_000.0,
            SchedulerPolicy::Fifo,
            Some(e14_fault_rates()),
        );
        let raw = &c.metrics.classes["raw-ntt"];
        assert!(
            raw.retries + raw.replans > 0,
            "fault rates should produce visible recovery work"
        );
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let run_once = || {
            let c = run_cell("t", 5_000.0, 16, 25_000.0, SchedulerPolicy::Fifo, None);
            render_json(&[c], true)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "identical runs must render byte-identical JSON");
        assert!(a.starts_with("{\n") && a.ends_with("}\n"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }
}
