//! **E5 — per-hierarchy-level time breakdown**: where a UniNTT forward
//! transform's work lives, mapped onto the four hierarchy levels
//! (warp / block / device / multi-GPU).
//!
//! Uses the *raw* (overlap-ignoring) component times: a GPU overlaps its
//! shuffle, shared-memory and DRAM pipelines, so bottleneck-attributed time
//! would show 0% for any level that never dominates — true, but it hides
//! the workload structure the figure is meant to show.

use unintt_core::UniNttOptions;
use unintt_ff::{Bn254Fr, Goldilocks};
use unintt_gpu_sim::{presets, FieldSpec, Level};

use crate::experiments::unintt_run;
use crate::report::Table;

/// Runs E5 and renders the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[u32] = if quick { &[24] } else { &[20, 24, 28] };
    let gpus = 8;
    let cfg = presets::a100_nvlink(gpus);

    let mut table = Table::new(
        format!("E5: work breakdown by hierarchy level (UniNTT, {gpus}×A100, raw component time)"),
        &["field", "log2(N)", "warp", "block", "device", "multi-GPU"],
    );

    for &(fs, name) in &[
        (FieldSpec::goldilocks(), "Goldilocks"),
        (FieldSpec::bn254_fr(), "BN254-Fr"),
    ] {
        for &log_n in sizes {
            let opts = UniNttOptions::tuned_for(&fs);
            let stats = if name == "Goldilocks" {
                unintt_run::<Goldilocks>(log_n, &cfg, opts, fs, 1).1
            } else {
                unintt_run::<Bn254Fr>(log_n, &cfg, opts, fs, 1).1
            };
            let by_level = stats.raw_time_ns.by_level();
            let total: f64 = by_level.iter().map(|(_, t)| t).sum();
            let pct = |lvl: Level| {
                let t = by_level
                    .iter()
                    .find(|(l, _)| *l == lvl)
                    .map(|(_, t)| *t)
                    .unwrap_or(0.0);
                format!("{:.1}%", 100.0 * t / total)
            };
            table.row(vec![
                name.to_string(),
                format!("2^{log_n}"),
                pct(Level::Warp),
                pct(Level::Block),
                pct(Level::Device),
                pct(Level::MultiGpu),
            ]);
        }
    }
    table.note("raw per-pipeline time; pipelines overlap, so rows describe work, not makespan");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interconnect_is_major_for_cheap_fields() {
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(8);
        let (_, stats) = unintt_run::<Goldilocks>(24, &cfg, UniNttOptions::tuned_for(&fs), fs, 1);
        let by_level = stats.raw_time_ns.by_level();
        let total: f64 = by_level.iter().map(|(_, t)| t).sum();
        let multi = by_level
            .iter()
            .find(|(l, _)| *l == Level::MultiGpu)
            .unwrap()
            .1;
        assert!(
            multi / total > 0.2,
            "interconnect should be a major cost for Goldilocks: {:.1}%",
            100.0 * multi / total
        );
    }

    #[test]
    fn every_level_contributes() {
        let fs = FieldSpec::bn254_fr();
        let cfg = presets::a100_nvlink(8);
        let (_, stats) = unintt_run::<Bn254Fr>(24, &cfg, UniNttOptions::tuned_for(&fs), fs, 1);
        for (level, t) in stats.raw_time_ns.by_level() {
            assert!(t > 0.0, "level {level} should have nonzero raw work");
        }
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let rendered = run(true).render();
        let mut rows = 0;
        for line in rendered.lines().map(str::trim) {
            if !(line.starts_with("Goldilocks") || line.starts_with("BN254")) {
                continue;
            }
            rows += 1;
            let sum: f64 = line
                .split_whitespace()
                .filter(|c| c.ends_with('%'))
                .map(|c| c.trim_end_matches('%').parse::<f64>().unwrap())
                .sum();
            assert!((sum - 100.0).abs() < 0.5, "{line}");
        }
        assert!(rows >= 2, "expected data rows in:\n{rendered}");
    }
}
