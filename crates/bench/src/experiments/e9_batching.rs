//! **E9 — batch NTT throughput**: transforms per second as the batch size
//! grows, with the O5 batching optimization on and off. Batching shares
//! kernel launches and coalesces the all-to-alls, so throughput climbs
//! until bandwidth saturates.

use unintt_core::UniNttOptions;
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec};

use crate::experiments::unintt_run;
use crate::report::Table;

/// Runs E9 and renders the table.
pub fn run(quick: bool) -> Table {
    let gpus = 8;
    let cfg = presets::a100_nvlink(gpus);
    let fs = FieldSpec::bn254_fr();
    let log_n = if quick { 16 } else { 20 };
    let batches: &[u64] = if quick {
        &[1, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };

    let mut table = Table::new(
        format!("E9: batch NTT throughput (2^{log_n} BN254-Fr, {gpus}×A100)"),
        &["batch", "batched (O5 on)", "unbatched", "O5 gain"],
    );

    let tuned = UniNttOptions::tuned_for(&fs);
    let mut unbatched = tuned;
    unbatched.batching = false;

    let throughput = |t_ns: f64, b: u64| b as f64 / (t_ns / 1e9);
    for &b in batches {
        let (t_on, _) = unintt_run::<Bn254Fr>(log_n, &cfg, tuned, fs, b);
        let (t_off, _) = unintt_run::<Bn254Fr>(log_n, &cfg, unbatched, fs, b);
        table.row(vec![
            b.to_string(),
            format!("{:.0} NTT/s", throughput(t_on, b)),
            format!("{:.0} NTT/s", throughput(t_off, b)),
            format!("{:.2}x", t_off / t_on),
        ]);
    }
    table.note("throughput = batch / simulated makespan of the whole batch");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_gain_grows_with_batch_size() {
        let cfg = presets::a100_nvlink(8);
        let fs = FieldSpec::bn254_fr();
        let tuned = UniNttOptions::tuned_for(&fs);
        let mut unbatched = tuned;
        unbatched.batching = false;
        let (t1_on, _) = unintt_run::<Bn254Fr>(16, &cfg, tuned, fs, 1);
        let (t32_on, _) = unintt_run::<Bn254Fr>(16, &cfg, tuned, fs, 32);
        let (t32_off, _) = unintt_run::<Bn254Fr>(16, &cfg, unbatched, fs, 32);
        // Batched 32 should be far cheaper than 32 separate transforms.
        assert!(
            t32_on < 0.5 * t32_off,
            "batching should help: on={t32_on} off={t32_off}"
        );
        // And throughput at batch 32 beats batch 1.
        assert!(32.0 / t32_on > 1.5 * (1.0 / t1_on));
    }

    #[test]
    fn batch_one_identical_either_way() {
        let cfg = presets::a100_nvlink(8);
        let fs = FieldSpec::bn254_fr();
        let tuned = UniNttOptions::tuned_for(&fs);
        let mut unbatched = tuned;
        unbatched.batching = false;
        let (on, _) = unintt_run::<Bn254Fr>(16, &cfg, tuned, fs, 1);
        let (off, _) = unintt_run::<Bn254Fr>(16, &cfg, unbatched, fs, 1);
        assert!((on - off).abs() < 1e-6 * on);
    }
}
