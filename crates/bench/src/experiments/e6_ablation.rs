//! **E6 — optimization ablation**: slowdown from flipping each uniform
//! optimization (O1–O5) away from the cost-model-tuned configuration, and
//! from disabling everything.
//!
//! Note O2 is a *choice* (regenerate twiddles in registers vs stream
//! tables): the tuned configuration already picks the cheaper side for the
//! field, so the ablation flips to the wrong side.

use unintt_core::UniNttOptions;
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec};

use crate::experiments::unintt_run;
use crate::report::{fmt_ns, Table};

/// The tuned configuration with exactly one optimization flipped.
fn flipped(base: UniNttOptions, which: u32) -> UniNttOptions {
    let mut o = base;
    match which {
        1 => o.fuse_twiddle = !o.fuse_twiddle,
        2 => o.twiddle_on_the_fly = !o.twiddle_on_the_fly,
        3 => o.padded_layout = !o.padded_layout,
        4 => o.fuse_exchange = !o.fuse_exchange,
        5 => o.batching = !o.batching,
        _ => unreachable!(),
    }
    o
}

/// Runs E6 and renders the table.
pub fn run(quick: bool) -> Table {
    let gpus = 8;
    let cfg = presets::a100_nvlink(gpus);
    let fs = FieldSpec::bn254_fr();
    let log_n = if quick { 20 } else { 24 };
    // O5 (batching) only shows up with a real batch.
    let batch = 8;
    let tuned = UniNttOptions::tuned_for(&fs);

    let mut table = Table::new(
        format!(
            "E6: optimization ablation (UniNTT, 2^{log_n} BN254-Fr, batch {batch}, {gpus}×A100)"
        ),
        &["configuration", "time", "slowdown"],
    );

    let (t_tuned, _) = unintt_run::<Bn254Fr>(log_n, &cfg, tuned, fs, batch);
    table.row(vec![
        "tuned (O1-O5)".into(),
        fmt_ns(t_tuned),
        "1.00x".into(),
    ]);

    for which in 1..=5u32 {
        let (t, _) = unintt_run::<Bn254Fr>(log_n, &cfg, flipped(tuned, which), fs, batch);
        table.row(vec![
            UniNttOptions::ablation_label(which).to_string(),
            fmt_ns(t),
            format!("{:.2}x", t / t_tuned),
        ]);
    }

    let (t_none, _) = unintt_run::<Bn254Fr>(log_n, &cfg, UniNttOptions::none(), fs, batch);
    table.row(vec![
        "none (all off)".into(),
        fmt_ns(t_none),
        format!("{:.2}x", t_none / t_tuned),
    ]);
    table.note("slowdown relative to the cost-model-tuned configuration");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slowdowns(rendered: &str) -> Vec<(String, f64)> {
        rendered
            .lines()
            .map(str::trim)
            .filter(|l| l.ends_with('x') && !l.is_empty())
            .map(|l| {
                let s: f64 = l
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches('x')
                    .parse()
                    .unwrap();
                (l.to_string(), s)
            })
            .collect()
    }

    #[test]
    fn every_ablation_slows_down() {
        let all = slowdowns(&run(true).render());
        assert!(all.len() >= 7, "expected 7 config rows");
        for (line, s) in &all {
            assert!(
                *s >= 1.0 - 1e-9,
                "flipping a tuned optimization must not speed things up: {line}"
            );
        }
    }

    #[test]
    fn none_is_worst() {
        let all = slowdowns(&run(true).render());
        let none = all.last().unwrap().1;
        assert!(
            all.iter().all(|(_, s)| *s <= none + 1e-9),
            "all-off should be the slowest: {all:?}"
        );
    }
}
