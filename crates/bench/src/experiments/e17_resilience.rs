//! **E17 — fleet resilience under injected chaos**: the `serve::fleet`
//! multi-cluster service driven by bursty multi-tenant load while a
//! seeded schedule kills and revives whole clusters.
//!
//! Four sections:
//! * **baseline** — the fault-free fleet: the digest set every chaos
//!   scenario must reproduce bit-for-bit;
//! * **chaos** — one-cluster kill/revive and a rolling two-cluster
//!   outage: in-flight and queued work fails over to survivors, circuit
//!   breakers quarantine the dead cluster, half-open probes re-admit it
//!   after revival — and **zero accepted jobs fail**;
//! * **policy** — the kill/revive scenario under FIFO, priority and
//!   shortest-job-first scheduling (failover is scheduler-agnostic);
//! * **deadline** — the same chaos with tight per-job deadlines: jobs
//!   whose deadline lapses while queued are cancelled with a typed
//!   status and counted separately from overload shedding.
//!
//! Everything runs on the simulated clock from seeded workloads and a
//! scripted chaos plan, so two runs produce byte-identical output —
//! including the machine-readable `BENCH_resilience.json`.

use std::fmt::Write as _;

use unintt_serve::{
    ChaosPlan, FleetConfig, FleetReport, FleetService, SchedulerPolicy, ServiceConfig, WorkloadSpec,
};

use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_resilience.json";

/// One measured fleet run.
struct Cell {
    section: &'static str,
    scenario: &'static str,
    policy: SchedulerPolicy,
    report: FleetReport,
    /// Completed-job digests identical to the fault-free baseline.
    digests_match: bool,
}

/// Stream size per mode.
fn jobs(quick: bool) -> usize {
    if quick {
        48
    } else {
        160
    }
}

/// The seeded bursty multi-tenant stream every cell replays.
fn stream(quick: bool) -> WorkloadSpec {
    WorkloadSpec::bursty(0xe17, jobs(quick), 40_000.0)
}

/// A three-cluster fleet with the given chaos plan and policy.
fn fleet_config(chaos: ChaosPlan, policy: SchedulerPolicy) -> FleetConfig {
    FleetConfig {
        clusters: 3,
        base: ServiceConfig {
            policy,
            ..ServiceConfig::default()
        },
        chaos,
        ..FleetConfig::default()
    }
}

/// Plays `spec` through a fleet configured with `chaos` + `policy`.
fn run_fleet(spec: &WorkloadSpec, chaos: ChaosPlan, policy: SchedulerPolicy) -> FleetReport {
    let mut fleet = FleetService::new(fleet_config(chaos, policy));
    fleet.submit_all(spec.generate());
    fleet.run()
}

/// Runs one scenario and checks the chaos-harness invariants: zero
/// failures among accepted jobs, and completed outputs bit-identical to
/// the fault-free baseline.
fn run_cell(
    section: &'static str,
    scenario: &'static str,
    spec: &WorkloadSpec,
    chaos: ChaosPlan,
    policy: SchedulerPolicy,
    baseline: &FleetReport,
) -> Cell {
    let report = run_fleet(spec, chaos, policy);
    assert!(
        report.zero_accepted_failures(),
        "E17 invariant: every accepted job completes or is cancelled for \
         a hopeless deadline ({section}/{scenario})"
    );
    // Every job completed in both runs must produce identical bits; a
    // job the chaos run cancelled (deadline section) is absent from its
    // digest map and exempt.
    let digests = report.digests();
    let digests_match = baseline
        .digests()
        .iter()
        .all(|(id, d)| digests.get(id).is_none_or(|x| x == d));
    Cell {
        section,
        scenario,
        policy,
        report,
        digests_match,
    }
}

/// Minimum per-cluster availability over the run.
fn min_availability(r: &FleetReport) -> f64 {
    r.fleet
        .availability
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
}

fn render_json(cells: &[Cell], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"fleet-resilience\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let m = &c.report.metrics;
        let f = &c.report.fleet;
        let raw = &m.classes["raw-ntt"];
        let _ = write!(
            out,
            "    {{\"section\": \"{}\", \"scenario\": \"{}\", \"policy\": \"{}\", \
             \"completed\": {}, \"shed\": {}, \"deadline_cancelled\": {}, \
             \"failovers\": {}, \"hedges\": {}, \"hedge_wins\": {}, \
             \"quarantines\": {}, \"probes\": {}, \"readmissions\": {}, \
             \"horizon_ns\": {:.0}, \"throughput_jobs_per_s\": {:.1}, \
             \"p99_ns\": {:.0}, \"min_availability\": {:.4}, \
             \"digests_match_baseline\": {}, \"final_states\": [{}]}}",
            c.section,
            c.scenario,
            c.policy.name(),
            m.completed(),
            m.shed(),
            m.deadline_exceeded(),
            f.failovers,
            f.hedges,
            f.hedge_wins,
            f.quarantines,
            f.probes,
            f.readmissions,
            m.horizon_ns,
            m.throughput_jobs_per_s(),
            raw.latency.p99_ns,
            min_availability(&c.report),
            c.digests_match,
            f.final_states
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_row(table: &mut Table, c: &Cell) {
    let m = &c.report.metrics;
    let f = &c.report.fleet;
    let raw = &m.classes["raw-ntt"];
    table.row(vec![
        c.section.into(),
        c.scenario.into(),
        c.policy.name().into(),
        format!("{}", m.completed()),
        format!("{}", m.deadline_exceeded()),
        format!("{}", f.failovers),
        format!("{}/{}", f.quarantines, f.readmissions),
        format!("{:.0}", m.throughput_jobs_per_s()),
        fmt_ns(raw.latency.p99_ns),
        format!("{:.1}%", 100.0 * min_availability(&c.report)),
        if c.digests_match { "yes" } else { "NO" }.into(),
    ]);
}

/// Runs E17 and renders the table (also writes [`JSON_PATH`]).
pub fn run(quick: bool) -> Table {
    let spec = stream(quick);
    let mut table = Table::new(
        "E17: fleet resilience under injected chaos (3 clusters x 2 leases of 2 nodes x 2 A100)",
        &[
            "section",
            "scenario",
            "policy",
            "done",
            "ddl",
            "failover",
            "quar/adm",
            "jobs/s",
            "p99",
            "min-avail",
            "bits",
        ],
    );

    // Section 1: the fault-free baseline defines the digest set.
    let baseline = run_fleet(&spec, ChaosPlan::none(), SchedulerPolicy::Fifo);
    assert!(baseline.zero_accepted_failures());
    let horizon = baseline.metrics.horizon_ns;
    let mut cells = vec![Cell {
        section: "baseline",
        scenario: "fault-free",
        policy: SchedulerPolicy::Fifo,
        digests_match: true,
        report: baseline,
    }];
    let baseline = cells[0].report.clone();
    let baseline = &baseline;

    // Section 2: chaos — a mid-burst kill/revive and a rolling outage.
    let kill_revive = || ChaosPlan::kill_revive(0, horizon * 0.25, horizon * 0.7);
    cells.push(run_cell(
        "chaos",
        "kill-revive",
        &spec,
        kill_revive(),
        SchedulerPolicy::Fifo,
        baseline,
    ));
    cells.push(run_cell(
        "chaos",
        "rolling-outage",
        &spec,
        ChaosPlan::rolling(2, horizon * 0.2, horizon * 0.3, horizon * 0.25),
        SchedulerPolicy::Fifo,
        baseline,
    ));

    // Section 3: the same kill under every scheduling policy.
    for policy in [SchedulerPolicy::Priority, SchedulerPolicy::ShortestJobFirst] {
        cells.push(run_cell(
            "policy",
            "kill-revive",
            &spec,
            kill_revive(),
            policy,
            baseline,
        ));
    }

    // Section 4: chaos with tight deadlines — queued jobs whose deadline
    // lapses are cancelled with a typed status, not run late.
    let tight = WorkloadSpec {
        deadline_slack_ns: Some(150_000.0),
        ..spec
    };
    let deadline_baseline = run_fleet(&tight, ChaosPlan::none(), SchedulerPolicy::Fifo);
    cells.push(run_cell(
        "deadline",
        "kill-revive",
        &tight,
        kill_revive(),
        SchedulerPolicy::Fifo,
        &deadline_baseline,
    ));

    for c in &cells {
        push_row(&mut table, c);
    }

    table.note("same seeded bursty stream per section; chaos kills/revives whole clusters");
    table.note("bits: completed-job digests identical to the fault-free baseline");
    table.note("zero accepted-job failures asserted in every cell");
    let json = render_json(&cells, quick);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_cells_match_baseline_bits_and_fail_no_jobs() {
        let spec = stream(true);
        let baseline = run_fleet(&spec, ChaosPlan::none(), SchedulerPolicy::Fifo);
        let horizon = baseline.metrics.horizon_ns;
        let cell = run_cell(
            "t",
            "kill-revive",
            &spec,
            ChaosPlan::kill_revive(0, horizon * 0.25, horizon * 0.7),
            SchedulerPolicy::Fifo,
            &baseline,
        );
        assert!(cell.digests_match, "chaos must not change output bits");
        assert!(
            cell.report.fleet.quarantines >= 1,
            "the kill must trip a breaker"
        );
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let run_once = || {
            let spec = stream(true);
            let baseline = run_fleet(&spec, ChaosPlan::none(), SchedulerPolicy::Fifo);
            let horizon = baseline.metrics.horizon_ns;
            let cell = run_cell(
                "t",
                "kill-revive",
                &spec,
                ChaosPlan::kill_revive(0, horizon * 0.3, horizon * 0.8),
                SchedulerPolicy::Fifo,
                &baseline,
            );
            render_json(&[cell], true)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "identical runs must render byte-identical JSON");
        assert!(a.starts_with("{\n") && a.ends_with("}\n"));
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }
}
