//! **E12 — multi-node scale-out** (beyond the paper): the UniNTT
//! recursion extended one level, with the datacenter network as the
//! outermost exchange medium. The question the paper leaves open: does the
//! decomposition keep paying when the next fabric down is 10–50× slower
//! than NVLink?
//!
//! Under the default overlapped schedule the staged cross-node exchange
//! pipelines against the outer column NTTs, so only the un-hidden wire
//! remainder lands on the cluster makespan (compare with
//! `--blocking-comm`); the network cost itself comes from the same α–β
//! formula the intra-node fabric charges with.

use unintt_core::{Cluster, ClusterNttEngine, NetworkConfig, UniNttOptions};
use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{presets, FieldSpec};

use crate::report::{fmt_ns, Table};

/// Runs E12 and renders the table.
pub fn run(quick: bool) -> Table {
    let fs = FieldSpec::bn254_fr();
    let gpus_per_node = 8;
    let log_n = if quick { 24 } else { 28 };
    let node_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut table = Table::new(
        format!("E12: multi-node UniNTT (2^{log_n} BN254-Fr, {gpus_per_node}×A100 per node)"),
        &[
            "nodes",
            "network",
            "time",
            "vs 1 node",
            "network bytes",
            "comm hidden",
            "collectives",
        ],
    );

    let node_cfg = presets::a100_nvlink(gpus_per_node);
    let mut baseline_ns = 0.0f64;
    for &nodes in node_counts {
        for (net, name) in [
            (NetworkConfig::infiniband_400g(), "IB 400G"),
            (NetworkConfig::ethernet_100g(), "Eth 100G"),
        ] {
            if nodes == 1 && name == "Eth 100G" {
                continue; // no network use on one node
            }
            let engine = ClusterNttEngine::<Bn254Fr>::new(
                log_n,
                nodes,
                &node_cfg,
                UniNttOptions::tuned_for(&fs),
                fs,
            );
            let mut cluster = Cluster::new(nodes, node_cfg.clone(), net, fs);
            engine.simulate_forward(&mut cluster);
            let t = cluster.total_time_ns();
            if nodes == 1 {
                baseline_ns = t;
            }
            // Hidden communication = network wire time buried under the
            // outer column NTTs plus each node's intra-fabric overlap.
            let hidden_ns = cluster.network_hidden_ns()
                + (0..nodes)
                    .map(|n| cluster.node(n).stats().comm_hidden_ns)
                    .sum::<f64>();
            let collectives: u64 = (0..nodes)
                .map(|n| cluster.node(n).stats().collectives)
                .sum();
            table.row(vec![
                nodes.to_string(),
                if nodes == 1 {
                    "-".into()
                } else {
                    name.to_string()
                },
                fmt_ns(t),
                format!("{:.2}x", baseline_ns / t),
                crate::report::fmt_bytes(cluster.network_bytes()),
                fmt_ns(hidden_ns),
                collectives.to_string(),
            ]);
        }
    }
    table.note("the cross-node all-to-all is charged once; node phases overlap");
    table.note(
        "finding: even 400G IB (~42 GB/s effective) is ~12x slower than NVSwitch, so at \
         2^28 multi-node LOSES — the recursion is sound but needs larger transforms or \
         fatter fabrics, which is exactly why the paper stops at one node",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infiniband_beats_ethernet() {
        let fs = FieldSpec::bn254_fr();
        let node_cfg = presets::a100_nvlink(8);
        let engine =
            ClusterNttEngine::<Bn254Fr>::new(26, 4, &node_cfg, UniNttOptions::tuned_for(&fs), fs);
        let mut ib = Cluster::new(4, node_cfg.clone(), NetworkConfig::infiniband_400g(), fs);
        engine.simulate_forward(&mut ib);
        let mut eth = Cluster::new(4, node_cfg, NetworkConfig::ethernet_100g(), fs);
        engine.simulate_forward(&mut eth);
        assert!(ib.total_time_ns() < eth.total_time_ns());
    }

    #[test]
    fn table_renders() {
        let table = run(true);
        assert!(table.len() >= 3, "{}", table.render());
    }
}
