//! Where harness artifacts land.
//!
//! Machine-readable `BENCH_*.json` results stay in the working directory
//! (they are committed and byte-compared by the perf gate), but bulky
//! trace captures — Chrome/Perfetto JSON, folded stacks — route to a
//! dedicated trace directory, `target/traces/` by default, overridable
//! with `harness --trace-dir <path>`. Keeping them out of the repo root
//! means a tracing run never litters the tree with untracked artifacts.

use std::path::PathBuf;
use std::sync::OnceLock;

static TRACE_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Overrides the trace directory (first call wins; the harness calls
/// this once while parsing `--trace-dir`).
pub fn set_trace_dir(dir: impl Into<PathBuf>) {
    let _ = TRACE_DIR.set(dir.into());
}

/// The active trace directory (`target/traces` unless overridden).
pub fn trace_dir() -> PathBuf {
    TRACE_DIR
        .get()
        .cloned()
        .unwrap_or_else(|| PathBuf::from("target/traces"))
}

/// Resolves `file` inside the trace directory, creating the directory
/// on first use.
pub fn trace_path(file: &str) -> PathBuf {
    let dir = trace_dir();
    let _ = std::fs::create_dir_all(&dir);
    dir.join(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_target_traces() {
        // The override is process-global, so only assert the default
        // when no other test has set it.
        if TRACE_DIR.get().is_none() {
            assert_eq!(trace_dir(), PathBuf::from("target/traces"));
        }
        assert!(trace_path("x.json").ends_with("x.json"));
    }
}
