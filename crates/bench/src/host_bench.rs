//! `bench-host`: wall-clock benchmark of the host-side NTT hot path.
//!
//! Measures batched forward NTTs over **Goldilocks and BabyBear** across
//! sizes, thread counts, and all three kernel families (legacy radix-2
//! DIT, the scalar Shoup/six-step fast path, and the vectorized
//! lane-packed path), prints the comparison tables, and writes
//! machine-readable results to `BENCH_ntt.json` in the current
//! directory. The JSON also carries a per-stage time breakdown
//! (`twiddle_build` / `bitrev` / `passes`) for each size and the E18
//! acceptance gates: vector-vs-legacy speedup at `2^18`–`2^20` and
//! `2^22`, 8 threads. See EXPERIMENTS.md (E18) for how to reproduce.

use std::fmt::Write as _;
use std::time::Instant;

use unintt_ff::{BabyBear, Field, Goldilocks, TwoAdicField};
use unintt_ntt::{
    active_vector_backend, batch_transform_parallel, bit_reverse_permute, set_kernel_mode,
    Direction, KernelMode, Ntt, TwiddleTable, VectorBackend, VECTOR_DIRECT_MAX_LOG_N,
};

use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_ntt.json";

/// The size/thread grid: full runs sweep `2^12 .. 2^22`; `--quick` trims to
/// three sizes. Thread counts are chunking knobs for
/// [`batch_transform_parallel`] — deterministic regardless of pool size.
fn grid(quick: bool) -> (Vec<u32>, Vec<usize>) {
    let sizes = if quick {
        vec![12, 16, 20]
    } else {
        vec![12, 14, 16, 18, 20, 22]
    };
    (sizes, vec![1, 4, 8])
}

/// Total elements per measurement, shared across sizes so every cell does
/// comparable work (a 2^12 run transforms 1024 rows, a 2^22 run one row).
const TOTAL_LOG: u32 = 22;

/// Vector-vs-legacy speedup the E18 gate demands at `2^18`–`2^20`
/// (8 threads), by backend.
fn gate_mid(backend: VectorBackend) -> f64 {
    match backend {
        VectorBackend::Native => 2.0,
        VectorBackend::Portable => 1.5,
    }
}

/// Vector-vs-legacy speedup the E18 gate demands at `2^22` (8 threads).
fn gate_top(backend: VectorBackend) -> f64 {
    match backend {
        VectorBackend::Native => 3.0,
        VectorBackend::Portable => 2.5,
    }
}

#[derive(Clone, Copy)]
struct Cell {
    field: &'static str,
    log_n: u32,
    rows: usize,
    threads: usize,
    legacy_ns: f64,
    fast_ns: f64,
    vector_ns: f64,
}

/// Per-stage wall-clock decomposition of one vector-mode transform.
#[derive(Clone, Copy)]
struct Breakdown {
    field: &'static str,
    log_n: u32,
    /// Cold [`TwiddleTable`] construction (amortized across the process
    /// by the shared caches; reported here as the one-time cost).
    twiddle_build_ns: f64,
    /// The bit-reversal permutation alone at this size.
    bitrev_ns: f64,
    /// Butterfly passes: transform total minus the permutation (equal to
    /// the total where the six-step path never permutes).
    passes_ns: f64,
    /// One full forward transform, vector kernels.
    total_ns: f64,
}

fn pseudo_random_input<F: Field>(len: usize) -> Vec<F> {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x005e_ed17);
    (0..len).map(|_| F::random(&mut rng)).collect()
}

/// Best-of-`iters` wall-clock time of one batched forward transform.
fn time_batch<F: TwoAdicField>(
    ntt: &Ntt<F>,
    pristine: &[F],
    threads: usize,
    mode: KernelMode,
    iters: u32,
) -> f64 {
    set_kernel_mode(mode);
    let mut buf = pristine.to_vec();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        buf.copy_from_slice(pristine);
        let t0 = Instant::now();
        batch_transform_parallel(ntt, &mut buf, Direction::Forward, threads);
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    set_kernel_mode(KernelMode::default());
    best
}

/// Wall-clock of the bit-reversal permutation alone (table-driven at these
/// sizes), per buffer — context for where the legacy path's time goes and
/// the `bitrev` line of the stage breakdown.
fn time_bitrev<F: Field>(pristine: &[F], iters: u32) -> f64 {
    let mut buf = pristine.to_vec();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        buf.copy_from_slice(pristine);
        let t0 = Instant::now();
        bit_reverse_permute(&mut buf);
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    best
}

/// Stage breakdown for one `(field, log_n)`: cold twiddle build, the
/// permutation, and the butterfly passes of a single vector transform.
fn measure_breakdown<F: TwoAdicField>(field: &'static str, log_n: u32, iters: u32) -> Breakdown {
    let t0 = Instant::now();
    let table = TwiddleTable::<F>::new(log_n);
    let twiddle_build_ns = t0.elapsed().as_secs_f64() * 1e9;
    drop(table);

    let pristine = pseudo_random_input::<F>(1 << log_n);
    let bitrev_ns = time_bitrev(&pristine, iters);

    let ntt = Ntt::<F>::new(log_n);
    let total_ns = time_batch(&ntt, &pristine, 1, KernelMode::Vector, iters);
    // The direct vector kernel ends with the permutation; the six-step
    // decomposition above the threshold never bit-reverses.
    let passes_ns = if log_n <= VECTOR_DIRECT_MAX_LOG_N {
        (total_ns - bitrev_ns).max(0.0)
    } else {
        total_ns
    };
    Breakdown {
        field,
        log_n,
        twiddle_build_ns,
        bitrev_ns,
        passes_ns,
        total_ns,
    }
}

/// Sweeps one field over the grid, filling `cells` and the printable table.
fn sweep_field<F: TwoAdicField>(
    field: &'static str,
    sizes: &[u32],
    thread_counts: &[usize],
    iters: u32,
    cells: &mut Vec<Cell>,
    table: &mut Table,
) {
    for &log_n in sizes {
        let rows = 1usize.max(1usize << (TOTAL_LOG.saturating_sub(log_n)));
        let pristine = pseudo_random_input::<F>(rows << log_n);
        let ntt = Ntt::<F>::new(log_n);
        for &threads in thread_counts {
            let legacy_ns = time_batch(&ntt, &pristine, threads, KernelMode::Legacy, iters);
            let fast_ns = time_batch(&ntt, &pristine, threads, KernelMode::Fast, iters);
            let vector_ns = time_batch(&ntt, &pristine, threads, KernelMode::Vector, iters);
            let cell = Cell {
                field,
                log_n,
                rows,
                threads,
                legacy_ns,
                fast_ns,
                vector_ns,
            };
            cells.push(cell);
            table.row(vec![
                field.to_string(),
                format!("2^{log_n}"),
                rows.to_string(),
                threads.to_string(),
                fmt_ns(legacy_ns),
                fmt_ns(fast_ns),
                fmt_ns(vector_ns),
                format!("{:.2}x", legacy_ns / vector_ns),
            ]);
        }
    }
}

/// The gate cells: Goldilocks, 8 threads, at the sizes present in `cells`.
fn gate_speedups(cells: &[Cell]) -> Vec<(u32, f64)> {
    [18u32, 20, 22]
        .iter()
        .filter_map(|&log_n| {
            cells
                .iter()
                .find(|c| c.field == "Goldilocks" && c.log_n == log_n && c.threads == 8)
                .map(|c| (log_n, c.legacy_ns / c.vector_ns))
        })
        .collect()
}

fn render_json(
    cells: &[Cell],
    breakdowns: &[Breakdown],
    headline: Option<&Cell>,
    bitrev_ns: f64,
    quick: bool,
    backend: VectorBackend,
) -> String {
    let backend_name = match backend {
        VectorBackend::Native => unintt_ntt::active_backend_label::<Goldilocks>(),
        VectorBackend::Portable => "portable",
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"host-ntt\",");
    let _ = writeln!(out, "  \"fields\": [\"Goldilocks\", \"BabyBear\"],");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"total_elements_log2\": {TOTAL_LOG},");
    let _ = writeln!(out, "  \"vector_backend\": \"{backend_name}\",");
    let _ = writeln!(out, "  \"bitrev_2^20_ns\": {:.0},", bitrev_ns);
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"field\": \"{}\", \"log_n\": {}, \"rows\": {}, \"threads\": {}, \
             \"legacy_ns\": {:.0}, \"shoup_ns\": {:.0}, \"vector_ns\": {:.0}, \
             \"speedup\": {:.3}, \"vector_speedup\": {:.3}}}",
            c.field,
            c.log_n,
            c.rows,
            c.threads,
            c.legacy_ns,
            c.fast_ns,
            c.vector_ns,
            c.legacy_ns / c.fast_ns,
            c.legacy_ns / c.vector_ns
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"breakdown\": [\n");
    for (i, b) in breakdowns.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"field\": \"{}\", \"log_n\": {}, \"twiddle_build_ns\": {:.0}, \
             \"bitrev_ns\": {:.0}, \"passes_ns\": {:.0}, \"total_ns\": {:.0}}}",
            b.field, b.log_n, b.twiddle_build_ns, b.bitrev_ns, b.passes_ns, b.total_ns
        );
        out.push_str(if i + 1 < breakdowns.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    let gates = gate_speedups(cells);
    if gates.is_empty() {
        out.push_str("  \"gates\": null,\n");
    } else {
        let mid = gate_mid(backend);
        let top = gate_top(backend);
        let pass = gates
            .iter()
            .all(|&(log_n, s)| s >= if log_n == 22 { top } else { mid });
        out.push_str("  \"gates\": {");
        for &(log_n, s) in &gates {
            let _ = write!(out, "\"vector_speedup_2^{log_n}\": {s:.3}, ");
        }
        let _ = writeln!(
            out,
            "\"target_18_20\": {mid:.1}, \"target_22\": {top:.1}, \"pass\": {pass}}},"
        );
    }
    match headline {
        Some(c) => {
            let _ = writeln!(
                out,
                "  \"headline\": {{\"log_n\": {}, \"threads\": {}, \"legacy_ns\": {:.0}, \
                 \"shoup_ns\": {:.0}, \"vector_ns\": {:.0}, \"speedup\": {:.3}, \
                 \"vector_speedup\": {:.3}}}",
                c.log_n,
                c.threads,
                c.legacy_ns,
                c.fast_ns,
                c.vector_ns,
                c.legacy_ns / c.fast_ns,
                c.legacy_ns / c.vector_ns
            );
        }
        None => {
            let _ = writeln!(out, "  \"headline\": null");
        }
    }
    out.push_str("}\n");
    out
}

/// Runs the host-path benchmark, writes [`JSON_PATH`], and returns the
/// printable table.
pub fn run(quick: bool) -> Table {
    let (sizes, thread_counts) = grid(quick);
    let iters = if quick { 2 } else { 3 };
    let backend = active_vector_backend::<Goldilocks>();

    let mut table = Table::new(
        "bench-host: batched forward NTT, legacy vs Shoup vs vector kernels",
        &[
            "field",
            "size",
            "rows",
            "threads",
            "legacy",
            "shoup",
            "vector",
            "vec-speedup",
        ],
    );

    let mut cells = Vec::new();
    sweep_field::<Goldilocks>(
        "Goldilocks",
        &sizes,
        &thread_counts,
        iters,
        &mut cells,
        &mut table,
    );
    sweep_field::<BabyBear>(
        "BabyBear",
        &sizes,
        &thread_counts,
        iters,
        &mut cells,
        &mut table,
    );

    let mut breakdowns = Vec::new();
    for &log_n in &sizes {
        breakdowns.push(measure_breakdown::<Goldilocks>("Goldilocks", log_n, iters));
        breakdowns.push(measure_breakdown::<BabyBear>("BabyBear", log_n, iters));
    }

    let bitrev_input = pseudo_random_input::<Goldilocks>(1 << 20);
    let bitrev_ns = time_bitrev(&bitrev_input, iters);
    table.note(format!(
        "vector backend: {}",
        match backend {
            VectorBackend::Native => {
                // Per-field labels: Goldilocks can sit a SIMD tier above
                // BabyBear (AVX-512 vs AVX2) on the same CPU.
                format!(
                    "{} Goldilocks / {} BabyBear (runtime-detected)",
                    unintt_ntt::active_backend_label::<Goldilocks>(),
                    unintt_ntt::active_backend_label::<BabyBear>(),
                )
            }
            VectorBackend::Portable => "portable lanes".to_string(),
        }
    ));
    table.note(format!(
        "bit-reversal of 2^20 elements (table-driven): {}",
        fmt_ns(bitrev_ns)
    ));

    let headline = cells
        .iter()
        .find(|c| c.field == "Goldilocks" && c.log_n == 20 && c.threads == 8)
        .copied();
    if let Some(c) = headline {
        table.note(format!(
            "headline (Goldilocks 2^20, 8 threads): {:.2}x Shoup, {:.2}x vector over legacy",
            c.legacy_ns / c.fast_ns,
            c.legacy_ns / c.vector_ns
        ));
    }
    for (log_n, s) in gate_speedups(&cells) {
        let target = if log_n == 22 {
            gate_top(backend)
        } else {
            gate_mid(backend)
        };
        table.note(format!(
            "gate 2^{log_n} (8 threads): vector {s:.2}x over legacy (target ≥{target:.1}x) — {}",
            if s >= target { "PASS" } else { "FAIL" }
        ));
    }

    let json = render_json(
        &cells,
        &breakdowns,
        headline.as_ref(),
        bitrev_ns,
        quick,
        backend,
    );
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        let (sizes, threads) = grid(true);
        assert_eq!(sizes, vec![12, 16, 20]);
        assert_eq!(threads, vec![1, 4, 8]);
        let (full, _) = grid(false);
        assert!(full.contains(&18) && full.contains(&20) && full.contains(&22));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = [Cell {
            field: "Goldilocks",
            log_n: 20,
            rows: 4,
            threads: 8,
            legacy_ns: 2e6,
            fast_ns: 1e6,
            vector_ns: 5e5,
        }];
        let breakdowns = [Breakdown {
            field: "Goldilocks",
            log_n: 20,
            twiddle_build_ns: 3e5,
            bitrev_ns: 1e5,
            passes_ns: 4e5,
            total_ns: 5e5,
        }];
        let s = render_json(
            &cells,
            &breakdowns,
            Some(&cells[0]),
            1e5,
            true,
            VectorBackend::Portable,
        );
        assert!(s.starts_with("{\n") && s.ends_with("}\n"));
        assert!(s.contains("\"speedup\": 2.000"));
        assert!(s.contains("\"vector_speedup\": 4.000"));
        assert!(s.contains("\"breakdown\""));
        assert!(s.contains("\"passes_ns\": 400000"));
        assert!(s.contains("\"vector_speedup_2^20\": 4.000"));
        assert!(s.contains("\"headline\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn gates_require_all_targets() {
        let mk = |log_n: u32, vector_ns: f64| Cell {
            field: "Goldilocks",
            log_n,
            rows: 1,
            threads: 8,
            legacy_ns: 6e6,
            fast_ns: 3e6,
            vector_ns,
        };
        // 2^18 and 2^20 clear 2.0x, 2^22 clears 3.0x → pass.
        let cells = [mk(18, 2.9e6), mk(20, 2.9e6), mk(22, 1.9e6)];
        let s = render_json(&cells, &[], None, 0.0, false, VectorBackend::Native);
        assert!(s.contains("\"pass\": true"), "{s}");
        // 2^22 at only 2.0x misses its 3.0x target → fail.
        let cells = [mk(18, 2.9e6), mk(20, 2.9e6), mk(22, 3.0e6)];
        let s = render_json(&cells, &[], None, 0.0, false, VectorBackend::Native);
        assert!(s.contains("\"pass\": false"), "{s}");
    }

    #[test]
    fn timing_helpers_return_positive() {
        let pristine = pseudo_random_input::<Goldilocks>(1 << 8);
        let ntt = Ntt::<Goldilocks>::new(8);
        for mode in [KernelMode::Legacy, KernelMode::Fast, KernelMode::Vector] {
            let t = time_batch(&ntt, &pristine, 2, mode, 1);
            assert!(t > 0.0 && t.is_finite());
        }
        assert!(time_bitrev(&pristine, 1) > 0.0);
    }

    #[test]
    fn breakdown_decomposes_direct_sizes() {
        let b = measure_breakdown::<Goldilocks>("Goldilocks", 10, 1);
        assert!(b.twiddle_build_ns > 0.0);
        assert!(b.bitrev_ns > 0.0);
        assert!(b.total_ns > 0.0);
        assert!(b.passes_ns <= b.total_ns);
    }
}
