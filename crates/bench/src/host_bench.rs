//! `bench-host`: wall-clock benchmark of the host-side NTT hot path.
//!
//! Measures batched Goldilocks forward NTTs across sizes, thread counts,
//! and kernel families (legacy radix-2 DIT vs the Shoup/lazy fast path),
//! prints the comparison table, and writes machine-readable results to
//! `BENCH_ntt.json` in the current directory. The headline number — the
//! speedup at `2^20`, 8 threads — is the acceptance gate for the fast
//! path; see EXPERIMENTS.md for how to reproduce it.

use std::fmt::Write as _;
use std::time::Instant;

use unintt_ff::{Field, Goldilocks};
use unintt_ntt::{
    batch_transform_parallel, bit_reverse_permute, set_kernel_mode, Direction, KernelMode, Ntt,
};

use crate::report::{fmt_ns, Table};

/// Where the machine-readable results land.
pub const JSON_PATH: &str = "BENCH_ntt.json";

/// The size/thread grid: full runs sweep `2^12 .. 2^22`; `--quick` trims to
/// three sizes. Thread counts are chunking knobs for
/// [`batch_transform_parallel`] — deterministic regardless of pool size.
fn grid(quick: bool) -> (Vec<u32>, Vec<usize>) {
    let sizes = if quick {
        vec![12, 16, 20]
    } else {
        vec![12, 14, 16, 18, 20, 22]
    };
    (sizes, vec![1, 4, 8])
}

/// Total elements per measurement, shared across sizes so every cell does
/// comparable work (a 2^12 run transforms 1024 rows, a 2^22 run one row).
const TOTAL_LOG: u32 = 22;

#[derive(Clone, Copy)]
struct Cell {
    log_n: u32,
    rows: usize,
    threads: usize,
    legacy_ns: f64,
    fast_ns: f64,
}

fn pseudo_random_input(len: usize) -> Vec<Goldilocks> {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x005e_ed17);
    (0..len).map(|_| Goldilocks::random(&mut rng)).collect()
}

/// Best-of-`iters` wall-clock time of one batched forward transform.
fn time_batch(
    ntt: &Ntt<Goldilocks>,
    pristine: &[Goldilocks],
    threads: usize,
    mode: KernelMode,
    iters: u32,
) -> f64 {
    set_kernel_mode(mode);
    let mut buf = pristine.to_vec();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        buf.copy_from_slice(pristine);
        let t0 = Instant::now();
        batch_transform_parallel(ntt, &mut buf, Direction::Forward, threads);
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    set_kernel_mode(KernelMode::Fast);
    best
}

/// Wall-clock of the bit-reversal permutation alone (table-driven at these
/// sizes), per element — context for where the legacy path's time goes.
fn time_bitrev(pristine: &[Goldilocks], iters: u32) -> f64 {
    let mut buf = pristine.to_vec();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        buf.copy_from_slice(pristine);
        let t0 = Instant::now();
        bit_reverse_permute(&mut buf);
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    best
}

fn render_json(cells: &[Cell], headline: Option<&Cell>, bitrev_ns: f64, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"host-ntt\",");
    let _ = writeln!(out, "  \"field\": \"Goldilocks\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"total_elements_log2\": {TOTAL_LOG},");
    let _ = writeln!(out, "  \"bitrev_2^20_ns\": {:.0},", bitrev_ns);
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"log_n\": {}, \"rows\": {}, \"threads\": {}, \
             \"legacy_ns\": {:.0}, \"shoup_ns\": {:.0}, \"speedup\": {:.3}}}",
            c.log_n,
            c.rows,
            c.threads,
            c.legacy_ns,
            c.fast_ns,
            c.legacy_ns / c.fast_ns
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    match headline {
        Some(c) => {
            let _ = writeln!(
                out,
                "  \"headline\": {{\"log_n\": {}, \"threads\": {}, \"legacy_ns\": {:.0}, \
                 \"shoup_ns\": {:.0}, \"speedup\": {:.3}}}",
                c.log_n,
                c.threads,
                c.legacy_ns,
                c.fast_ns,
                c.legacy_ns / c.fast_ns
            );
        }
        None => {
            let _ = writeln!(out, "  \"headline\": null");
        }
    }
    out.push_str("}\n");
    out
}

/// Runs the host-path benchmark, writes [`JSON_PATH`], and returns the
/// printable table.
pub fn run(quick: bool) -> Table {
    let (sizes, thread_counts) = grid(quick);
    let iters = if quick { 2 } else { 3 };

    let mut table = Table::new(
        "bench-host: batched Goldilocks forward NTT, legacy vs Shoup kernels",
        &["size", "rows", "threads", "legacy", "shoup", "speedup"],
    );

    let mut cells = Vec::new();
    for &log_n in &sizes {
        let rows = 1usize.max(1usize << (TOTAL_LOG.saturating_sub(log_n)));
        let pristine = pseudo_random_input(rows << log_n);
        let ntt = Ntt::<Goldilocks>::new(log_n);
        for &threads in &thread_counts {
            let legacy_ns = time_batch(&ntt, &pristine, threads, KernelMode::Legacy, iters);
            let fast_ns = time_batch(&ntt, &pristine, threads, KernelMode::Fast, iters);
            let cell = Cell {
                log_n,
                rows,
                threads,
                legacy_ns,
                fast_ns,
            };
            cells.push(cell);
            table.row(vec![
                format!("2^{log_n}"),
                rows.to_string(),
                threads.to_string(),
                fmt_ns(legacy_ns),
                fmt_ns(fast_ns),
                format!("{:.2}x", legacy_ns / fast_ns),
            ]);
        }
    }

    let bitrev_input = pseudo_random_input(1 << 20);
    let bitrev_ns = time_bitrev(&bitrev_input, iters);
    table.note(format!(
        "bit-reversal of 2^20 elements (table-driven): {}",
        fmt_ns(bitrev_ns)
    ));

    let headline = cells
        .iter()
        .find(|c| c.log_n == 20 && c.threads == 8)
        .copied();
    if let Some(c) = headline {
        table.note(format!(
            "headline (2^20, 8 threads): {:.2}x Shoup/six-step over legacy",
            c.legacy_ns / c.fast_ns
        ));
    }

    let json = render_json(&cells, headline.as_ref(), bitrev_ns, quick);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => table.note(format!("machine-readable results written to {JSON_PATH}")),
        Err(e) => table.note(format!("could not write {JSON_PATH}: {e}")),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        let (sizes, threads) = grid(true);
        assert_eq!(sizes, vec![12, 16, 20]);
        assert_eq!(threads, vec![1, 4, 8]);
        let (full, _) = grid(false);
        assert!(full.contains(&20) && full.contains(&22));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = [Cell {
            log_n: 20,
            rows: 4,
            threads: 8,
            legacy_ns: 2e6,
            fast_ns: 1e6,
        }];
        let s = render_json(&cells, Some(&cells[0]), 1e5, true);
        assert!(s.starts_with("{\n") && s.ends_with("}\n"));
        assert!(s.contains("\"speedup\": 2.000"));
        assert!(s.contains("\"headline\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn timing_helpers_return_positive() {
        let pristine = pseudo_random_input(1 << 8);
        let ntt = Ntt::<Goldilocks>::new(8);
        let t = time_batch(&ntt, &pristine, 2, KernelMode::Fast, 1);
        assert!(t > 0.0 && t.is_finite());
        assert!(time_bitrev(&pristine, 1) > 0.0);
    }
}
