//! # unintt-bench — the evaluation harness
//!
//! Regenerates every table and figure of the reconstructed UniNTT
//! evaluation (experiments E1–E9; the Criterion benches under `benches/`
//! cover the wall-clock experiment E10 and the real-implementation
//! microbenchmarks).
//!
//! Run the full suite:
//!
//! ```bash
//! cargo run -p unintt-bench --release --bin harness -- all
//! cargo run -p unintt-bench --release --bin harness -- e1 e4   # a subset
//! cargo run -p unintt-bench --release --bin harness -- all --quick
//! ```

#![warn(missing_docs)]

pub mod artifacts;
pub mod experiments;
pub mod host_bench;
pub mod perf_gate;
pub mod report;

pub use report::{fmt_bytes, fmt_ns, Table};
