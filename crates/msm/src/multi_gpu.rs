//! Multi-GPU MSM on the simulator.
//!
//! MSM parallelizes trivially across GPUs — the paper's starting
//! observation: split the `(scalar, point)` pairs into `G` contiguous
//! chunks, run Pippenger independently on each GPU, and combine the `G`
//! partial sums with one log-depth reduction. No all-to-all, no
//! permutation: this is why MSM scaled to multi-GPU years before NTT did.

use unintt_ff::Bn254Fr;
use unintt_gpu_sim::{FieldSpec, KernelProfile, Machine};

use crate::{msm_parallel, optimal_window_bits, pippenger_group_ops, G1Affine, G1Projective};

/// Field multiplications per Jacobian group operation (mixed adds and
/// doublings average out around this; the exact mix barely moves it).
const FIELD_MULS_PER_GROUP_OP: u64 = 12;

/// Wire size of an uncompressed G1 point (two 254-bit coordinates).
const G1_BYTES: usize = 64;

/// Runs an MSM distributed over the simulated machine's GPUs.
///
/// Functionally exact (bit-identical to [`msm`]); charges per-GPU Pippenger
/// kernels plus the final reduction to the simulated clock.
///
/// # Panics
///
/// Panics if lengths mismatch or there are fewer pairs than GPUs.
pub fn multi_gpu_msm(
    machine: &mut Machine,
    scalars: &[Bn254Fr],
    points: &[G1Affine],
) -> G1Projective {
    assert_eq!(scalars.len(), points.len(), "scalar/point length mismatch");
    let g = machine.num_devices();
    let n = scalars.len();
    assert!(
        n >= g,
        "need at least one pair per GPU ({n} pairs, {g} GPUs)"
    );

    // Contiguous chunking (last chunk takes the remainder).
    let chunk = n.div_ceil(g);
    let mut shards: Vec<(Vec<Bn254Fr>, Vec<G1Affine>, G1Projective)> = (0..g)
        .map(|dev| {
            let lo = dev * chunk;
            let hi = ((dev + 1) * chunk).min(n);
            (
                scalars[lo..hi].to_vec(),
                points[lo..hi].to_vec(),
                G1Projective::identity(),
            )
        })
        .collect();

    // Window-parallel Pippenger per device: nested scopes on the shared
    // worker pool (device tasks spawn window tasks) are supported and
    // bit-identical to the serial kernel.
    machine.parallel_phase(&mut shards, |ctx, _dev, (ks, ps, out)| {
        *out = msm_parallel(ks, ps);
        ctx.launch(&msm_kernel_profile(ks.len() as u64));
    });

    let partials: Vec<G1Projective> = shards.iter().map(|(_, _, p)| *p).collect();
    machine.reduce_to_root_unchecked(&partials, G1_BYTES, |a, b| *a + *b)
}

/// Cost profile of one GPU's Pippenger kernel over `n` pairs.
pub fn msm_kernel_profile(n: u64) -> KernelProfile {
    let c = optimal_window_bits(n as usize);
    let group_ops = pippenger_group_ops(n, c);
    let fq = FieldSpec::bn254_fr(); // Fq and Fr cost the same per multiply
    let mut p = KernelProfile::named("pippenger-msm");
    p.blocks = (n / 256).max(1);
    p.field_muls = group_ops * FIELD_MULS_PER_GROUP_OP;
    p.field_adds = group_ops * FIELD_MULS_PER_GROUP_OP / 2;
    // Each pair is read once (scalar + point); buckets live in
    // global memory and are touched once per pair per window.
    let windows = 254u64.div_ceil(c as u64);
    p.global_bytes_read = n * (32 + G1_BYTES as u64);
    p.global_bytes_written = windows * ((1u64 << c) - 1) * G1_BYTES as u64;
    p.coalescing_efficiency = 0.6; // bucket scatter is irregular by nature
    let _ = fq;
    p
}

/// Cost-only variant for large-size sweeps: charges what
/// [`multi_gpu_msm`] would without computing.
pub fn simulate_multi_gpu_msm(machine: &mut Machine, n: u64) {
    let g = machine.num_devices() as u64;
    let chunk = n.div_ceil(g);
    let mut dummy: Vec<()> = vec![(); g as usize];
    machine.parallel_phase(&mut dummy, |ctx, _, _| {
        ctx.launch(&msm_kernel_profile(chunk));
    });
    if g > 1 {
        let dummies: Vec<G1Projective> = vec![G1Projective::identity(); g as usize];
        machine.reduce_to_root_unchecked(&dummies, G1_BYTES, |a, _| *a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msm_naive;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::Field;
    use unintt_gpu_sim::presets;

    fn random_pairs(n: usize, seed: u64) -> (Vec<Bn254Fr>, Vec<G1Affine>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scalars = (0..n).map(|_| Bn254Fr::random(&mut rng)).collect();
        let points = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        (scalars, points)
    }

    #[test]
    fn multi_gpu_matches_naive() {
        for gpus in [1usize, 2, 4] {
            let (scalars, points) = random_pairs(50, gpus as u64);
            let mut machine = Machine::new(presets::a100_nvlink(gpus), FieldSpec::bn254_fr());
            let result = multi_gpu_msm(&mut machine, &scalars, &points);
            assert_eq!(result, msm_naive(&scalars, &points), "gpus={gpus}");
            assert!(machine.max_clock_ns() > 0.0);
        }
    }

    #[test]
    fn uneven_split_still_exact() {
        // 50 pairs over 8 GPUs: chunks of 7 with a short tail.
        let (scalars, points) = random_pairs(50, 7);
        let mut machine = Machine::new(presets::a100_nvlink(8), FieldSpec::bn254_fr());
        let result = multi_gpu_msm(&mut machine, &scalars, &points);
        assert_eq!(result, msm_naive(&scalars, &points));
    }

    #[test]
    fn msm_scales_with_gpus_in_simulated_time() {
        let n = 1u64 << 20;
        let mut m1 = Machine::new(presets::a100_nvlink(1), FieldSpec::bn254_fr());
        simulate_multi_gpu_msm(&mut m1, n);
        let mut m8 = Machine::new(presets::a100_nvlink(8), FieldSpec::bn254_fr());
        simulate_multi_gpu_msm(&mut m8, n);
        let speedup = m1.max_clock_ns() / m8.max_clock_ns();
        assert!(
            speedup > 4.0,
            "MSM should scale nearly linearly: got {speedup:.2}x"
        );
    }

    #[test]
    #[should_panic(expected = "at least one pair per GPU")]
    fn too_few_pairs_panics() {
        let (scalars, points) = random_pairs(3, 1);
        let mut machine = Machine::new(presets::a100_nvlink(8), FieldSpec::bn254_fr());
        let _ = multi_gpu_msm(&mut machine, &scalars, &points);
    }
}
