//! BN254 (alt_bn128) G1 curve arithmetic.
//!
//! The curve is `y² = x³ + 3` over [`Bn254Fq`], with group order equal to
//! the [`Bn254Fr`] modulus. Points are represented in affine form
//! ([`G1Affine`]) for storage and in Jacobian form ([`G1Projective`],
//! `x = X/Z²`, `y = Y/Z³`) for arithmetic. Formulas are the standard
//! `a = 0` short-Weierstrass ones (dbl-2009-l, add-2007-bl style).

use core::ops::{Add, AddAssign, Neg};

use rand::Rng;
use serde::{Deserialize, Serialize};
use unintt_ff::{Bn254Fq, Bn254Fr, Field, PrimeField, U256};

/// The curve coefficient `b = 3` (`a` is 0).
pub fn curve_b() -> Bn254Fq {
    Bn254Fq::from_u64(3)
}

/// A point on BN254 G1 in affine coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct G1Affine {
    /// x-coordinate (meaningless when `infinity` is set).
    pub x: Bn254Fq,
    /// y-coordinate (meaningless when `infinity` is set).
    pub y: Bn254Fq,
    /// Point-at-infinity flag.
    pub infinity: bool,
}

impl G1Affine {
    /// The group identity (point at infinity).
    pub fn identity() -> Self {
        Self {
            x: Bn254Fq::ZERO,
            y: Bn254Fq::ZERO,
            infinity: true,
        }
    }

    /// The standard generator `(1, 2)`.
    pub fn generator() -> Self {
        Self {
            x: Bn254Fq::ONE,
            y: Bn254Fq::from_u64(2),
            infinity: false,
        }
    }

    /// Checks the curve equation `y² = x³ + 3` (identity passes).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + curve_b()
    }

    /// Samples a random group element as `k·G` for uniform `k`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let k = Bn254Fr::random(rng);
        (G1Projective::generator() * k).to_affine()
    }

    /// Converts to Jacobian coordinates.
    pub fn to_projective(&self) -> G1Projective {
        if self.infinity {
            G1Projective::identity()
        } else {
            G1Projective {
                x: self.x,
                y: self.y,
                z: Bn254Fq::ONE,
            }
        }
    }
}

impl Neg for G1Affine {
    type Output = Self;
    fn neg(self) -> Self {
        if self.infinity {
            self
        } else {
            Self {
                x: self.x,
                y: -self.y,
                infinity: false,
            }
        }
    }
}

impl core::fmt::Display for G1Affine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.infinity {
            write!(f, "G1(∞)")
        } else {
            write!(f, "G1({}, {})", self.x, self.y)
        }
    }
}

/// A point on BN254 G1 in Jacobian coordinates (`x = X/Z²`, `y = Y/Z³`;
/// `Z = 0` encodes the identity).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct G1Projective {
    /// Jacobian X.
    pub x: Bn254Fq,
    /// Jacobian Y.
    pub y: Bn254Fq,
    /// Jacobian Z.
    pub z: Bn254Fq,
}

impl G1Projective {
    /// The group identity.
    pub fn identity() -> Self {
        Self {
            x: Bn254Fq::ONE,
            y: Bn254Fq::ONE,
            z: Bn254Fq::ZERO,
        }
    }

    /// The standard generator.
    pub fn generator() -> Self {
        G1Affine::generator().to_projective()
    }

    /// True if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (`a = 0` Jacobian formulas).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let mut d = (self.x + b).square() - a - c;
        d = d.double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Adds an affine point (mixed addition — the hot path of Pippenger's
    /// bucket accumulation).
    pub fn add_affine(&self, rhs: &G1Affine) -> Self {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return rhs.to_projective();
        }
        // Z2 = 1 specialization of the general addition below.
        let z1z1 = self.z.square();
        let u2 = rhs.x * z1z1;
        let s2 = rhs.y * z1z1 * self.z;
        if u2 == self.x {
            return if s2 == self.y {
                self.double()
            } else {
                Self::identity()
            };
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication by a [`Bn254Fr`] scalar (double-and-add).
    pub fn mul_scalar(&self, k: &Bn254Fr) -> Self {
        self.mul_u256(&k.to_canonical_u256())
    }

    /// Scalar multiplication by a raw 256-bit integer.
    pub fn mul_u256(&self, k: &U256) -> Self {
        let mut acc = Self::identity();
        let bits = k.bits();
        for i in (0..bits).rev() {
            acc = acc.double();
            if k.bit(i as usize) {
                acc += *self;
            }
        }
        acc
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity();
        }
        let z_inv = self.z.inverse().expect("nonzero z");
        let z_inv2 = z_inv.square();
        G1Affine {
            x: self.x * z_inv2,
            y: self.y * z_inv2 * z_inv,
            infinity: false,
        }
    }
}

impl Default for G1Projective {
    fn default() -> Self {
        Self::identity()
    }
}

impl PartialEq for G1Projective {
    /// Equality in the group (coordinate-system independent).
    fn eq(&self, other: &Self) -> bool {
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            _ => {
                // X1·Z2² == X2·Z1² and Y1·Z2³ == Y2·Z1³
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}
impl Eq for G1Projective {}

impl Add for G1Projective {
    type Output = Self;

    /// General Jacobian addition.
    fn add(self, rhs: Self) -> Self {
        if self.is_identity() {
            return rhs;
        }
        if rhs.is_identity() {
            return self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * z2z2 * rhs.z;
        let s2 = rhs.y * z1z1 * self.z;
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Self::identity()
            };
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

impl AddAssign for G1Projective {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Neg for G1Projective {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }
}

impl core::ops::Mul<Bn254Fr> for G1Projective {
    type Output = Self;
    fn mul(self, k: Bn254Fr) -> Self {
        self.mul_scalar(&k)
    }
}

impl From<G1Affine> for G1Projective {
    fn from(p: G1Affine) -> Self {
        p.to_projective()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn generator_is_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
        assert!(G1Affine::identity().is_on_curve());
    }

    #[test]
    fn double_equals_add_self() {
        let g = G1Projective::generator();
        assert_eq!(g.double(), g + g);
        let g4 = g.double().double();
        assert_eq!(g4, g + g + g + g);
        assert!(g4.to_affine().is_on_curve());
    }

    #[test]
    fn identity_laws() {
        let g = G1Projective::generator();
        let id = G1Projective::identity();
        assert_eq!(g + id, g);
        assert_eq!(id + g, g);
        assert_eq!(id + id, id);
        assert_eq!(g + (-g), id);
        assert_eq!(id.double(), id);
    }

    #[test]
    fn add_is_commutative_and_associative() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let a = G1Affine::random(&mut rng).to_projective();
            let b = G1Affine::random(&mut rng).to_projective();
            let c = G1Affine::random(&mut rng).to_projective();
            assert_eq!(a + b, b + a);
            assert_eq!((a + b) + c, a + (b + c));
        }
    }

    #[test]
    fn mixed_add_matches_general() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let a = G1Affine::random(&mut rng).to_projective();
            let b = G1Affine::random(&mut rng);
            assert_eq!(a.add_affine(&b), a + b.to_projective());
        }
        // Edge cases: adding identity, adding the same point, adding the
        // negation.
        let g = G1Projective::generator();
        assert_eq!(g.add_affine(&G1Affine::identity()), g);
        assert_eq!(g.add_affine(&g.to_affine()), g.double());
        assert_eq!(g.add_affine(&(-g.to_affine())), G1Projective::identity());
        assert_eq!(G1Projective::identity().add_affine(&g.to_affine()), g);
    }

    #[test]
    fn scalar_mul_small_values() {
        let g = G1Projective::generator();
        assert_eq!(g.mul_scalar(&Bn254Fr::ZERO), G1Projective::identity());
        assert_eq!(g.mul_scalar(&Bn254Fr::ONE), g);
        assert_eq!(g.mul_scalar(&Bn254Fr::from_u64(2)), g.double());
        assert_eq!(g.mul_scalar(&Bn254Fr::from_u64(5)), g + g + g + g + g);
    }

    #[test]
    fn scalar_mul_distributes() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = G1Projective::generator();
        for _ in 0..5 {
            let a = Bn254Fr::random(&mut rng);
            let b = Bn254Fr::random(&mut rng);
            assert_eq!(g.mul_scalar(&(a + b)), g.mul_scalar(&a) + g.mul_scalar(&b));
        }
    }

    #[test]
    fn group_order_annihilates() {
        // r·G = identity: the group order is the Fr modulus.
        let g = G1Projective::generator();
        let r = Bn254Fr::MODULUS;
        assert_eq!(g.mul_u256(&r), G1Projective::identity());
        // (r-1)·G = -G
        let r_minus_1 = r.sbb(&U256::ONE).0;
        assert_eq!(g.mul_u256(&r_minus_1), -g);
    }

    #[test]
    fn affine_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let p = G1Affine::random(&mut rng);
            assert!(p.is_on_curve());
            assert_eq!(p.to_projective().to_affine(), p);
        }
        assert_eq!(G1Projective::identity().to_affine(), G1Affine::identity());
    }

    #[test]
    fn projective_eq_ignores_scaling() {
        let g = G1Projective::generator();
        let two = Bn254Fq::from_u64(2);
        let scaled = G1Projective {
            x: g.x * two.square(),
            y: g.y * two.square() * two,
            z: g.z * two,
        };
        assert_eq!(g, scaled);
    }
}
