//! Pippenger's bucket method for multi-scalar multiplication.
//!
//! Computes `Σᵢ kᵢ·Pᵢ` in `O(n·b / log n)` group operations by processing
//! the scalars in `c`-bit windows: within a window, points sharing a digit
//! land in the same *bucket*; the bucket sums are then combined with the
//! running-sum trick, and windows are stitched together with `c` doublings
//! each. This is the algorithm every GPU MSM library (and the paper's MSM
//! baseline) builds on.

use unintt_ff::{Bn254Fr, PrimeField, U256};

use crate::{G1Affine, G1Projective};

/// Picks the window size `c` that roughly minimizes total group operations
/// for an `n`-point MSM (the classic `c ≈ ln n` heuristic, clamped).
pub fn optimal_window_bits(n: usize) -> u32 {
    match n {
        0..=1 => 1,
        _ => (usize::BITS - n.leading_zeros())
            .saturating_sub(2)
            .clamp(2, 16),
    }
}

/// Extracts the `c`-bit digit starting at bit `lo` of a 256-bit scalar.
fn digit(k: &U256, lo: u32, c: u32) -> usize {
    let mut d = 0usize;
    for b in 0..c {
        if k.bit((lo + b) as usize) {
            d |= 1 << b;
        }
    }
    d
}

/// Bucket accumulation + running-sum for one window: `Σ d·P` over pairs
/// whose window-`w` digit is `d`.
fn window_sum(ks: &[U256], points: &[G1Affine], w: u32, c: u32) -> G1Projective {
    let num_buckets = (1usize << c) - 1;
    let mut buckets = vec![G1Projective::identity(); num_buckets];
    let lo = w * c;
    for (k, p) in ks.iter().zip(points) {
        let d = digit(k, lo, c);
        if d != 0 {
            buckets[d - 1] = buckets[d - 1].add_affine(p);
        }
    }
    // Running-sum trick: Σ d·bucket[d] with 2·(2^c−1) additions.
    let mut running = G1Projective::identity();
    let mut sum = G1Projective::identity();
    for b in buckets.iter().rev() {
        running += *b;
        sum += running;
    }
    sum
}

/// MSM by Pippenger's algorithm with an explicit window size.
///
/// # Panics
///
/// Panics if `scalars` and `points` have different lengths or `c == 0`.
pub fn msm_with_window(scalars: &[Bn254Fr], points: &[G1Affine], c: u32) -> G1Projective {
    assert_eq!(scalars.len(), points.len(), "scalar/point length mismatch");
    assert!(c > 0, "window size must be positive");
    if scalars.is_empty() {
        return G1Projective::identity();
    }

    let ks: Vec<U256> = scalars.iter().map(|s| s.to_canonical_u256()).collect();
    let scalar_bits = Bn254Fr::MODULUS_BITS;
    let windows = scalar_bits.div_ceil(c);

    let mut acc = G1Projective::identity();
    for w in (0..windows).rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        acc += window_sum(&ks, points, w, c);
    }
    acc
}

/// MSM with the heuristic window size.
pub fn msm(scalars: &[Bn254Fr], points: &[G1Affine]) -> G1Projective {
    msm_with_window(scalars, points, optimal_window_bits(scalars.len()))
}

/// Window-parallel Pippenger MSM: every window's bucket phase is an
/// independent pass over the pairs, so the window sums compute as tasks on
/// the process-wide worker pool ([`unintt_exec::Executor::global`]); the
/// serial stitch (`c` doublings between windows) is unchanged, so the
/// result is bit-identical to [`msm_with_window`].
///
/// # Panics
///
/// Panics if `scalars` and `points` have different lengths or `c == 0`.
pub fn msm_parallel_with_window(scalars: &[Bn254Fr], points: &[G1Affine], c: u32) -> G1Projective {
    assert_eq!(scalars.len(), points.len(), "scalar/point length mismatch");
    assert!(c > 0, "window size must be positive");
    if scalars.is_empty() {
        return G1Projective::identity();
    }

    let ks: Vec<U256> = scalars.iter().map(|s| s.to_canonical_u256()).collect();
    let windows = Bn254Fr::MODULUS_BITS.div_ceil(c);
    let mut sums = vec![G1Projective::identity(); windows as usize];

    unintt_exec::Executor::global().scope(|scope| {
        let ks = &ks;
        for (w, out) in sums.iter_mut().enumerate() {
            scope.spawn(move || {
                *out = window_sum(ks, points, w as u32, c);
            });
        }
    });

    let mut acc = G1Projective::identity();
    for w in (0..windows as usize).rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        acc += sums[w];
    }
    acc
}

/// Window-parallel MSM with the heuristic window size.
pub fn msm_parallel(scalars: &[Bn254Fr], points: &[G1Affine]) -> G1Projective {
    msm_parallel_with_window(scalars, points, optimal_window_bits(scalars.len()))
}

/// Decomposes a scalar into signed `c`-bit digits in
/// `[−2^{c−1}, 2^{c−1}]`: `Σ dᵢ·2^{c·i}` reconstructs the scalar exactly
/// (one extra window absorbs the final carry).
fn signed_digits(k: &U256, c: u32) -> Vec<i64> {
    // MODULUS_BITS + 1: one extra bit of headroom absorbs the final carry
    // (often inside the same window count as the unsigned variant).
    let windows = (Bn254Fr::MODULUS_BITS + 1).div_ceil(c);
    let half = 1i64 << (c - 1);
    let full = 1i64 << c;
    let mut out = Vec::with_capacity(windows as usize);
    let mut carry = 0i64;
    for w in 0..windows {
        let raw = digit(k, w * c, c) as i64 + carry;
        if raw >= half {
            out.push(raw - full);
            carry = 1;
        } else {
            out.push(raw);
            carry = 0;
        }
    }
    debug_assert_eq!(carry, 0, "top window must absorb the carry");
    out
}

/// MSM by Pippenger's algorithm with **signed digits**: digits lie in
/// `[−2^{c−1}, 2^{c−1}]`, so only `2^{c−1}` buckets are needed per window
/// (negative digits contribute the negated point — free in affine
/// coordinates). Halving the bucket count roughly halves the running-sum
/// work, the classic GPU-MSM refinement.
///
/// # Panics
///
/// Panics if `scalars` and `points` have different lengths or `c < 2`.
pub fn msm_signed_with_window(scalars: &[Bn254Fr], points: &[G1Affine], c: u32) -> G1Projective {
    assert_eq!(scalars.len(), points.len(), "scalar/point length mismatch");
    assert!(c >= 2, "signed windows need at least 2 bits");
    if scalars.is_empty() {
        return G1Projective::identity();
    }

    let digit_rows: Vec<Vec<i64>> = scalars
        .iter()
        .map(|s| signed_digits(&s.to_canonical_u256(), c))
        .collect();
    let windows = digit_rows[0].len();
    let num_buckets = 1usize << (c - 1); // digits 1 ..= 2^{c-1}

    let mut acc = G1Projective::identity();
    for w in (0..windows).rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        let mut buckets = vec![G1Projective::identity(); num_buckets];
        for (row, p) in digit_rows.iter().zip(points) {
            let d = row[w];
            match d.cmp(&0) {
                core::cmp::Ordering::Greater => {
                    buckets[d as usize - 1] = buckets[d as usize - 1].add_affine(p);
                }
                core::cmp::Ordering::Less => {
                    let neg = -*p;
                    buckets[(-d) as usize - 1] = buckets[(-d) as usize - 1].add_affine(&neg);
                }
                core::cmp::Ordering::Equal => {}
            }
        }
        let mut running = G1Projective::identity();
        let mut window_sum = G1Projective::identity();
        for b in buckets.iter().rev() {
            running += *b;
            window_sum += running;
        }
        acc += window_sum;
    }
    acc
}

/// Signed-digit MSM with the heuristic window size.
pub fn msm_signed(scalars: &[Bn254Fr], points: &[G1Affine]) -> G1Projective {
    msm_signed_with_window(scalars, points, optimal_window_bits(scalars.len()).max(2))
}

/// Estimated group-operation count of the signed-digit variant: half the
/// buckets of [`pippenger_group_ops`] per window, one extra window.
pub fn pippenger_signed_group_ops(n: u64, c: u32) -> u64 {
    let windows = (Bn254Fr::MODULUS_BITS as u64 + 1).div_ceil(c as u64);
    let buckets = 1u64 << (c - 1);
    windows * (n + 2 * buckets + c as u64)
}

/// Reference MSM: `Σ kᵢ·Pᵢ` by independent double-and-add (O(n·b) ops).
pub fn msm_naive(scalars: &[Bn254Fr], points: &[G1Affine]) -> G1Projective {
    assert_eq!(scalars.len(), points.len(), "scalar/point length mismatch");
    scalars
        .iter()
        .zip(points)
        .fold(G1Projective::identity(), |acc, (k, p)| {
            acc + p.to_projective().mul_scalar(k)
        })
}

/// Estimated group-operation count of an `n`-point Pippenger MSM with
/// window `c` (used by the simulator cost profiles).
pub fn pippenger_group_ops(n: u64, c: u32) -> u64 {
    let windows = (Bn254Fr::MODULUS_BITS as u64).div_ceil(c as u64);
    let buckets = (1u64 << c) - 1;
    // per window: n bucket adds + 2·buckets running-sum adds; plus c
    // doublings per window to stitch.
    windows * (n + 2 * buckets + c as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::Field;

    fn random_pairs(n: usize, seed: u64) -> (Vec<Bn254Fr>, Vec<G1Affine>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scalars = (0..n).map(|_| Bn254Fr::random(&mut rng)).collect();
        let points = (0..n).map(|_| G1Affine::random(&mut rng)).collect();
        (scalars, points)
    }

    #[test]
    fn msm_matches_naive() {
        for n in [1usize, 2, 7, 33] {
            let (scalars, points) = random_pairs(n, n as u64);
            assert_eq!(
                msm(&scalars, &points),
                msm_naive(&scalars, &points),
                "n={n}"
            );
        }
    }

    #[test]
    fn msm_all_window_sizes_agree() {
        let (scalars, points) = random_pairs(16, 9);
        let expected = msm_naive(&scalars, &points);
        for c in [1u32, 3, 4, 8, 13] {
            assert_eq!(msm_with_window(&scalars, &points, c), expected, "c={c}");
        }
    }

    #[test]
    fn msm_empty_is_identity() {
        assert_eq!(msm(&[], &[]), G1Projective::identity());
        assert_eq!(msm_parallel(&[], &[]), G1Projective::identity());
    }

    #[test]
    fn parallel_msm_is_bit_identical_to_serial() {
        for n in [1usize, 2, 7, 33, 100] {
            let (scalars, points) = random_pairs(n, 900 + n as u64);
            assert_eq!(
                msm_parallel(&scalars, &points),
                msm(&scalars, &points),
                "n={n}"
            );
        }
        let (scalars, points) = random_pairs(24, 901);
        for c in [1u32, 4, 9, 13] {
            assert_eq!(
                msm_parallel_with_window(&scalars, &points, c),
                msm_with_window(&scalars, &points, c),
                "c={c}"
            );
        }
    }

    #[test]
    fn msm_with_zero_scalars() {
        let (_, points) = random_pairs(5, 11);
        let zeros = vec![Bn254Fr::ZERO; 5];
        assert_eq!(msm(&zeros, &points), G1Projective::identity());
    }

    #[test]
    fn msm_with_identity_points() {
        let (scalars, _) = random_pairs(5, 12);
        let ids = vec![G1Affine::identity(); 5];
        assert_eq!(msm(&scalars, &ids), G1Projective::identity());
    }

    #[test]
    fn msm_single_pair_is_scalar_mul() {
        let (scalars, points) = random_pairs(1, 13);
        assert_eq!(
            msm(&scalars, &points),
            points[0].to_projective().mul_scalar(&scalars[0])
        );
    }

    #[test]
    fn digits_reassemble_scalar() {
        let mut rng = StdRng::seed_from_u64(14);
        let k = Bn254Fr::random(&mut rng).to_canonical_u256();
        for c in [4u32, 7, 16] {
            let windows = 254u32.div_ceil(c);
            let mut acc = U256::ZERO;
            for w in (0..windows).rev() {
                for _ in 0..c {
                    acc = acc.adc(&acc).0;
                }
                acc = acc.adc(&U256::from_u64(digit(&k, w * c, c) as u64)).0;
            }
            assert_eq!(acc, k, "c={c}");
        }
    }

    #[test]
    fn signed_digits_reconstruct_scalar() {
        let mut rng = StdRng::seed_from_u64(21);
        for c in [2u32, 4, 8, 13] {
            for _ in 0..20 {
                let k = Bn254Fr::random(&mut rng).to_canonical_u256();
                let digits = signed_digits(&k, c);
                // Reconstruct Σ dᵢ·2^{c·i} high-to-low with doublings,
                // tracking positive and negative parts separately.
                let mut neg = U256::ZERO;
                let mut pos_acc = U256::ZERO;
                for &d in digits.iter().rev() {
                    for _ in 0..c {
                        pos_acc = pos_acc.adc(&pos_acc).0;
                        neg = neg.adc(&neg).0;
                    }
                    if d >= 0 {
                        pos_acc = pos_acc.adc(&U256::from_u64(d as u64)).0;
                    } else {
                        neg = neg.adc(&U256::from_u64((-d) as u64)).0;
                    }
                }
                let (diff, borrow) = pos_acc.sbb(&neg);
                assert!(!borrow, "c={c}");
                assert_eq!(diff, k, "c={c}");
            }
        }
    }

    #[test]
    fn signed_msm_matches_unsigned() {
        for n in [1usize, 3, 17, 64] {
            let (scalars, points) = random_pairs(n, 500 + n as u64);
            assert_eq!(
                msm_signed(&scalars, &points),
                msm(&scalars, &points),
                "n={n}"
            );
        }
    }

    #[test]
    fn signed_msm_all_windows_agree() {
        let (scalars, points) = random_pairs(10, 77);
        let expected = msm_naive(&scalars, &points);
        for c in [2u32, 5, 9, 15] {
            assert_eq!(
                msm_signed_with_window(&scalars, &points, c),
                expected,
                "c={c}"
            );
        }
    }

    #[test]
    fn signed_variant_wins_at_equal_bucket_memory() {
        // Signed digits halve the buckets per window, so at the same
        // bucket budget the window can be one bit wider — fewer windows,
        // fewer passes over the points.
        let n = 1u64 << 20;
        let c = optimal_window_bits(n as usize);
        assert!(
            pippenger_signed_group_ops(n, c) < pippenger_group_ops(n, c),
            "signed should beat unsigned at the same window: {} vs {}",
            pippenger_signed_group_ops(n, c),
            pippenger_group_ops(n, c)
        );
    }

    #[test]
    fn optimal_window_grows_with_n() {
        assert!(optimal_window_bits(1) >= 1);
        assert!(optimal_window_bits(1 << 20) > optimal_window_bits(1 << 8));
        assert!(optimal_window_bits(usize::MAX) <= 16);
    }

    #[test]
    fn group_ops_estimate_decreases_with_good_window() {
        // For 2^16 points, a mid-size window beats both extremes.
        let n = 1u64 << 16;
        let tiny = pippenger_group_ops(n, 1);
        let good = pippenger_group_ops(n, optimal_window_bits(n as usize));
        let huge = pippenger_group_ops(n, 16);
        assert!(good < tiny);
        assert!(good <= huge);
    }
}
