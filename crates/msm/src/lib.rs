//! # unintt-msm — multi-scalar multiplication substrate
//!
//! The MSM half of ZKP proof generation (the half the paper notes was
//! already multi-GPU friendly):
//!
//! * [`G1Affine`] / [`G1Projective`] — BN254 G1 curve arithmetic
//!   (`y² = x³ + 3` over Fq, group order = Fr modulus);
//! * [`msm`] / [`msm_with_window`] — Pippenger's bucket method, plus the
//!   [`msm_naive`] oracle;
//! * [`multi_gpu_msm`] — embarrassingly parallel MSM on the
//!   [`unintt_gpu_sim::Machine`] simulator, with cost profiles.
//!
//! ```
//! use unintt_ff::{Bn254Fr, Field, PrimeField};
//! use unintt_msm::{msm, G1Affine, G1Projective};
//!
//! // 3·G + 4·G = 7·G
//! let g = G1Affine::generator();
//! let result = msm(
//!     &[Bn254Fr::from_u64(3), Bn254Fr::from_u64(4)],
//!     &[g, g],
//! );
//! assert_eq!(result, G1Projective::generator().mul_scalar(&Bn254Fr::from_u64(7)));
//! ```

#![warn(missing_docs)]

mod curve;
mod multi_gpu;
mod pippenger;

pub use curve::{curve_b, G1Affine, G1Projective};
pub use multi_gpu::{msm_kernel_profile, multi_gpu_msm, simulate_multi_gpu_msm};
pub use pippenger::{
    msm, msm_naive, msm_parallel, msm_parallel_with_window, msm_signed, msm_signed_with_window,
    msm_with_window, optimal_window_bits, pippenger_group_ops, pippenger_signed_group_ops,
};
