//! The quadratic extension of Goldilocks, `F_{p²} = F_p[X]/(X² − 7)`.
//!
//! A 64-bit base field gives FRI and DEEP-style protocols only ~64 bits of
//! challenge entropy — not enough. Production systems (Plonky2, Miden)
//! sample their challenges from a degree-2 extension instead. `X² − 7` is
//! irreducible over Goldilocks because 7 is a quadratic non-residue
//! (it is the multiplicative generator of a group of even order, verified
//! in tests).
//!
//! Elements are `a + b·φ` with `φ² = 7`. The extension is a [`Field`] in
//! its own right, so generic code (polynomial evaluation, batch inversion)
//! works unchanged over it.

use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Field, Goldilocks, PrimeField};

/// The non-residue `W = 7` defining the extension `X² − W`.
pub fn extension_w() -> Goldilocks {
    Goldilocks::from_u64(7)
}

/// An element `a + b·φ` of `F_{p²}` with `φ² = 7`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GoldilocksExt2 {
    /// The base-field coefficient.
    pub a: Goldilocks,
    /// The φ coefficient.
    pub b: Goldilocks,
}

impl GoldilocksExt2 {
    /// Builds an element from its two coefficients.
    pub const fn new(a: Goldilocks, b: Goldilocks) -> Self {
        Self { a, b }
    }

    /// Embeds a base-field element.
    pub fn from_base(a: Goldilocks) -> Self {
        Self {
            a,
            b: Goldilocks::ZERO,
        }
    }

    /// The extension generator `φ`.
    pub fn phi() -> Self {
        Self {
            a: Goldilocks::ZERO,
            b: Goldilocks::ONE,
        }
    }

    /// True if the element lies in the base field.
    pub fn is_in_base_field(&self) -> bool {
        self.b.is_zero()
    }

    /// The Frobenius conjugate `a − b·φ` (the image under `x ↦ x^p`).
    pub fn conjugate(&self) -> Self {
        Self {
            a: self.a,
            b: -self.b,
        }
    }

    /// The field norm `N(x) = x·x̄ = a² − 7b²`, an element of the base
    /// field.
    pub fn norm(&self) -> Goldilocks {
        self.a.square() - extension_w() * self.b.square()
    }
}

impl Add for GoldilocksExt2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            a: self.a + rhs.a,
            b: self.b + rhs.b,
        }
    }
}
impl Sub for GoldilocksExt2 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            a: self.a - rhs.a,
            b: self.b - rhs.b,
        }
    }
}
impl Mul for GoldilocksExt2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        // (a + bφ)(c + dφ) = ac + 7bd + (ad + bc)φ
        let ac = self.a * rhs.a;
        let bd = self.b * rhs.b;
        let ad = self.a * rhs.b;
        let bc = self.b * rhs.a;
        Self {
            a: ac + extension_w() * bd,
            b: ad + bc,
        }
    }
}
impl Neg for GoldilocksExt2 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            a: -self.a,
            b: -self.b,
        }
    }
}
impl AddAssign for GoldilocksExt2 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for GoldilocksExt2 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for GoldilocksExt2 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl Sum for GoldilocksExt2 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |x, y| x + y)
    }
}
impl Product for GoldilocksExt2 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |x, y| x * y)
    }
}

impl Mul<Goldilocks> for GoldilocksExt2 {
    type Output = Self;
    /// Scalar multiplication by a base-field element (2 base muls instead
    /// of a full extension product).
    #[inline]
    fn mul(self, rhs: Goldilocks) -> Self {
        Self {
            a: self.a * rhs,
            b: self.b * rhs,
        }
    }
}

impl core::fmt::Display for GoldilocksExt2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} + {}·φ", self.a, self.b)
    }
}

impl Field for GoldilocksExt2 {
    const ZERO: Self = Self::new(Goldilocks::new_unchecked(0), Goldilocks::new_unchecked(0));
    const ONE: Self = Self::new(Goldilocks::new_unchecked(1), Goldilocks::new_unchecked(0));
    const TWO: Self = Self::new(Goldilocks::new_unchecked(2), Goldilocks::new_unchecked(0));

    fn inverse(&self) -> Option<Self> {
        // 1/(a + bφ) = (a − bφ) / (a² − 7b²).
        let norm_inv = self.norm().inverse()?;
        Some(Self {
            a: self.a * norm_inv,
            b: -self.b * norm_inv,
        })
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            a: Goldilocks::random(rng),
            b: Goldilocks::random(rng),
        }
    }
}

impl From<Goldilocks> for GoldilocksExt2 {
    fn from(a: Goldilocks) -> Self {
        Self::from_base(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GOLDILOCKS_MODULUS;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn w_is_a_nonresidue_so_the_extension_is_a_field() {
        // 7^((p-1)/2) == -1 means X² − 7 is irreducible.
        let e = (GOLDILOCKS_MODULUS - 1) / 2;
        assert_eq!(extension_w().pow(e), -Goldilocks::ONE);
    }

    #[test]
    fn phi_squared_is_w() {
        let phi = GoldilocksExt2::phi();
        assert_eq!(phi * phi, GoldilocksExt2::from_base(extension_w()));
    }

    #[test]
    fn field_laws_random() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = GoldilocksExt2::random(&mut rng);
            let y = GoldilocksExt2::random(&mut rng);
            let z = GoldilocksExt2::random(&mut rng);
            assert_eq!(x + y, y + x);
            assert_eq!(x * y, y * x);
            assert_eq!((x + y) + z, x + (y + z));
            assert_eq!((x * y) * z, x * (y * z));
            assert_eq!(x * (y + z), x * y + x * z);
            assert_eq!(x + (-x), GoldilocksExt2::ZERO);
            if !x.is_zero() {
                assert_eq!(x * x.inverse().unwrap(), GoldilocksExt2::ONE);
            }
        }
        assert!(GoldilocksExt2::ZERO.inverse().is_none());
    }

    #[test]
    fn embedding_is_a_homomorphism() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x = Goldilocks::random(&mut rng);
            let y = Goldilocks::random(&mut rng);
            let ex = GoldilocksExt2::from_base(x);
            let ey = GoldilocksExt2::from_base(y);
            assert_eq!(ex + ey, GoldilocksExt2::from_base(x + y));
            assert_eq!(ex * ey, GoldilocksExt2::from_base(x * y));
            assert!(ex.is_in_base_field());
        }
    }

    #[test]
    fn norm_is_multiplicative() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let x = GoldilocksExt2::random(&mut rng);
            let y = GoldilocksExt2::random(&mut rng);
            assert_eq!((x * y).norm(), x.norm() * y.norm());
        }
    }

    #[test]
    fn conjugation_is_an_automorphism_fixing_the_base() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let x = GoldilocksExt2::random(&mut rng);
            let y = GoldilocksExt2::random(&mut rng);
            assert_eq!((x * y).conjugate(), x.conjugate() * y.conjugate());
            assert_eq!((x + y).conjugate(), x.conjugate() + y.conjugate());
            assert_eq!(x.conjugate().conjugate(), x);
        }
        let base = GoldilocksExt2::from_base(Goldilocks::from_u64(42));
        assert_eq!(base.conjugate(), base);
    }

    #[test]
    fn frobenius_matches_pth_power() {
        // x^p must equal the conjugate (the defining Frobenius property).
        let mut rng = StdRng::seed_from_u64(5);
        let x = GoldilocksExt2::random(&mut rng);
        // x^p via square-and-multiply over the 64-bit exponent p.
        let mut acc = GoldilocksExt2::ONE;
        let p = GOLDILOCKS_MODULUS;
        for i in (0..64).rev() {
            acc = acc.square();
            if (p >> i) & 1 == 1 {
                acc *= x;
            }
        }
        assert_eq!(acc, x.conjugate());
    }

    #[test]
    fn base_scalar_mul_matches_embedded_mul() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let x = GoldilocksExt2::random(&mut rng);
            let s = Goldilocks::random(&mut rng);
            assert_eq!(x * s, x * GoldilocksExt2::from_base(s));
        }
    }

    #[test]
    fn pow_and_halve() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = GoldilocksExt2::random(&mut rng);
        assert_eq!(x.pow(5), x * x * x * x * x);
        assert_eq!(x.double().halve(), x);
    }
}
