//! Lane-packed field kernels: word views over element slices and the
//! explicit AVX2 (`std::arch`) butterfly primitives.
//!
//! The portable packed layer lives on [`crate::ShoupField`] as
//! const-generic `[F; LANES]` operations; this module supplies what that
//! layer cannot express generically:
//!
//! * **word views** — `#[repr(transparent)]` lets a `&mut [Goldilocks]`
//!   be reinterpreted as `&mut [u64]` (and `&mut [BabyBear]` as
//!   `&mut [u32]`) so vector kernels can load whole registers straight
//!   from the transform buffer;
//! * **AVX2 primitives** (x86_64 only) — 4×`u64` Goldilocks and 8×`u32`
//!   BabyBear modular add/sub/mul on `__m256i`, written as
//!   `#[inline(always)]` helpers that specialize correctly when inlined
//!   into a `#[target_feature(enable = "avx2")]` kernel loop. Callers
//!   perform runtime detection (`is_x86_feature_detected!("avx2")`); the
//!   portable lane layer is the bit-identical fallback.
//!
//! Every primitive computes the exact residue and returns **canonical**
//! lanes, so outputs agree bit-for-bit with the scalar kernels once those
//! canonicalize (canonical representations are unique).

use crate::{BabyBear, Goldilocks};

/// Reinterprets a Goldilocks slice as its raw canonical `u64` words.
///
/// Sound because `Goldilocks` is `#[repr(transparent)]` over `u64`.
/// Writing a non-canonical word (≥ p) through the view is a logic error
/// (later arithmetic would be wrong) but not UB.
#[inline]
pub fn gl_words_mut(values: &mut [Goldilocks]) -> &mut [u64] {
    // SAFETY: Goldilocks is repr(transparent) over u64.
    unsafe { core::slice::from_raw_parts_mut(values.as_mut_ptr().cast::<u64>(), values.len()) }
}

/// Reinterprets a Goldilocks slice as its raw canonical `u64` words.
#[inline]
pub fn gl_words(values: &[Goldilocks]) -> &[u64] {
    // SAFETY: Goldilocks is repr(transparent) over u64.
    unsafe { core::slice::from_raw_parts(values.as_ptr().cast::<u64>(), values.len()) }
}

/// Reinterprets a BabyBear slice as its raw Montgomery `u32` words.
///
/// Sound because `BabyBear` is `#[repr(transparent)]` over `u32`. The
/// words are Montgomery-form lanes, not canonical values.
#[inline]
pub fn bb_words_mut(values: &mut [BabyBear]) -> &mut [u32] {
    // SAFETY: BabyBear is repr(transparent) over u32.
    unsafe { core::slice::from_raw_parts_mut(values.as_mut_ptr().cast::<u32>(), values.len()) }
}

/// Reinterprets a BabyBear slice as its raw Montgomery `u32` words.
#[inline]
pub fn bb_words(values: &[BabyBear]) -> &[u32] {
    // SAFETY: BabyBear is repr(transparent) over u32.
    unsafe { core::slice::from_raw_parts(values.as_ptr().cast::<u32>(), values.len()) }
}

/// The raw word of one Goldilocks element (canonical).
#[inline]
pub fn gl_word(x: Goldilocks) -> u64 {
    x.raw()
}

/// The raw Montgomery word of one BabyBear element.
#[inline]
pub fn bb_word(x: BabyBear) -> u32 {
    x.raw()
}

/// AVX2 lane primitives. All functions are `#[inline(always)]` and must
/// be called (transitively) from a `#[target_feature(enable = "avx2")]`
/// context on a CPU with AVX2 — they inline into the caller and inherit
/// its feature set, which is what makes the runtime-dispatch pattern
/// work without per-butterfly call overhead.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use core::arch::x86_64::*;

    use crate::{BABYBEAR_MODULUS, GOLDILOCKS_MODULUS};

    /// `2^32 − 1`: the Goldilocks reduction constant (`2^64 ≡ ε mod p`).
    const EPSILON: i64 = 0xffff_ffff;

    /// Unsigned 64-bit per-lane `a > b` mask (AVX2 only has the signed
    /// compare, so both operands get their sign bits flipped first).
    ///
    /// # Safety
    ///
    /// Requires AVX2 in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn cmpgt_epu64(a: __m256i, b: __m256i) -> __m256i {
        let sign = _mm256_set1_epi64x(i64::MIN);
        _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign), _mm256_xor_si256(b, sign))
    }

    /// Goldilocks lane add: canonical in, canonical out, 4×`u64`.
    ///
    /// A 64-bit wrap contributes `2^64 ≡ ε`, after which one conditional
    /// subtraction of `p` restores the canonical range (the wrap-adjusted
    /// sum is provably `< p` already, so the two fixups never stack).
    ///
    /// # Safety
    ///
    /// Requires AVX2 in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn gl_add(a: __m256i, b: __m256i) -> __m256i {
        let p = _mm256_set1_epi64x(GOLDILOCKS_MODULUS as i64);
        let eps = _mm256_set1_epi64x(EPSILON);
        let s = _mm256_add_epi64(a, b);
        let wrapped = cmpgt_epu64(a, s); // s < a ⟺ the add wrapped
        let s = _mm256_add_epi64(s, _mm256_and_si256(wrapped, eps));
        let lt_p = cmpgt_epu64(p, s);
        _mm256_sub_epi64(s, _mm256_andnot_si256(lt_p, p))
    }

    /// Goldilocks lane sub: canonical in, canonical out, 4×`u64`.
    ///
    /// A borrow contributes `−2^64 ≡ −ε`; the corrected difference is
    /// already canonical in both cases.
    ///
    /// # Safety
    ///
    /// Requires AVX2 in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn gl_sub(a: __m256i, b: __m256i) -> __m256i {
        let eps = _mm256_set1_epi64x(EPSILON);
        let d = _mm256_sub_epi64(a, b);
        let borrow = cmpgt_epu64(b, a);
        _mm256_sub_epi64(d, _mm256_and_si256(borrow, eps))
    }

    /// Goldilocks lane product `a·b mod p`: canonical in, canonical out.
    ///
    /// Full 64×64→128 product from four `vpmuludq` partials, then the
    /// special-form reduction `lo − hi_hi + hi_lo·ε` (`ε·x` is a
    /// shift-and-subtract, not a multiply), mirroring the scalar
    /// `reduce128` — so lanes land on the exact same canonical residues.
    /// On AVX2 this beats a vectorized Shoup product: Shoup needs a
    /// 64-bit `mulhi` (four partials) *plus* a 64-bit `mullo` (three
    /// partials), and its `[0, 2p)` result overflows a `u64` lane for
    /// this field.
    ///
    /// # Safety
    ///
    /// Requires AVX2 in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn gl_mul(a: __m256i, b: __m256i) -> __m256i {
        let p = _mm256_set1_epi64x(GOLDILOCKS_MODULUS as i64);
        let eps = _mm256_set1_epi64x(EPSILON);
        let mask32 = _mm256_set1_epi64x(EPSILON);

        // 64×64→128: schoolbook over 32-bit halves.
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // t = hl + (ll >> 32) ≤ (2^32−1)² + (2^32−1) < 2^64: no wrap.
        let t = _mm256_add_epi64(hl, _mm256_srli_epi64::<32>(ll));
        let t_lo = _mm256_and_si256(t, mask32);
        let t_hi = _mm256_srli_epi64::<32>(t);
        // u = lh + t_lo < 2^64: no wrap.
        let u = _mm256_add_epi64(lh, t_lo);
        let lo = _mm256_or_si256(_mm256_slli_epi64::<32>(u), _mm256_and_si256(ll, mask32));
        let hi = _mm256_add_epi64(hh, _mm256_add_epi64(t_hi, _mm256_srli_epi64::<32>(u)));

        // reduce128: x = lo + 2^64·hi ≡ lo − hi_hi + hi_lo·ε (mod p).
        let hi_hi = _mm256_srli_epi64::<32>(hi);
        let hi_lo = _mm256_and_si256(hi, mask32);
        let t0 = _mm256_sub_epi64(lo, hi_hi);
        let borrow = cmpgt_epu64(hi_hi, lo);
        let t0 = _mm256_sub_epi64(t0, _mm256_and_si256(borrow, eps));
        let t1 = _mm256_sub_epi64(_mm256_slli_epi64::<32>(hi_lo), hi_lo); // hi_lo·ε
        let res = _mm256_add_epi64(t0, t1);
        let carry = cmpgt_epu64(t0, res); // res < t0 ⟺ the add wrapped
        let res = _mm256_add_epi64(res, _mm256_and_si256(carry, eps));
        let lt_p = cmpgt_epu64(p, res);
        _mm256_sub_epi64(res, _mm256_andnot_si256(lt_p, p))
    }

    /// BabyBear lane add: canonical in, canonical out, 8×`u32`.
    ///
    /// `min(a+b, a+b−p)` — the subtraction wraps to a huge value exactly
    /// when `a+b < p`, so the unsigned min picks the reduced branch.
    ///
    /// # Safety
    ///
    /// Requires AVX2 in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn bb_add(a: __m256i, b: __m256i) -> __m256i {
        let p = _mm256_set1_epi32(BABYBEAR_MODULUS as i32);
        let s = _mm256_add_epi32(a, b);
        _mm256_min_epu32(s, _mm256_sub_epi32(s, p))
    }

    /// BabyBear lane sub: canonical in, canonical out, 8×`u32`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn bb_sub(a: __m256i, b: __m256i) -> __m256i {
        let p = _mm256_set1_epi32(BABYBEAR_MODULUS as i32);
        let d = _mm256_sub_epi32(a, b);
        _mm256_min_epu32(d, _mm256_add_epi32(d, p))
    }

    /// BabyBear lane Shoup product by a prepared twiddle, 8×`u32`.
    ///
    /// `plain` holds the twiddle in plain (non-Montgomery) form and
    /// `quot` its Shoup quotient `⌊w·2^32/p⌋`, each broadcast one lane
    /// per element (the vector plan stores twiddle banks in exactly this
    /// split layout). Input lanes are canonical Montgomery words; the
    /// result `a·plain − q·p ∈ [0, 2p)` is folded to canonical with one
    /// unsigned min.
    ///
    /// The 32-bit `mulhi` has no AVX2 instruction, so even/odd lanes run
    /// through two `vpmuludq` and a blend.
    ///
    /// # Safety
    ///
    /// Requires AVX2 in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn bb_shoup_mul(a: __m256i, plain: __m256i, quot: __m256i) -> __m256i {
        let p = _mm256_set1_epi32(BABYBEAR_MODULUS as i32);
        let prod_even = _mm256_mul_epu32(a, quot);
        let prod_odd = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), _mm256_srli_epi64::<32>(quot));
        // Even result lanes carry hi(prod_even); odd lanes sit in the
        // upper halves of prod_odd already.
        let q = _mm256_blend_epi32::<0b10101010>(_mm256_srli_epi64::<32>(prod_even), prod_odd);
        let r = _mm256_sub_epi32(_mm256_mullo_epi32(a, plain), _mm256_mullo_epi32(q, p));
        _mm256_min_epu32(r, _mm256_sub_epi32(r, p))
    }
}

/// Explicit AVX-512 lane primitives (8×`u64` Goldilocks). Same contracts
/// as the [`avx2`] versions at double width: canonical lanes in and out,
/// bit-identical residues to the scalar ops. The conditional fixups that
/// AVX2 phrases as compare-and-mask run on AVX-512 mask registers
/// (`_mm512_mask_*`), and the 64-bit low product comes from AVX-512DQ's
/// `vpmullq` instead of a recombination chain.
///
/// Every function must only be called when `avx512f` **and** `avx512dq`
/// are available (callers are `#[target_feature]` stage drivers that are
/// themselves gated on runtime detection).
#[cfg(target_arch = "x86_64")]
pub mod avx512 {
    use core::arch::x86_64::*;

    use crate::GOLDILOCKS_MODULUS;

    /// `2^32 − 1`: the Goldilocks reduction constant (`2^64 ≡ ε mod p`).
    const EPSILON: i64 = 0xffff_ffff;

    /// Goldilocks lane add: canonical in, canonical out, 8×`u64`.
    ///
    /// Same algebra as [`super::avx2::gl_add`]: a 64-bit wrap contributes
    /// `2^64 ≡ ε`, then one conditional subtraction of `p` restores the
    /// canonical range.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn gl_add(a: __m512i, b: __m512i) -> __m512i {
        let p = _mm512_set1_epi64(GOLDILOCKS_MODULUS as i64);
        let eps = _mm512_set1_epi64(EPSILON);
        let s = _mm512_add_epi64(a, b);
        let wrapped = _mm512_cmplt_epu64_mask(s, a); // s < a ⟺ the add wrapped
        let s = _mm512_mask_add_epi64(s, wrapped, s, eps);
        let ge_p = _mm512_cmpge_epu64_mask(s, p);
        _mm512_mask_sub_epi64(s, ge_p, s, p)
    }

    /// Goldilocks lane sub: canonical in, canonical out, 8×`u64`.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F in the (inlined-into) calling context.
    #[inline(always)]
    pub unsafe fn gl_sub(a: __m512i, b: __m512i) -> __m512i {
        let eps = _mm512_set1_epi64(EPSILON);
        let d = _mm512_sub_epi64(a, b);
        let borrow = _mm512_cmplt_epu64_mask(a, b);
        _mm512_mask_sub_epi64(d, borrow, d, eps)
    }

    /// Goldilocks lane product `a·b mod p`: canonical in, canonical out,
    /// 8×`u64`.
    ///
    /// The low 64 product bits come straight from `vpmullq` (AVX-512DQ);
    /// the high bits still need the `vpmuludq` schoolbook (there is no
    /// 64-bit `mulhi` instruction), after which the special-form
    /// reduction `lo − hi_hi + hi_lo·ε` mirrors the scalar `reduce128`
    /// exactly — lanes land on the same canonical residues.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F **and** AVX-512DQ in the (inlined-into) calling
    /// context.
    #[inline(always)]
    pub unsafe fn gl_mul(a: __m512i, b: __m512i) -> __m512i {
        let p = _mm512_set1_epi64(GOLDILOCKS_MODULUS as i64);
        let eps = _mm512_set1_epi64(EPSILON);
        let mask32 = _mm512_set1_epi64(EPSILON);

        let lo = _mm512_mullo_epi64(a, b);
        // High 64 bits: schoolbook over 32-bit halves.
        let a_hi = _mm512_srli_epi64::<32>(a);
        let b_hi = _mm512_srli_epi64::<32>(b);
        let ll = _mm512_mul_epu32(a, b);
        let lh = _mm512_mul_epu32(a, b_hi);
        let hl = _mm512_mul_epu32(a_hi, b);
        let hh = _mm512_mul_epu32(a_hi, b_hi);
        // t = hl + (ll >> 32) ≤ (2^32−1)² + (2^32−1) < 2^64: no wrap.
        let t = _mm512_add_epi64(hl, _mm512_srli_epi64::<32>(ll));
        // u = lh + t_lo < 2^64: no wrap.
        let u = _mm512_add_epi64(lh, _mm512_and_si512(t, mask32));
        let hi = _mm512_add_epi64(
            hh,
            _mm512_add_epi64(_mm512_srli_epi64::<32>(t), _mm512_srli_epi64::<32>(u)),
        );

        // reduce128: x = lo + 2^64·hi ≡ lo − hi_hi + hi_lo·ε (mod p).
        let hi_hi = _mm512_srli_epi64::<32>(hi);
        let hi_lo = _mm512_and_si512(hi, mask32);
        let borrow = _mm512_cmplt_epu64_mask(lo, hi_hi);
        let t0 = _mm512_sub_epi64(lo, hi_hi);
        let t0 = _mm512_mask_sub_epi64(t0, borrow, t0, eps);
        let t1 = _mm512_sub_epi64(_mm512_slli_epi64::<32>(hi_lo), hi_lo); // hi_lo·ε
        let res = _mm512_add_epi64(t0, t1);
        let carry = _mm512_cmplt_epu64_mask(res, t0); // res < t0 ⟺ the add wrapped
        let res = _mm512_mask_add_epi64(res, carry, res, eps);
        let ge_p = _mm512_cmpge_epu64_mask(res, p);
        _mm512_mask_sub_epi64(res, ge_p, res, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, PrimeField, ShoupField, ShoupTwiddle};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn word_views_roundtrip() {
        let mut gl: Vec<Goldilocks> = (0..9u64).map(Goldilocks::from_u64).collect();
        let words = gl_words_mut(&mut gl);
        words[3] = 77;
        assert_eq!(gl_words(&gl), &[0, 1, 2, 77, 4, 5, 6, 7, 8]);
        assert_eq!(gl[3], Goldilocks::from_u64(77));

        let mut bb: Vec<BabyBear> = (0..5u64).map(BabyBear::from_u64).collect();
        let raw2 = bb_words(&bb)[2];
        bb_words_mut(&mut bb)[4] = raw2;
        assert_eq!(bb[4], BabyBear::from_u64(2));
        assert_eq!(bb_word(bb[4]), raw2);
        assert_eq!(gl_word(gl[3]), 77);
    }

    #[test]
    fn lane_defaults_match_scalar_ops() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let mut u: [Goldilocks; 4] = core::array::from_fn(|_| Goldilocks::random(&mut rng));
            let mut v: [Goldilocks; 4] = core::array::from_fn(|_| Goldilocks::random(&mut rng));
            let tw: Vec<ShoupTwiddle<Goldilocks>> = (0..4)
                .map(|_| Goldilocks::shoup_prepare(Goldilocks::random(&mut rng)))
                .collect();
            let (su, sv) = (u, v);
            Goldilocks::dif_butterfly_lanes(&mut u, &mut v, &tw);
            for i in 0..4 {
                let (a, b) = Goldilocks::dif_butterfly(su[i], sv[i], &tw[i]);
                assert_eq!((u[i], v[i]), (a, b));
            }
            let mut m = su;
            Goldilocks::shoup_mul_lanes(&mut m, &tw);
            Goldilocks::reduce_lanes(&mut m);
            for i in 0..4 {
                assert_eq!(m[i], su[i] * tw[i].w);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod avx2_vs_scalar {
        use super::super::avx2;
        use crate::{
            BabyBear, Field, Goldilocks, PrimeField, ShoupField, BABYBEAR_MODULUS,
            GOLDILOCKS_MODULUS,
        };
        use core::arch::x86_64::*;
        use rand::{rngs::StdRng, Rng, SeedableRng};

        /// One AVX2 round over four Goldilocks lanes, returning
        /// (add, sub, mul) lane words.
        #[target_feature(enable = "avx2")]
        unsafe fn gl_round(a: [u64; 4], b: [u64; 4]) -> ([u64; 4], [u64; 4], [u64; 4]) {
            let va = _mm256_loadu_si256(a.as_ptr().cast());
            let vb = _mm256_loadu_si256(b.as_ptr().cast());
            let mut add = [0u64; 4];
            let mut sub = [0u64; 4];
            let mut mul = [0u64; 4];
            _mm256_storeu_si256(add.as_mut_ptr().cast(), avx2::gl_add(va, vb));
            _mm256_storeu_si256(sub.as_mut_ptr().cast(), avx2::gl_sub(va, vb));
            _mm256_storeu_si256(mul.as_mut_ptr().cast(), avx2::gl_mul(va, vb));
            (add, sub, mul)
        }

        #[target_feature(enable = "avx2")]
        unsafe fn bb_round(
            a: [u32; 8],
            b: [u32; 8],
            plain: [u32; 8],
            quot: [u32; 8],
        ) -> ([u32; 8], [u32; 8], [u32; 8]) {
            let va = _mm256_loadu_si256(a.as_ptr().cast());
            let vb = _mm256_loadu_si256(b.as_ptr().cast());
            let vp = _mm256_loadu_si256(plain.as_ptr().cast());
            let vq = _mm256_loadu_si256(quot.as_ptr().cast());
            let mut add = [0u32; 8];
            let mut sub = [0u32; 8];
            let mut mul = [0u32; 8];
            _mm256_storeu_si256(add.as_mut_ptr().cast(), avx2::bb_add(va, vb));
            _mm256_storeu_si256(sub.as_mut_ptr().cast(), avx2::bb_sub(va, vb));
            _mm256_storeu_si256(mul.as_mut_ptr().cast(), avx2::bb_shoup_mul(va, vp, vq));
            (add, sub, mul)
        }

        #[test]
        fn goldilocks_lanes_match_scalar() {
            if !is_x86_feature_detected!("avx2") {
                return;
            }
            let mut rng = StdRng::seed_from_u64(31);
            let p = GOLDILOCKS_MODULUS;
            let edges = [0u64, 1, 0xffff_ffff, 0x1_0000_0000, p - 2, p - 1];
            for round in 0..500 {
                let pick = |rng: &mut StdRng| -> u64 {
                    if rng.gen_range(0..4) == 0 {
                        edges[rng.gen_range(0..edges.len() as u64) as usize]
                    } else {
                        Goldilocks::random(rng).value()
                    }
                };
                let a: [u64; 4] = core::array::from_fn(|_| pick(&mut rng));
                let b: [u64; 4] = core::array::from_fn(|_| pick(&mut rng));
                let (add, sub, mul) = unsafe { gl_round(a, b) };
                for i in 0..4 {
                    let (ga, gb) = (Goldilocks::from_u64(a[i]), Goldilocks::from_u64(b[i]));
                    assert_eq!(add[i], (ga + gb).value(), "add round={round} i={i}");
                    assert_eq!(sub[i], (ga - gb).value(), "sub round={round} i={i}");
                    assert_eq!(mul[i], (ga * gb).value(), "mul round={round} i={i}");
                }
            }
        }

        #[test]
        fn babybear_lanes_match_scalar() {
            if !is_x86_feature_detected!("avx2") {
                return;
            }
            let mut rng = StdRng::seed_from_u64(32);
            let edges = [0u32, 1, 2, BABYBEAR_MODULUS - 2, BABYBEAR_MODULUS - 1];
            for round in 0..500 {
                let pick = |rng: &mut StdRng| -> BabyBear {
                    if rng.gen_range(0..4) == 0 {
                        BabyBear::from_u64(u64::from(
                            edges[rng.gen_range(0..edges.len() as u64) as usize],
                        ))
                    } else {
                        BabyBear::random(rng)
                    }
                };
                let fa: [BabyBear; 8] = core::array::from_fn(|_| pick(&mut rng));
                let fb: [BabyBear; 8] = core::array::from_fn(|_| pick(&mut rng));
                let tw: [_; 8] = core::array::from_fn(|i| BabyBear::shoup_prepare(fb[i]));
                let raw = |x: &[BabyBear; 8]| -> [u32; 8] {
                    core::array::from_fn(|i| super::super::bb_word(x[i]))
                };
                let plain: [u32; 8] = core::array::from_fn(|i| (tw[i].aux & 0xffff_ffff) as u32);
                let quot: [u32; 8] = core::array::from_fn(|i| (tw[i].aux >> 32) as u32);
                let (add, sub, mul) = unsafe { bb_round(raw(&fa), raw(&fb), plain, quot) };
                for i in 0..8 {
                    let s = fa[i] + fb[i];
                    let d = fa[i] - fb[i];
                    let m = fa[i] * fb[i];
                    assert_eq!(add[i], super::super::bb_word(s), "add round={round} i={i}");
                    assert_eq!(sub[i], super::super::bb_word(d), "sub round={round} i={i}");
                    assert_eq!(mul[i], super::super::bb_word(m), "mul round={round} i={i}");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    mod avx512_vs_scalar {
        use super::super::avx512;
        use crate::{Field, Goldilocks, PrimeField, GOLDILOCKS_MODULUS};
        use core::arch::x86_64::*;
        use rand::{rngs::StdRng, Rng, SeedableRng};

        /// One AVX-512 round over eight Goldilocks lanes, returning
        /// (add, sub, mul) lane words.
        #[target_feature(enable = "avx512f,avx512dq")]
        unsafe fn gl_round(a: [u64; 8], b: [u64; 8]) -> ([u64; 8], [u64; 8], [u64; 8]) {
            let va = _mm512_loadu_si512(a.as_ptr().cast());
            let vb = _mm512_loadu_si512(b.as_ptr().cast());
            let mut add = [0u64; 8];
            let mut sub = [0u64; 8];
            let mut mul = [0u64; 8];
            _mm512_storeu_si512(add.as_mut_ptr().cast(), avx512::gl_add(va, vb));
            _mm512_storeu_si512(sub.as_mut_ptr().cast(), avx512::gl_sub(va, vb));
            _mm512_storeu_si512(mul.as_mut_ptr().cast(), avx512::gl_mul(va, vb));
            (add, sub, mul)
        }

        #[test]
        fn goldilocks_lanes_match_scalar() {
            if !is_x86_feature_detected!("avx512f") || !is_x86_feature_detected!("avx512dq") {
                return;
            }
            let mut rng = StdRng::seed_from_u64(33);
            let p = GOLDILOCKS_MODULUS;
            let edges = [0u64, 1, 0xffff_ffff, 0x1_0000_0000, p - 2, p - 1];
            for round in 0..500 {
                let pick = |rng: &mut StdRng| -> u64 {
                    if rng.gen_range(0..4) == 0 {
                        edges[rng.gen_range(0..edges.len() as u64) as usize]
                    } else {
                        Goldilocks::random(rng).value()
                    }
                };
                let a: [u64; 8] = core::array::from_fn(|_| pick(&mut rng));
                let b: [u64; 8] = core::array::from_fn(|_| pick(&mut rng));
                let (add, sub, mul) = unsafe { gl_round(a, b) };
                for i in 0..8 {
                    let (ga, gb) = (Goldilocks::from_u64(a[i]), Goldilocks::from_u64(b[i]));
                    assert_eq!(add[i], (ga + gb).value(), "add round={round} i={i}");
                    assert_eq!(sub[i], (ga - gb).value(), "sub round={round} i={i}");
                    assert_eq!(mul[i], (ga * gb).value(), "mul round={round} i={i}");
                }
            }
        }
    }
}
