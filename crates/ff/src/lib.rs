//! # unintt-ff — finite-field arithmetic for the UniNTT reproduction
//!
//! This crate provides the number theory substrate for the whole workspace:
//!
//! * [`U256`] — fixed-width 256-bit integers.
//! * [`Field`] / [`PrimeField`] / [`TwoAdicField`] — the field abstractions
//!   every other crate is generic over.
//! * [`Goldilocks`] (`p = 2^64 − 2^32 + 1`, two-adicity 32) — the fast
//!   64-bit NTT field, with its quadratic extension [`GoldilocksExt2`]
//!   for challenge sampling.
//! * [`BabyBear`] (`p = 2^31 − 2^27 + 1`, two-adicity 27) — a 31-bit
//!   Montgomery field.
//! * [`Bn254Fr`] (254-bit, two-adicity 28) — the SNARK scalar field the
//!   paper's ZKP workloads run over.
//! * [`Bn254Fq`] (254-bit) — the coordinate field of the BN254 G1 curve
//!   used by the MSM substrate.
//! * [`batch_inverse`] and friends — batched field helpers.
//!
//! ## Example
//!
//! ```
//! use unintt_ff::{Field, Goldilocks, PrimeField, TwoAdicField};
//!
//! // A primitive 8th root of unity: ω^8 = 1, ω^4 = −1.
//! let omega = Goldilocks::two_adic_generator(3);
//! assert!(omega.pow(8).is_one());
//! assert_eq!(omega.pow(4), -Goldilocks::ONE);
//! ```

#![warn(missing_docs)]

mod babybear;
mod batch;
mod bigint;
mod extension;
mod goldilocks;
mod mont;
pub mod packed;
mod shoup;
mod traits;

pub use babybear::{BabyBear, BABYBEAR_MODULUS};
pub use batch::{batch_inverse, batch_inverse_to_vec, hadamard_product, horner_eval, powers};
pub use bigint::U256;
pub use extension::{extension_w, GoldilocksExt2};
pub use goldilocks::{Goldilocks, GOLDILOCKS_MODULUS};
pub use mont::{Bn254Fq, Bn254FqParams, Bn254Fr, Bn254FrParams, Mont, MontParams};
pub use shoup::{ShoupField, ShoupTwiddle};
pub use traits::{Field, PrimeField, TwoAdicField};
