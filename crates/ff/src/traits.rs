//! Field abstractions used throughout the workspace.
//!
//! Three layers:
//!
//! * [`Field`] — plain field arithmetic (add, mul, inverse, …).
//! * [`PrimeField`] — a prime field `F_p` with access to the modulus and a
//!   canonical integer representation.
//! * [`TwoAdicField`] — a prime field whose multiplicative group contains a
//!   large power-of-two subgroup, which is what makes radix-2 NTTs possible.
//!
//! All concrete fields in this crate implement all three layers except
//! [`crate::Bn254Fq`], which has two-adicity 1 and therefore only implements
//! the first two.

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::U256;

/// A finite field element.
///
/// Implementors are small `Copy` value types; arithmetic never allocates.
/// All operations are total: `inverse` returns `None` for zero rather than
/// panicking.
pub trait Field:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// The value `2`.
    const TWO: Self;

    /// Returns `true` if this is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Returns `true` if this is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::ONE
    }

    /// Squares the element.
    fn square(&self) -> Self {
        *self * *self
    }

    /// Doubles the element.
    fn double(&self) -> Self {
        *self + *self
    }

    /// Multiplicative inverse; `None` if `self` is zero.
    fn inverse(&self) -> Option<Self>;

    /// Exponentiation by a `u64` exponent (square-and-multiply).
    fn pow(&self, mut exp: u64) -> Self {
        let mut base = *self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base = base.square();
            exp >>= 1;
        }
        acc
    }

    /// Exponentiation by a 256-bit exponent.
    fn pow_u256(&self, exp: &U256) -> Self {
        let mut acc = Self::ONE;
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            acc = acc.square();
            if exp.bit(i as usize) {
                acc *= *self;
            }
        }
        acc
    }

    /// Samples a uniformly random field element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// Computes `self * 2^-1`. Provided for radix-2 inverse NTT scaling.
    fn halve(&self) -> Self {
        *self
            * Self::TWO
                .inverse()
                .expect("2 is invertible in odd-characteristic fields")
    }
}

/// A prime field `F_p` with canonical little-endian integer representation.
pub trait PrimeField: Field {
    /// The modulus `p` as a 256-bit integer (zero-extended for small fields).
    const MODULUS: U256;
    /// Number of bits in the modulus.
    const MODULUS_BITS: u32;
    /// A fixed generator of the full multiplicative group `F_p^*`.
    const GENERATOR: Self;
    /// Short human-readable field name (for reports and traces).
    const NAME: &'static str;
    /// Size of a canonical element encoding in bytes.
    const BYTES: usize;

    /// Converts a `u64` into a field element (reduced mod `p`).
    fn from_u64(v: u64) -> Self;

    /// Converts an arbitrary 256-bit integer into a field element (reduced).
    fn from_u256(v: U256) -> Self;

    /// Canonical integer representative in `[0, p)`.
    fn to_canonical_u256(&self) -> U256;

    /// Canonical representative as `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the canonical value does not fit in 64 bits (only possible
    /// for fields larger than 64 bits).
    fn to_canonical_u64(&self) -> u64 {
        let c = self.to_canonical_u256();
        assert!(
            c.limbs()[1] == 0 && c.limbs()[2] == 0 && c.limbs()[3] == 0,
            "canonical value exceeds 64 bits"
        );
        c.limbs()[0]
    }

    /// Converts `i64` into a field element; negative values map to `p - |v|`.
    fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Self::from_u64(v as u64)
        } else {
            -Self::from_u64(v.unsigned_abs())
        }
    }
}

/// A prime field supporting radix-2 NTTs of length up to `2^TWO_ADICITY`.
///
/// Requires [`crate::ShoupField`] so every NTT-capable field offers the
/// Shoup/lazy butterfly hooks (possibly via the canonical fallback) —
/// generic kernels can then use one code path for all fields.
pub trait TwoAdicField: PrimeField + crate::ShoupField {
    /// Largest `s` such that `2^s` divides `p - 1`.
    const TWO_ADICITY: u32;

    /// Returns a primitive `2^bits`-th root of unity.
    ///
    /// The returned roots are *coherent*: `two_adic_generator(k)` is the
    /// square of `two_adic_generator(k + 1)`, so subgroup domains nest.
    ///
    /// # Panics
    ///
    /// Panics if `bits > Self::TWO_ADICITY`.
    fn two_adic_generator(bits: u32) -> Self {
        assert!(
            bits <= Self::TWO_ADICITY,
            "requested 2^{bits}-th root of unity exceeds two-adicity {} of {}",
            Self::TWO_ADICITY,
            Self::NAME
        );
        let mut g = Self::max_two_adic_generator();
        for _ in bits..Self::TWO_ADICITY {
            g = g.square();
        }
        g
    }

    /// A primitive `2^TWO_ADICITY`-th root of unity.
    fn max_two_adic_generator() -> Self {
        // g^((p-1) / 2^s) where g generates F_p^*.
        let mut exp = Self::MODULUS.sbb(&U256::ONE).0;
        for _ in 0..Self::TWO_ADICITY {
            exp = exp.shr1();
        }
        Self::GENERATOR.pow_u256(&exp)
    }
}

#[cfg(test)]
mod tests {
    // Trait-level behaviour is exercised through the concrete field test
    // suites (goldilocks, babybear, bn254_fr) and the shared macro in
    // `field_testsuite.rs`.
}
