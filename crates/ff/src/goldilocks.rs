//! The Goldilocks field `F_p` with `p = 2^64 - 2^32 + 1`.
//!
//! Goldilocks is the workhorse field of modern hash-based ZKP systems
//! (Plonky2, Miden, RISC Zero's recursion layer): elements fit in one
//! machine word, products fit in `u128`, and the special modulus shape
//! admits a branch-light reduction. Its two-adicity of 32 supports NTTs up
//! to length `2^32`.
//!
//! ```
//! use unintt_ff::{Field, Goldilocks, PrimeField};
//!
//! let a = Goldilocks::from_u64(3);
//! let b = Goldilocks::from_u64(5);
//! assert_eq!((a * b).to_canonical_u64(), 15);
//! ```

use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Field, PrimeField, ShoupField, ShoupTwiddle, TwoAdicField, U256};

/// The Goldilocks prime `2^64 - 2^32 + 1`.
pub const GOLDILOCKS_MODULUS: u64 = 0xffff_ffff_0000_0001;

/// `2^32 - 1`, the "epsilon" used by the special-form reduction:
/// `2^64 ≡ EPSILON (mod p)`.
const EPSILON: u64 = 0xffff_ffff;

/// An element of the Goldilocks field, stored canonically in `[0, p)`.
///
/// `#[repr(transparent)]` is a guarantee, not an accident: the packed
/// SIMD kernels (see [`crate::packed`]) reinterpret `&mut [Goldilocks]`
/// as `&mut [u64]` lane buffers, which is only sound with a pinned layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Goldilocks(u64);

impl Goldilocks {
    /// Constructs an element from a canonical value, debug-asserting range.
    ///
    /// Callers must guarantee `v < p`; release builds do not check.
    #[inline]
    pub const fn new_unchecked(v: u64) -> Self {
        debug_assert!(v < GOLDILOCKS_MODULUS);
        Self(v)
    }

    /// Reduces an arbitrary `u128` product into a canonical element.
    ///
    /// Uses `2^64 ≡ 2^32 - 1` and `2^96 ≡ -1 (mod p)`: writing
    /// `x = lo + 2^64·hi_lo + 2^96·hi_hi` the value reduces to
    /// `lo - hi_hi + hi_lo·(2^32 - 1)`.
    #[inline]
    fn reduce128(x: u128) -> Self {
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        let hi_lo = hi & EPSILON;
        let hi_hi = hi >> 32;

        let (mut t0, borrow) = lo.overflowing_sub(hi_hi);
        if borrow {
            t0 = t0.wrapping_sub(EPSILON);
        }
        let t1 = hi_lo * EPSILON;
        let (mut res, carry) = t0.overflowing_add(t1);
        if carry {
            res = res.wrapping_add(EPSILON);
        }
        if res >= GOLDILOCKS_MODULUS {
            res -= GOLDILOCKS_MODULUS;
        }
        Self(res)
    }

    /// The canonical `u64` value in `[0, p)`.
    #[inline]
    pub const fn value(&self) -> u64 {
        self.0
    }

    /// The raw lane word. For Goldilocks lanes are always canonical, so
    /// this coincides with [`Self::value`]; it exists so the packed
    /// kernels can speak about lane words uniformly across fields.
    #[inline]
    pub(crate) const fn raw(self) -> u64 {
        self.0
    }
}

impl Add for Goldilocks {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut s = self.0 as u128 + rhs.0 as u128;
        if s >= GOLDILOCKS_MODULUS as u128 {
            s -= GOLDILOCKS_MODULUS as u128;
        }
        Self(s as u64)
    }
}

impl Sub for Goldilocks {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow {
            d.wrapping_add(GOLDILOCKS_MODULUS)
        } else {
            d
        })
    }
}

impl Mul for Goldilocks {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::reduce128(self.0 as u128 * rhs.0 as u128)
    }
}

impl Neg for Goldilocks {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self(GOLDILOCKS_MODULUS - self.0)
        }
    }
}

impl AddAssign for Goldilocks {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for Goldilocks {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for Goldilocks {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Goldilocks {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}
impl Product for Goldilocks {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl core::fmt::Display for Goldilocks {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Field for Goldilocks {
    const ZERO: Self = Self(0);
    const ONE: Self = Self(1);
    const TWO: Self = Self(2);

    fn inverse(&self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        // Fermat: a^(p-2).
        let inv = self.pow(GOLDILOCKS_MODULUS - 2);
        debug_assert!((*self * inv).is_one());
        Some(inv)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling keeps the distribution exactly uniform.
        loop {
            let v = rng.gen::<u64>();
            if v < GOLDILOCKS_MODULUS {
                return Self(v);
            }
        }
    }
}

impl PrimeField for Goldilocks {
    const MODULUS: U256 = U256::from_u64(GOLDILOCKS_MODULUS);
    const MODULUS_BITS: u32 = 64;
    // 7 generates F_p^*: p - 1 = 2^32 · 3 · 5 · 17 · 257 · 65537 and 7 is a
    // non-residue for each prime-order quotient (checked in tests).
    const GENERATOR: Self = Self(7);
    const NAME: &'static str = "Goldilocks";
    const BYTES: usize = 8;

    #[inline]
    fn from_u64(v: u64) -> Self {
        Self(if v >= GOLDILOCKS_MODULUS {
            v - GOLDILOCKS_MODULUS
        } else {
            v
        })
    }

    fn from_u256(v: U256) -> Self {
        let r = v.reduce(&Self::MODULUS);
        Self(r.limbs()[0])
    }

    fn to_canonical_u256(&self) -> U256 {
        U256::from_u64(self.0)
    }
}

impl TwoAdicField for Goldilocks {
    const TWO_ADICITY: u32 = 32;
}

impl ShoupField for Goldilocks {
    const SHOUP_ACCELERATED: bool = true;
    /// Four 64-bit lanes fill a 256-bit vector register.
    const LANES: usize = 4;

    #[inline]
    fn shoup_prepare(w: Self) -> ShoupTwiddle<Self> {
        // aux = ⌊w·2^64 / p⌋; exact u128 division, paid once per twiddle.
        let aux = (((w.0 as u128) << 64) / (GOLDILOCKS_MODULUS as u128)) as u64;
        ShoupTwiddle { w, aux }
    }

    /// Shoup product with a precomputed twiddle. Unlike [`Goldilocks::mul`]
    /// via [`Goldilocks::reduce128`], the quotient estimate makes the
    /// reduction a single comparison with no data-dependent carry chains.
    ///
    /// `r = a·w − q·p` lies in `[0, 2p)`, which exceeds `2^64` for this
    /// field, so `r` is formed exactly in `u128` and reduced with one
    /// conditional subtraction — the output lane is canonical, hence
    /// Goldilocks lanes are always canonical and `reduce_lane` stays the
    /// identity.
    #[inline]
    fn shoup_mul(a: Self, t: &ShoupTwiddle<Self>) -> Self {
        let q = ((a.0 as u128 * t.aux as u128) >> 64) as u64;
        // q·p with p = 2^64 − 2^32 + 1 strength-reduces to shifts:
        // q·p = (q << 64) − (q << 32) + q, replacing a wide multiply.
        let qp = ((q as u128) << 64) - ((q as u128) << 32) + q as u128;
        let r = a.0 as u128 * t.w.0 as u128 - qp;
        let p = GOLDILOCKS_MODULUS as u128;
        let r = if r >= p { r - p } else { r };
        Self(r as u64)
    }
}

impl From<u64> for Goldilocks {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn slow_mul(a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % GOLDILOCKS_MODULUS as u128) as u64
    }

    #[test]
    fn reduce128_matches_naive_mod_on_random_products() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = Goldilocks::random(&mut rng);
            let b = Goldilocks::random(&mut rng);
            assert_eq!((a * b).value(), slow_mul(a.value(), b.value()));
        }
    }

    #[test]
    fn reduce128_edge_cases() {
        let edges = [
            0u64,
            1,
            EPSILON,
            EPSILON + 1,
            GOLDILOCKS_MODULUS - 1,
            GOLDILOCKS_MODULUS - 2,
            1 << 32,
            (1 << 32) + 1,
            u64::MAX % GOLDILOCKS_MODULUS,
        ];
        for &a in &edges {
            for &b in &edges {
                let ga = Goldilocks::from_u64(a);
                let gb = Goldilocks::from_u64(b);
                assert_eq!((ga * gb).value(), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_sub_wraparound() {
        let max = Goldilocks::from_u64(GOLDILOCKS_MODULUS - 1);
        assert_eq!((max + Goldilocks::ONE).value(), 0);
        assert_eq!(
            (Goldilocks::ZERO - Goldilocks::ONE).value(),
            GOLDILOCKS_MODULUS - 1
        );
    }

    #[test]
    fn generator_is_quadratic_nonresidue() {
        // g^((p-1)/2) must be -1 for the two-adic generator chain to have
        // exact orders.
        let g = Goldilocks::GENERATOR;
        let e = (GOLDILOCKS_MODULUS - 1) / 2;
        assert_eq!(g.pow(e), -Goldilocks::ONE);
    }

    #[test]
    fn generator_order_excludes_odd_prime_factors() {
        // p - 1 = 2^32 * 3 * 5 * 17 * 257 * 65537; g^((p-1)/q) != 1 for each.
        let g = Goldilocks::GENERATOR;
        for q in [3u64, 5, 17, 257, 65537] {
            assert!(!g.pow((GOLDILOCKS_MODULUS - 1) / q).is_one(), "q={q}");
        }
    }

    #[test]
    fn two_adic_generator_orders() {
        for bits in 0..=16u32 {
            let w = Goldilocks::two_adic_generator(bits);
            assert!(w.pow(1 << bits).is_one(), "bits={bits}");
            if bits > 0 {
                assert!(
                    !w.pow(1 << (bits - 1)).is_one(),
                    "bits={bits} order too small"
                );
            }
        }
    }

    #[test]
    fn two_adic_generators_nest() {
        for bits in 1..=20u32 {
            let w = Goldilocks::two_adic_generator(bits);
            assert_eq!(w.square(), Goldilocks::two_adic_generator(bits - 1));
        }
    }

    #[test]
    fn inverse_of_random_elements() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a = Goldilocks::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Goldilocks::ONE);
        }
        assert!(Goldilocks::ZERO.inverse().is_none());
    }

    #[test]
    fn from_u256_reduces() {
        let v = U256::from_limbs([GOLDILOCKS_MODULUS, 1, 0, 0]);
        // v = p + 2^64 => v mod p = 2^64 mod p = EPSILON.
        assert_eq!(Goldilocks::from_u256(v).value(), EPSILON);
    }
}
