//! Batch field operations.
//!
//! [`batch_inverse`] implements Montgomery's simultaneous-inversion trick:
//! `n` inversions for the price of one inversion plus `3(n-1)`
//! multiplications. NTT twiddle precomputation and KZG opening batches both
//! rely on it.

use crate::Field;

/// Inverts every nonzero element of `values` in place; zeros stay zero.
///
/// Uses Montgomery's trick: one field inversion total.
///
/// ```
/// use unintt_ff::{batch_inverse, Field, Goldilocks, PrimeField};
///
/// let mut v = vec![Goldilocks::from_u64(2), Goldilocks::ZERO, Goldilocks::from_u64(4)];
/// batch_inverse(&mut v);
/// assert_eq!(v[0] * Goldilocks::from_u64(2), Goldilocks::ONE);
/// assert!(v[1].is_zero());
/// assert_eq!(v[2] * Goldilocks::from_u64(4), Goldilocks::ONE);
/// ```
pub fn batch_inverse<F: Field>(values: &mut [F]) {
    // Prefix products over the nonzero entries.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = F::ONE;
    for v in values.iter() {
        prefix.push(acc);
        if !v.is_zero() {
            acc *= *v;
        }
    }

    // One inversion of the running product.
    let mut inv = match acc.inverse() {
        Some(inv) => inv,
        // All entries zero: nothing to do.
        None if values.iter().all(F::is_zero) => return,
        None => unreachable!("product of nonzero elements cannot be zero in a field"),
    };

    // Unwind: values[i]^-1 = prefix[i] * suffix_inv.
    for (v, p) in values.iter_mut().zip(prefix.iter()).rev() {
        if v.is_zero() {
            continue;
        }
        let original = *v;
        *v = inv * *p;
        inv *= original;
    }
}

/// Returns element-wise inverses without mutating the input; zeros map to zero.
pub fn batch_inverse_to_vec<F: Field>(values: &[F]) -> Vec<F> {
    let mut out = values.to_vec();
    batch_inverse(&mut out);
    out
}

/// Computes the `n` successive powers `[1, base, base², …, base^(n-1)]`.
pub fn powers<F: Field>(base: F, n: usize) -> Vec<F> {
    let mut out = Vec::with_capacity(n);
    let mut acc = F::ONE;
    for _ in 0..n {
        out.push(acc);
        acc *= base;
    }
    out
}

/// Horner evaluation of a polynomial given in coefficient order
/// (`coeffs[0]` is the constant term) at point `x`.
pub fn horner_eval<F: Field>(coeffs: &[F], x: F) -> F {
    coeffs.iter().rev().fold(F::ZERO, |acc, &c| acc * x + c)
}

/// Element-wise product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn hadamard_product<F: Field>(a: &[F], b: &[F]) -> Vec<F> {
    assert_eq!(a.len(), b.len(), "hadamard product requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bn254Fr, Goldilocks, PrimeField};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn batch_inverse_matches_individual() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<Goldilocks> = (0..100).map(|_| Goldilocks::random(&mut rng)).collect();
        let batched = batch_inverse_to_vec(&values);
        for (v, inv) in values.iter().zip(&batched) {
            assert_eq!(v.inverse().unwrap_or(Goldilocks::ZERO), *inv);
        }
    }

    #[test]
    fn batch_inverse_with_zeros_interleaved() {
        let mut v = vec![
            Goldilocks::from_u64(3),
            Goldilocks::ZERO,
            Goldilocks::from_u64(7),
            Goldilocks::ZERO,
        ];
        batch_inverse(&mut v);
        assert_eq!(v[0] * Goldilocks::from_u64(3), Goldilocks::ONE);
        assert!(v[1].is_zero());
        assert_eq!(v[2] * Goldilocks::from_u64(7), Goldilocks::ONE);
        assert!(v[3].is_zero());
    }

    #[test]
    fn batch_inverse_all_zero_and_empty() {
        let mut v = vec![Goldilocks::ZERO; 5];
        batch_inverse(&mut v);
        assert!(v.iter().all(|x| x.is_zero()));
        let mut empty: Vec<Goldilocks> = vec![];
        batch_inverse(&mut empty);
    }

    #[test]
    fn batch_inverse_large_field() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<Bn254Fr> = (0..20).map(|_| Bn254Fr::random(&mut rng)).collect();
        let batched = batch_inverse_to_vec(&values);
        for (v, inv) in values.iter().zip(&batched) {
            assert!((*v * *inv).is_one());
        }
    }

    #[test]
    fn powers_sequence() {
        let p = powers(Goldilocks::from_u64(3), 5);
        assert_eq!(
            p.iter().map(|x| x.to_canonical_u64()).collect::<Vec<_>>(),
            vec![1, 3, 9, 27, 81]
        );
        assert!(powers(Goldilocks::from_u64(3), 0).is_empty());
    }

    #[test]
    fn horner_matches_direct() {
        // 2 + 3x + x^2 at x = 5 => 2 + 15 + 25 = 42
        let coeffs = vec![
            Goldilocks::from_u64(2),
            Goldilocks::from_u64(3),
            Goldilocks::from_u64(1),
        ];
        assert_eq!(
            horner_eval(&coeffs, Goldilocks::from_u64(5)).to_canonical_u64(),
            42
        );
        assert_eq!(
            horner_eval::<Goldilocks>(&[], Goldilocks::TWO),
            Goldilocks::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hadamard_length_mismatch_panics() {
        let a = vec![Goldilocks::ONE];
        let b = vec![Goldilocks::ONE, Goldilocks::ONE];
        let _ = hadamard_product(&a, &b);
    }
}
