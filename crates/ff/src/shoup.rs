//! Shoup-multiplication support: precomputed twiddle companions and lazy
//! (Harvey-style) butterfly primitives.
//!
//! Shoup's trick turns a modular multiplication by a *known* constant `w`
//! into two word multiplications and one conditional subtraction: with
//! `w' = ⌊w·β/p⌋` precomputed (`β` the word base), the quotient estimate
//! `q = ⌊a·w'/β⌋` satisfies `a·w − q·p ∈ [0, 2p)` for any word `a`. NTT
//! twiddles are exactly such known constants, so every butterfly saves the
//! generic reduction. Harvey's refinement keeps butterfly lanes in a
//! *redundant* range (`[0, 2p)` where the word size allows) so butterflies
//! defer canonicalization to a final pass.
//!
//! [`ShoupField`] exposes these kernels behind defaults that fall back to
//! plain canonical arithmetic, so generic NTT code runs unchanged over
//! fields without a specialized implementation (e.g. the 254-bit
//! [`crate::Bn254Fr`]); Goldilocks and BabyBear override the defaults in
//! their own modules. **Every method contract is stated in terms of
//! "lanes"**: a lane is a bit-pattern of `Self` that represents a residue
//! but may be outside the canonical range; [`ShoupField::reduce_lane`]
//! folds a lane back to the canonical representation. For fields using the
//! defaults, lanes are always canonical and `reduce_lane` is the identity.

use crate::Field;

/// A twiddle factor with its precomputed Shoup companion.
///
/// `w` is the twiddle as an ordinary field element (used by the generic
/// fallback). `aux` packs the field-specific raw operand and quotient
/// companion; its layout is private to each field's kernel:
///
/// * Goldilocks: `aux = ⌊w·2^64/p⌋` (the raw operand is `w` itself);
/// * BabyBear: low 32 bits hold `w` in *plain* (non-Montgomery) form,
///   high 32 bits hold `⌊w_plain·2^32/p⌋` — multiplying a Montgomery lane
///   by a plain constant keeps the lane in Montgomery form;
/// * fallback fields: `aux = 0` (unused).
///
/// Layout is pinned (`repr(C)`) so specialized kernels may store twiddle
/// banks as raw words and reinterpret them; see [`crate::packed`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(C)]
pub struct ShoupTwiddle<F> {
    /// The twiddle factor itself.
    pub w: F,
    /// Field-specific packed companion data (see type docs).
    pub aux: u64,
}

/// Field-level hooks for Shoup multiplication and lazy butterflies.
///
/// The default implementations are the *canonical fallback*: exact,
/// branch-for-branch identical to plain operator arithmetic, valid for any
/// field. Fields with suitable word sizes override them; either way the
/// kernels compute the exact same residues, so NTT outputs are
/// bit-identical across implementations once lanes are reduced.
pub trait ShoupField: Field {
    /// `true` when this field overrides the defaults with a real Shoup
    /// kernel (informational; used by benches and reports).
    const SHOUP_ACCELERATED: bool = false;

    /// Precomputes the companion for multiplications by `w`.
    #[inline]
    fn shoup_prepare(w: Self) -> ShoupTwiddle<Self> {
        ShoupTwiddle { w, aux: 0 }
    }

    /// Lane-in, lane-out product `a·w`. Accepts any valid lane `a` and
    /// returns a valid lane.
    #[inline]
    fn shoup_mul(a: Self, t: &ShoupTwiddle<Self>) -> Self {
        a * t.w
    }

    /// Decimation-in-time butterfly on lanes: `(u + v·w, u − v·w)`.
    #[inline]
    fn dit_butterfly(u: Self, v: Self, t: &ShoupTwiddle<Self>) -> (Self, Self) {
        let x = Self::shoup_mul(v, t);
        (u + x, u - x)
    }

    /// Decimation-in-frequency butterfly on lanes: `(u + v, (u − v)·w)`.
    #[inline]
    fn dif_butterfly(u: Self, v: Self, t: &ShoupTwiddle<Self>) -> (Self, Self) {
        (u + v, Self::shoup_mul(u - v, t))
    }

    /// Folds a lane back to the canonical representation.
    #[inline]
    fn reduce_lane(x: Self) -> Self {
        x
    }

    /// Preferred SIMD lane count for the packed butterfly layer: the
    /// number of elements a 256-bit vector register holds (4 for a
    /// 64-bit field, 8 for a 32-bit field, 1 for fallback fields, which
    /// keeps the vector kernels off their hot path entirely).
    const LANES: usize = 1;

    /// Packed Shoup product: `out[i] = a[i]·tw[i].w` on lanes.
    ///
    /// The default is a plain fixed-trip-count loop over
    /// [`ShoupField::shoup_mul`]; with branch-free scalar kernels the
    /// autovectorizer unrolls it into full-width SIMD where profitable.
    /// `tw` must hold at least `L` entries.
    #[inline]
    fn shoup_mul_lanes<const L: usize>(a: &mut [Self; L], tw: &[ShoupTwiddle<Self>]) {
        for (x, t) in a.iter_mut().zip(tw) {
            *x = Self::shoup_mul(*x, t);
        }
    }

    /// Packed DIF butterfly: `(u[i], v[i]) ← (u[i]+v[i], (u[i]−v[i])·tw[i].w)`
    /// on lanes. `tw` must hold at least `L` entries.
    #[inline]
    fn dif_butterfly_lanes<const L: usize>(
        u: &mut [Self; L],
        v: &mut [Self; L],
        tw: &[ShoupTwiddle<Self>],
    ) {
        for ((x, y), t) in u.iter_mut().zip(v.iter_mut()).zip(tw) {
            let (a, b) = Self::dif_butterfly(*x, *y, t);
            *x = a;
            *y = b;
        }
    }

    /// Packed DIT butterfly: `(u[i], v[i]) ← (u[i]+v[i]·w, u[i]−v[i]·w)`
    /// on lanes. `tw` must hold at least `L` entries.
    #[inline]
    fn dit_butterfly_lanes<const L: usize>(
        u: &mut [Self; L],
        v: &mut [Self; L],
        tw: &[ShoupTwiddle<Self>],
    ) {
        for ((x, y), t) in u.iter_mut().zip(v.iter_mut()).zip(tw) {
            let (a, b) = Self::dit_butterfly(*x, *y, t);
            *x = a;
            *y = b;
        }
    }

    /// Packed lane canonicalization.
    #[inline]
    fn reduce_lanes<const L: usize>(a: &mut [Self; L]) {
        for x in a.iter_mut() {
            *x = Self::reduce_lane(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BabyBear, Bn254Fr, Field, Goldilocks, PrimeField};
    use rand::{rngs::StdRng, SeedableRng};

    /// Exhaustive-ish agreement of the Shoup kernels with plain operator
    /// arithmetic, for every field (accelerated or fallback).
    fn kernels_match_plain_ops<F: ShoupField + PrimeField>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..2_000 {
            let a = F::random(&mut rng);
            let b = F::random(&mut rng);
            let w = F::random(&mut rng);
            let t = F::shoup_prepare(w);

            assert_eq!(F::reduce_lane(F::shoup_mul(a, &t)), a * w, "mul");

            let (hi, lo) = F::dit_butterfly(a, b, &t);
            assert_eq!(F::reduce_lane(hi), a + b * w, "dit hi");
            assert_eq!(F::reduce_lane(lo), a - b * w, "dit lo");

            let (s, d) = F::dif_butterfly(a, b, &t);
            assert_eq!(F::reduce_lane(s), a + b, "dif sum");
            assert_eq!(F::reduce_lane(d), (a - b) * w, "dif diff");
        }
    }

    /// Documents which fields advertise a real Shoup kernel; the value is
    /// a compile-time constant by design.
    #[allow(clippy::assertions_on_constants)]
    fn expect_accelerated<F: ShoupField>(expected: bool) {
        assert_eq!(F::SHOUP_ACCELERATED, expected);
    }

    #[test]
    fn goldilocks_kernels_match() {
        expect_accelerated::<Goldilocks>(true);
        kernels_match_plain_ops::<Goldilocks>(1);
    }

    #[test]
    fn babybear_kernels_match() {
        expect_accelerated::<BabyBear>(true);
        kernels_match_plain_ops::<BabyBear>(2);
    }

    #[test]
    fn bn254fr_fallback_matches() {
        expect_accelerated::<Bn254Fr>(false);
        kernels_match_plain_ops::<Bn254Fr>(3);
    }

    #[test]
    fn edge_twiddles() {
        // w ∈ {0, 1, −1, p−2} and a ∈ edge values.
        for w_raw in [0u64, 1, 2, crate::GOLDILOCKS_MODULUS - 1] {
            let w = Goldilocks::from_u64(w_raw);
            let t = Goldilocks::shoup_prepare(w);
            for a_raw in [0u64, 1, 0xffff_ffff, crate::GOLDILOCKS_MODULUS - 1] {
                let a = Goldilocks::from_u64(a_raw);
                assert_eq!(
                    Goldilocks::reduce_lane(Goldilocks::shoup_mul(a, &t)),
                    a * w,
                    "w={w_raw} a={a_raw}"
                );
            }
        }
        for w_raw in [0u64, 1, 2, crate::BABYBEAR_MODULUS as u64 - 1] {
            let w = BabyBear::from_u64(w_raw);
            let t = BabyBear::shoup_prepare(w);
            for a_raw in [0u64, 1, crate::BABYBEAR_MODULUS as u64 - 1] {
                let a = BabyBear::from_u64(a_raw);
                assert_eq!(
                    BabyBear::reduce_lane(BabyBear::shoup_mul(a, &t)),
                    a * w,
                    "w={w_raw} a={a_raw}"
                );
            }
        }
    }

    #[test]
    fn lanes_chain_through_repeated_butterflies() {
        // Feed butterfly outputs (still lazy) back in as inputs many times
        // and only reduce at the end — the Harvey invariant must hold.
        let mut rng = StdRng::seed_from_u64(9);
        let w = BabyBear::random(&mut rng);
        let t = BabyBear::shoup_prepare(w);
        let mut u = BabyBear::random(&mut rng);
        let mut v = BabyBear::random(&mut rng);
        let (mut pu, mut pv) = (u, v);
        for _ in 0..64 {
            (u, v) = BabyBear::dit_butterfly(u, v, &t);
            pu = {
                let x = pv * w;
                let new_pu = pu + x;
                let new_pv = pu - x;
                pv = new_pv;
                new_pu
            };
        }
        assert_eq!(BabyBear::reduce_lane(u), pu);
        assert_eq!(BabyBear::reduce_lane(v), pv);
    }
}
