//! Generic 256-bit Montgomery-form prime fields.
//!
//! [`Mont<P>`] implements a prime field for any modulus described by a
//! [`MontParams`] instance. The Montgomery constants (`R mod p`, `R² mod p`,
//! `-p⁻¹ mod 2^64`) are derived from the modulus at compile time, so adding
//! a new 256-bit field is a matter of writing one small params struct.
//!
//! Multiplication uses the CIOS (coarsely integrated operand scanning)
//! algorithm. Since every modulus used here is below `2^254`, the CIOS
//! intermediate fits in four limbs plus one carry and a single conditional
//! subtraction canonicalizes the result.

use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Field, PrimeField, U256};

/// Compile-time description of a 256-bit prime field.
pub trait MontParams:
    Copy + Clone + Send + Sync + Eq + core::hash::Hash + core::fmt::Debug + Default + 'static
{
    /// The field modulus. Must be odd and below `2^254`.
    const MODULUS: U256;
    /// Number of significant bits of the modulus.
    const MODULUS_BITS: u32;
    /// A small integer generating the full multiplicative group.
    const GENERATOR_U64: u64;
    /// Human-readable field name.
    const NAME: &'static str;
}

/// Computes `-p⁻¹ mod 2^64` by Newton iteration (valid for odd `p`).
const fn neg_inv64(p0: u64) -> u64 {
    let mut inv = 1u64;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(p0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Computes `2^k mod p` by `k` modular doublings.
const fn pow2_mod(k: u32, modulus: &U256) -> U256 {
    let mut r = U256::ONE;
    let mut i = 0;
    while i < k {
        r = r.double_mod(modulus);
        i += 1;
    }
    r
}

/// An element of the field described by `P`, stored in Montgomery form.
#[derive(Serialize, Deserialize)]
#[serde(transparent)]
pub struct Mont<P: MontParams> {
    repr: U256,
    #[serde(skip)]
    _marker: PhantomData<P>,
}

// Manual impls: derive would put unnecessary bounds on `P`.
impl<P: MontParams> Clone for Mont<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: MontParams> Copy for Mont<P> {}
impl<P: MontParams> PartialEq for Mont<P> {
    fn eq(&self, other: &Self) -> bool {
        self.repr == other.repr
    }
}
impl<P: MontParams> Eq for Mont<P> {}
impl<P: MontParams> core::hash::Hash for Mont<P> {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.repr.hash(state);
    }
}
impl<P: MontParams> Default for Mont<P> {
    fn default() -> Self {
        Self::ZERO
    }
}
impl<P: MontParams> core::fmt::Debug for Mont<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}({})", P::NAME, self.to_canonical_u256())
    }
}
impl<P: MontParams> core::fmt::Display for Mont<P> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_canonical_u256())
    }
}

impl<P: MontParams> Mont<P> {
    /// `-p⁻¹ mod 2^64`.
    const NEG_INV: u64 = neg_inv64(P::MODULUS.limbs()[0]);
    /// `R mod p`, i.e. the Montgomery form of 1.
    const R: U256 = pow2_mod(256, &P::MODULUS);
    /// `R² mod p`, used to enter Montgomery form.
    const R2: U256 = pow2_mod(512, &P::MODULUS);

    /// Builds an element directly from a Montgomery-form representation.
    pub(crate) const fn from_repr(repr: U256) -> Self {
        Self {
            repr,
            _marker: PhantomData,
        }
    }

    /// The raw Montgomery representation (for tests and serialization).
    pub const fn repr(&self) -> U256 {
        self.repr
    }

    /// CIOS Montgomery multiplication: returns `a · b · R⁻¹ mod p`.
    fn mont_mul(a: &U256, b: &U256) -> U256 {
        let p = P::MODULUS.limbs();
        let a = a.limbs();
        let b = b.limbs();
        let mut t = [0u64; 6];

        for &ai in a.iter() {
            // t += ai * b
            let mut carry = 0u64;
            for j in 0..4 {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry as u128;
                t[j] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[4] as u128 + carry as u128;
            t[4] = s as u64;
            t[5] = (s >> 64) as u64; // 0 or 1

            // Reduce one limb: m chosen so t + m*p ≡ 0 (mod 2^64).
            let m = t[0].wrapping_mul(Self::NEG_INV);
            let s = t[0] as u128 + m as u128 * p[0] as u128;
            let mut carry = (s >> 64) as u64;
            for j in 1..4 {
                let s = t[j] as u128 + m as u128 * p[j] as u128 + carry as u128;
                t[j - 1] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[4] as u128 + carry as u128;
            t[3] = s as u64;
            t[4] = t[5] + ((s >> 64) as u64); // each term ≤ 1, no overflow
            t[5] = 0;
        }

        debug_assert!(t[4] == 0, "CIOS overflow: modulus must be < 2^254");
        let r = U256::from_limbs([t[0], t[1], t[2], t[3]]);
        let (sub, borrow) = r.sbb(&P::MODULUS);
        if borrow {
            r
        } else {
            sub
        }
    }
}

impl<P: MontParams> Add for Mont<P> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::from_repr(self.repr.add_mod(&rhs.repr, &P::MODULUS))
    }
}
impl<P: MontParams> Sub for Mont<P> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::from_repr(self.repr.sub_mod(&rhs.repr, &P::MODULUS))
    }
}
impl<P: MontParams> Mul for Mont<P> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::from_repr(Self::mont_mul(&self.repr, &rhs.repr))
    }
}
impl<P: MontParams> Neg for Mont<P> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.repr.is_zero() {
            self
        } else {
            Self::from_repr(P::MODULUS.sbb(&self.repr).0)
        }
    }
}
impl<P: MontParams> AddAssign for Mont<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<P: MontParams> SubAssign for Mont<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<P: MontParams> MulAssign for Mont<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<P: MontParams> Sum for Mont<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}
impl<P: MontParams> Product for Mont<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

/// Generic Montgomery fields use the canonical [`crate::ShoupField`]
/// fallback: 256-bit operands do not fit the word-level Shoup scheme, and
/// the NTT kernels remain exact (just unaccelerated) through the defaults.
impl<P: MontParams> crate::ShoupField for Mont<P> {}

impl<P: MontParams> Field for Mont<P> {
    const ZERO: Self = Self::from_repr(U256::ZERO);
    const ONE: Self = Self::from_repr(Self::R);
    const TWO: Self = Self::from_repr(Self::R.double_mod(&P::MODULUS));

    fn inverse(&self) -> Option<Self> {
        if self.repr.is_zero() {
            return None;
        }
        // Fermat: a^(p-2).
        let exp = P::MODULUS.sbb(&U256::from_u64(2)).0;
        let inv = self.pow_u256(&exp);
        debug_assert!((*self * inv).is_one());
        Some(inv)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Sample 256 random bits and rejection-sample below the modulus.
        loop {
            let mut limbs = [0u64; 4];
            for l in &mut limbs {
                *l = rng.gen();
            }
            // Mask the top limb down to the modulus bit-width to make
            // acceptance likely.
            let top_bits = P::MODULUS_BITS.saturating_sub(192).min(64);
            if top_bits < 64 {
                limbs[3] &= (1u64 << top_bits) - 1;
            }
            let v = U256::from_limbs(limbs);
            if v.lt(&P::MODULUS) {
                // `v` is uniform in [0, p); interpret as Montgomery form,
                // which is a bijection, so the field element is uniform too.
                return Self::from_repr(v);
            }
        }
    }
}

impl<P: MontParams> PrimeField for Mont<P> {
    const MODULUS: U256 = P::MODULUS;
    const MODULUS_BITS: u32 = P::MODULUS_BITS;
    const GENERATOR: Self = {
        // GENERATOR_U64 · R mod p == GENERATOR_U64 doublings-free product;
        // computed as pow2_mod-based multiply would need runtime, so store
        // g·R by repeated modular addition at compile time.
        let mut acc = U256::ZERO;
        let mut i = 0;
        while i < P::GENERATOR_U64 {
            acc = acc.add_mod(&Self::R, &P::MODULUS);
            i += 1;
        }
        Self::from_repr(acc)
    };
    const NAME: &'static str = P::NAME;
    const BYTES: usize = 32;

    fn from_u64(v: u64) -> Self {
        Self::from_u256(U256::from_u64(v))
    }

    fn from_u256(v: U256) -> Self {
        let reduced = v.reduce(&P::MODULUS);
        // Enter Montgomery form: v · R = mont_mul(v, R²).
        Self::from_repr(Self::mont_mul(&reduced, &Self::R2))
    }

    fn to_canonical_u256(&self) -> U256 {
        // Leave Montgomery form: mont_mul(a·R, 1) = a.
        Self::mont_mul(&self.repr, &U256::ONE)
    }
}

/// Parameters of the BN254 (alt_bn128) scalar field.
///
/// `r = 21888242871839275222246405745257275088548364400416034343698204186575808495617`,
/// the group order of the BN254 G1/G2 groups. Its two-adicity of 28 makes it
/// the classic NTT field of SNARK provers (Groth16, PLONK on BN254).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bn254FrParams;

impl MontParams for Bn254FrParams {
    const MODULUS: U256 = U256::from_limbs([
        0x43e1_f593_f000_0001,
        0x2833_e848_79b9_7091,
        0xb850_45b6_8181_585d,
        0x3064_4e72_e131_a029,
    ]);
    const MODULUS_BITS: u32 = 254;
    const GENERATOR_U64: u64 = 5;
    const NAME: &'static str = "BN254-Fr";
}

/// The BN254 scalar field.
pub type Bn254Fr = Mont<Bn254FrParams>;

impl crate::TwoAdicField for Bn254Fr {
    const TWO_ADICITY: u32 = 28;
}

/// Parameters of the BN254 (alt_bn128) base field.
///
/// `q = 21888242871839275222246405745257275088696311157297823662689037894645226208583`.
/// `q - 1` is only divisible by 2 once, so this field supports no radix-2
/// NTT; it exists here as the coordinate field of the BN254 G1 curve used
/// by the MSM substrate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bn254FqParams;

impl MontParams for Bn254FqParams {
    const MODULUS: U256 = U256::from_limbs([
        0x3c20_8c16_d87c_fd47,
        0x9781_6a91_6871_ca8d,
        0xb850_45b6_8181_585d,
        0x3064_4e72_e131_a029,
    ]);
    const MODULUS_BITS: u32 = 254;
    const GENERATOR_U64: u64 = 3;
    const NAME: &'static str = "BN254-Fq";
}

/// The BN254 base field.
pub type Bn254Fq = Mont<Bn254FqParams>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwoAdicField;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn montgomery_constants_fr() {
        // NEG_INV: p0 * (-NEG_INV) ≡ 1 (mod 2^64)
        let p0 = Bn254FrParams::MODULUS.limbs()[0];
        assert_eq!(p0.wrapping_mul(Bn254Fr::NEG_INV.wrapping_neg()), 1);
        // R and R² are reduced.
        assert!(Bn254Fr::R.lt(&Bn254FrParams::MODULUS));
        assert!(Bn254Fr::R2.lt(&Bn254FrParams::MODULUS));
    }

    #[test]
    fn one_times_one() {
        assert_eq!(Bn254Fr::ONE * Bn254Fr::ONE, Bn254Fr::ONE);
        assert_eq!(Bn254Fq::ONE * Bn254Fq::ONE, Bn254Fq::ONE);
    }

    #[test]
    fn canonical_roundtrip() {
        for v in [0u64, 1, 2, 5, u64::MAX] {
            assert_eq!(Bn254Fr::from_u64(v).to_canonical_u256(), U256::from_u64(v),);
        }
    }

    #[test]
    fn small_integer_arithmetic() {
        let a = Bn254Fr::from_u64(123456789);
        let b = Bn254Fr::from_u64(987654321);
        assert_eq!(
            (a * b).to_canonical_u256(),
            U256::from_u128(123456789u128 * 987654321u128)
        );
        assert_eq!(
            (a + b).to_canonical_u256(),
            U256::from_u64(123456789 + 987654321)
        );
    }

    #[test]
    fn mul_matches_schoolbook_mod() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..500 {
            let a = Bn254Fr::random(&mut rng);
            let b = Bn254Fr::random(&mut rng);
            let prod = (a * b).to_canonical_u256();

            // Reference: widening multiply then slow 512-bit reduction done
            // as (hi·(2^256 mod p) + lo) mod p.
            let (lo, hi) = a.to_canonical_u256().widening_mul(&b.to_canonical_u256());
            let r_mod_p = pow2_mod(256, &Bn254FrParams::MODULUS);
            // hi * R mod p via from_u256 arithmetic in the field itself
            // would be circular; instead reduce via double-and-add.
            let mut acc = U256::ZERO;
            let hi_red = hi.reduce(&Bn254FrParams::MODULUS);
            let nbits = hi_red.bits();
            for i in (0..nbits).rev() {
                acc = acc.double_mod(&Bn254FrParams::MODULUS);
                if hi_red.bit(i as usize) {
                    acc = acc.add_mod(&r_mod_p, &Bn254FrParams::MODULUS);
                }
            }
            let expected =
                acc.add_mod(&lo.reduce(&Bn254FrParams::MODULUS), &Bn254FrParams::MODULUS);
            assert_eq!(prod, expected);
        }
    }

    #[test]
    fn fr_generator_is_nonresidue() {
        let g = Bn254Fr::GENERATOR;
        let mut exp = Bn254FrParams::MODULUS.sbb(&U256::ONE).0;
        exp = exp.shr1();
        assert_eq!(g.pow_u256(&exp), -Bn254Fr::ONE);
    }

    #[test]
    fn fq_generator_is_nonresidue() {
        let g = Bn254Fq::GENERATOR;
        let mut exp = Bn254FqParams::MODULUS.sbb(&U256::ONE).0;
        exp = exp.shr1();
        assert_eq!(g.pow_u256(&exp), -Bn254Fq::ONE);
    }

    #[test]
    fn fr_two_adic_generator_orders() {
        for bits in [0u32, 1, 2, 8, 16, 28] {
            let w = Bn254Fr::two_adic_generator(bits);
            let mut x = w;
            // x^(2^bits) by repeated squaring
            for _ in 0..bits {
                x = x.square();
            }
            assert!(x.is_one(), "bits={bits}");
            if bits > 0 {
                let mut y = w;
                for _ in 0..bits - 1 {
                    y = y.square();
                }
                assert!(!y.is_one(), "order too small at bits={bits}");
                assert_eq!(y, -Bn254Fr::ONE, "2^(bits-1) power must be -1");
            }
        }
    }

    #[test]
    fn inverse_random_fr_fq() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..50 {
            let a = Bn254Fr::random(&mut rng);
            assert!((a * a.inverse().unwrap()).is_one());
            let b = Bn254Fq::random(&mut rng);
            assert!((b * b.inverse().unwrap()).is_one());
        }
        assert!(Bn254Fr::ZERO.inverse().is_none());
    }

    #[test]
    fn negation_and_subtraction_agree() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..100 {
            let a = Bn254Fr::random(&mut rng);
            let b = Bn254Fr::random(&mut rng);
            assert_eq!(a - b, a + (-b));
            assert_eq!(a + (-a), Bn254Fr::ZERO);
        }
    }
}
