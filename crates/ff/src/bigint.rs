//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] is the limb-level workhorse behind the 256-bit Montgomery
//! fields ([`crate::Bn254Fr`], [`crate::Bn254Fq`]). Limbs are stored
//! little-endian (`limbs[0]` is least significant). All arithmetic is
//! constant-width; operations that can overflow return a carry/borrow flag
//! instead of panicking so callers can implement modular arithmetic on top.
//!
//! ```
//! use unintt_ff::U256;
//!
//! let a = U256::from_u64(7);
//! let b = U256::from_u64(5);
//! let (sum, carry) = a.adc(&b);
//! assert_eq!(sum, U256::from_u64(12));
//! assert!(!carry);
//! ```

use serde::{Deserialize, Serialize};

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value `0`.
    pub const ZERO: Self = Self([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: Self = Self([1, 0, 0, 0]);
    /// The all-ones value `2^256 - 1`.
    pub const MAX: Self = Self([u64::MAX; 4]);

    /// Creates a `U256` from a single `u64`.
    pub const fn from_u64(v: u64) -> Self {
        Self([v, 0, 0, 0])
    }

    /// Creates a `U256` from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        Self([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Creates a `U256` from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        Self(limbs)
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Returns `true` if the value is zero.
    pub const fn is_zero(&self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Returns `true` if the value is odd.
    pub const fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Addition with carry-out. Returns `(self + rhs mod 2^256, carry)`.
    pub const fn adc(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        let mut i = 0;
        while i < 4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
            i += 1;
        }
        (Self(out), carry != 0)
    }

    /// Subtraction with borrow-out. Returns `(self - rhs mod 2^256, borrow)`.
    pub const fn sbb(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        let mut i = 0;
        while i < 4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
            i += 1;
        }
        (Self(out), borrow != 0)
    }

    /// Full 256×256 → 512-bit multiplication. Returns `(lo, hi)`.
    pub const fn widening_mul(&self, rhs: &Self) -> (Self, Self) {
        let mut w = [0u64; 8];
        let mut i = 0;
        while i < 4 {
            let mut carry = 0u64;
            let mut j = 0;
            while j < 4 {
                let t =
                    (self.0[i] as u128) * (rhs.0[j] as u128) + (w[i + j] as u128) + (carry as u128);
                w[i + j] = t as u64;
                carry = (t >> 64) as u64;
                j += 1;
            }
            w[i + 4] = carry;
            i += 1;
        }
        (
            Self([w[0], w[1], w[2], w[3]]),
            Self([w[4], w[5], w[6], w[7]]),
        )
    }

    /// Modular addition: `(self + rhs) mod modulus`.
    ///
    /// Both inputs must already be reduced below `modulus`, and
    /// `modulus` must have its top bit clear enough that `a + b` fits in
    /// 257 bits (true for all field moduli used in this crate).
    pub const fn add_mod(&self, rhs: &Self, modulus: &Self) -> Self {
        let (sum, carry) = self.adc(rhs);
        let (reduced, borrow) = sum.sbb(modulus);
        if carry || !borrow {
            reduced
        } else {
            sum
        }
    }

    /// Modular subtraction: `(self - rhs) mod modulus`. Inputs must be reduced.
    pub const fn sub_mod(&self, rhs: &Self, modulus: &Self) -> Self {
        let (diff, borrow) = self.sbb(rhs);
        if borrow {
            let (wrapped, _) = diff.adc(modulus);
            wrapped
        } else {
            diff
        }
    }

    /// Doubles the value modulo `modulus`. Input must be reduced.
    pub const fn double_mod(&self, modulus: &Self) -> Self {
        self.add_mod(self, modulus)
    }

    /// Shifts right by one bit.
    pub const fn shr1(&self) -> Self {
        Self([
            (self.0[0] >> 1) | (self.0[1] << 63),
            (self.0[1] >> 1) | (self.0[2] << 63),
            (self.0[2] >> 1) | (self.0[3] << 63),
            self.0[3] >> 1,
        ])
    }

    /// Returns bit `i` (0 = least significant). Bits at or above 256 read as 0.
    pub const fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (position of highest set bit + 1); 0 for zero.
    pub const fn bits(&self) -> u32 {
        let mut i = 3;
        loop {
            if self.0[i] != 0 {
                return 64 * (i as u32) + (64 - self.0[i].leading_zeros());
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }

    /// Little-endian byte encoding.
    pub fn to_le_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Parses a little-endian byte encoding.
    pub fn from_le_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *limb = u64::from_le_bytes(b);
        }
        Self(limbs)
    }

    /// Compares `self < rhs`.
    pub const fn lt(&self, rhs: &Self) -> bool {
        let (_, borrow) = self.sbb(rhs);
        borrow
    }

    /// Computes `self mod modulus` for an arbitrary (not-yet-reduced) value
    /// via conditional subtraction after binary reduction.
    pub fn reduce(&self, modulus: &Self) -> Self {
        debug_assert!(!modulus.is_zero(), "reduction modulus must be nonzero");
        if self.lt(modulus) {
            return *self;
        }
        // Binary long division: accumulate remainder bit by bit.
        let mut rem = Self::ZERO;
        let nbits = self.bits();
        let mut i = nbits as i64 - 1;
        while i >= 0 {
            // rem = rem * 2 + bit
            let (shifted, _) = rem.adc(&rem);
            rem = shifted;
            if self.bit(i as usize) {
                rem.0[0] |= 1;
            }
            let (sub, borrow) = rem.sbb(modulus);
            if !borrow {
                rem = sub;
            }
            i -= 1;
        }
        rem
    }
}

impl core::fmt::Display for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "0x{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl core::fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_basic_and_carry() {
        let (s, c) = U256::from_u64(3).adc(&U256::from_u64(4));
        assert_eq!(s, U256::from_u64(7));
        assert!(!c);

        let (s, c) = U256::MAX.adc(&U256::ONE);
        assert_eq!(s, U256::ZERO);
        assert!(c);
    }

    #[test]
    fn sbb_basic_and_borrow() {
        let (d, b) = U256::from_u64(10).sbb(&U256::from_u64(4));
        assert_eq!(d, U256::from_u64(6));
        assert!(!b);

        let (d, b) = U256::ZERO.sbb(&U256::ONE);
        assert_eq!(d, U256::MAX);
        assert!(b);
    }

    #[test]
    fn widening_mul_small() {
        let (lo, hi) = U256::from_u64(1 << 32).widening_mul(&U256::from_u64(1 << 32));
        assert_eq!(lo, U256::from_limbs([0, 1, 0, 0]));
        assert_eq!(hi, U256::ZERO);
    }

    #[test]
    fn widening_mul_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let (lo, hi) = U256::MAX.widening_mul(&U256::MAX);
        assert_eq!(lo, U256::ONE);
        assert_eq!(
            hi,
            U256::from_limbs([u64::MAX - 1, u64::MAX, u64::MAX, u64::MAX])
        );
    }

    #[test]
    fn add_sub_mod_roundtrip() {
        let m = U256::from_limbs([0xfffffffefffffc2f, u64::MAX, u64::MAX, u64::MAX]);
        let a = U256::from_limbs([5, 6, 7, 8]);
        let b = U256::from_limbs([9, 10, 11, 12]);
        let s = a.add_mod(&b, &m);
        assert_eq!(s.sub_mod(&b, &m), a);
        assert_eq!(s.sub_mod(&a, &m), b);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::from_limbs([0, 0, 0, 1]).bits(), 193);
        assert!(U256::from_limbs([0, 0, 0, 1]).bit(192));
        assert!(!U256::from_limbs([0, 0, 0, 1]).bit(191));
        assert!(!U256::ONE.bit(300));
    }

    #[test]
    fn shr1_shifts_across_limbs() {
        let v = U256::from_limbs([0, 1, 0, 0]); // 2^64
        assert_eq!(v.shr1(), U256::from_u64(1 << 63));
    }

    #[test]
    fn reduce_matches_manual() {
        let m = U256::from_u64(97);
        let v = U256::from_u64(1000);
        assert_eq!(v.reduce(&m), U256::from_u64(1000 % 97));

        // Large value: 2^255 mod 97. Compute expected with repeated squaring on u64.
        let big = U256::from_limbs([0, 0, 0, 1 << 63]);
        let mut expected = 1u64;
        for _ in 0..255 {
            expected = (expected * 2) % 97;
        }
        assert_eq!(big.reduce(&m), U256::from_u64(expected));
    }

    #[test]
    fn byte_roundtrip() {
        let v = U256::from_limbs([1, 2, 3, 0xdeadbeef]);
        assert_eq!(U256::from_le_bytes(v.to_le_bytes()), v);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(
            U256::ONE.to_string(),
            "0x0000000000000000000000000000000000000000000000000000000000000001"
        );
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(U256::from_u64(2).lt(&U256::from_limbs([1, 1, 0, 0])));
        assert!(!U256::MAX.lt(&U256::ZERO));
        assert!(U256::from_u64(5) < U256::from_u64(6));
    }
}
