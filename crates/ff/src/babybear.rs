//! The BabyBear field `F_p` with `p = 2^31 - 2^27 + 1 = 2013265921`.
//!
//! BabyBear is the 31-bit field used by RISC Zero and Plonky3: four
//! elements pack into a 128-bit vector lane, and the two-adicity of 27
//! supports NTTs up to length `2^27`. Elements are kept in Montgomery form
//! (`R = 2^32`) internally; the representation is an implementation detail
//! invisible through the [`Field`]/[`PrimeField`] API.

use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Field, PrimeField, ShoupField, ShoupTwiddle, TwoAdicField, U256};

/// The BabyBear prime `2^31 - 2^27 + 1`.
pub const BABYBEAR_MODULUS: u32 = 0x7800_0001;

/// `-p^{-1} mod 2^32`, computed by Newton iteration at compile time.
const MONT_NEG_INV: u32 = {
    // Five Newton steps double the valid bits each time: 2^32 needs 5.
    let p = BABYBEAR_MODULUS;
    let mut inv = 1u32;
    let mut i = 0;
    while i < 5 {
        inv = inv.wrapping_mul(2u32.wrapping_sub(p.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
};

/// `R^2 mod p` where `R = 2^32`, for converting into Montgomery form.
const MONT_R2: u32 = {
    // 2^64 mod p by 64 modular doublings of 1.
    let p = BABYBEAR_MODULUS as u64;
    let mut r = 1u64;
    let mut i = 0;
    while i < 64 {
        r <<= 1;
        if r >= p {
            r -= p;
        }
        i += 1;
    }
    r as u32
};

/// `R mod p`, the Montgomery form of 1.
const MONT_R: u32 = {
    let p = BABYBEAR_MODULUS as u64;
    ((1u64 << 32) % p) as u32
};

/// An element of the BabyBear field (Montgomery form internally).
///
/// `#[repr(transparent)]` is a guarantee, not an accident: the packed
/// SIMD kernels (see [`crate::packed`]) reinterpret `&mut [BabyBear]`
/// as `&mut [u32]` lane buffers, which is only sound with a pinned layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct BabyBear(u32);

impl BabyBear {
    /// Montgomery reduction of a 64-bit value: returns `x · R^{-1} mod p`.
    #[inline]
    fn mont_reduce(x: u64) -> u32 {
        let m = (x as u32).wrapping_mul(MONT_NEG_INV);
        let t = ((x as u128 + m as u128 * BABYBEAR_MODULUS as u128) >> 32) as u32;
        if t >= BABYBEAR_MODULUS {
            t - BABYBEAR_MODULUS
        } else {
            t
        }
    }

    #[inline]
    fn mont_mul(a: u32, b: u32) -> u32 {
        Self::mont_reduce(a as u64 * b as u64)
    }

    /// The canonical `u32` value in `[0, p)`.
    #[inline]
    pub fn value(&self) -> u32 {
        Self::mont_reduce(self.0 as u64)
    }

    /// The raw Montgomery lane word (no conversion). Used by the packed
    /// kernels, which operate on Montgomery words directly.
    #[inline]
    pub(crate) const fn raw(self) -> u32 {
        self.0
    }
}

impl Add for BabyBear {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut s = self.0 + rhs.0; // both < p < 2^31, no overflow
        if s >= BABYBEAR_MODULUS {
            s -= BABYBEAR_MODULUS;
        }
        Self(s)
    }
}

impl Sub for BabyBear {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow {
            d.wrapping_add(BABYBEAR_MODULUS)
        } else {
            d
        })
    }
}

impl Mul for BabyBear {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(Self::mont_mul(self.0, rhs.0))
    }
}

impl Neg for BabyBear {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self(BABYBEAR_MODULUS - self.0)
        }
    }
}

impl AddAssign for BabyBear {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl SubAssign for BabyBear {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl MulAssign for BabyBear {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for BabyBear {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}
impl Product for BabyBear {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl core::fmt::Display for BabyBear {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.value())
    }
}

impl Field for BabyBear {
    const ZERO: Self = Self(0);
    const ONE: Self = Self(MONT_R);
    const TWO: Self = Self({
        let two = 2 * MONT_R as u64;
        (if two >= BABYBEAR_MODULUS as u64 {
            two - BABYBEAR_MODULUS as u64
        } else {
            two
        }) as u32
    });

    fn inverse(&self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        let inv = self.pow(BABYBEAR_MODULUS as u64 - 2);
        debug_assert!((*self * inv).is_one());
        Some(inv)
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = rng.gen::<u32>() & 0x7fff_ffff;
            if v < BABYBEAR_MODULUS {
                return Self::from_u64(v as u64);
            }
        }
    }
}

impl PrimeField for BabyBear {
    const MODULUS: U256 = U256::from_u64(BABYBEAR_MODULUS as u64);
    const MODULUS_BITS: u32 = 31;
    // 31 generates F_p^*: p - 1 = 2^27 · 3 · 5 (checked in tests).
    const GENERATOR: Self = Self({
        // 31 in Montgomery form: 31 * R mod p, computed at compile time.
        let p = BABYBEAR_MODULUS as u64;
        ((31u64 << 32) % p) as u32
    });
    const NAME: &'static str = "BabyBear";
    const BYTES: usize = 4;

    #[inline]
    fn from_u64(v: u64) -> Self {
        let reduced = (v % BABYBEAR_MODULUS as u64) as u32;
        Self(Self::mont_mul(reduced, MONT_R2))
    }

    fn from_u256(v: U256) -> Self {
        let r = v.reduce(&Self::MODULUS);
        Self::from_u64(r.limbs()[0])
    }

    fn to_canonical_u256(&self) -> U256 {
        U256::from_u64(self.value() as u64)
    }
}

impl TwoAdicField for BabyBear {
    const TWO_ADICITY: u32 = 27;
}

/// Twice the modulus: the upper bound of a lazy BabyBear lane.
const TWO_P: u64 = 2 * BABYBEAR_MODULUS as u64;

/// Harvey/Shoup kernels. Lanes are raw `u32` values in `[0, 2p)` — the
/// redundant range fits the word comfortably (`2p < 2^32`), so butterflies
/// skip the final canonicalization and a whole conditional subtraction per
/// add/sub until [`ShoupField::reduce_lane`] runs at the end of a kernel.
///
/// Twiddle companions are stored in **plain** (non-Montgomery) form:
/// multiplying a Montgomery lane `x·R` by a plain constant `w` yields
/// `(x·w)·R`, i.e. the product stays in Montgomery form without a
/// Montgomery reduction — this is what makes Shoup multiplication
/// compatible with the internal representation.
impl ShoupField for BabyBear {
    const SHOUP_ACCELERATED: bool = true;
    /// Eight 32-bit lanes fill a 256-bit vector register.
    const LANES: usize = 8;

    #[inline]
    fn shoup_prepare(w: Self) -> ShoupTwiddle<Self> {
        let plain = w.value() as u64; // out of Montgomery form
        let quot = (plain << 32) / BABYBEAR_MODULUS as u64; // ⌊w·2^32/p⌋
        ShoupTwiddle {
            w,
            aux: (quot << 32) | plain,
        }
    }

    #[inline]
    fn shoup_mul(a: Self, t: &ShoupTwiddle<Self>) -> Self {
        let plain = t.aux & 0xffff_ffff;
        let quot = t.aux >> 32;
        let q = (a.0 as u64 * quot) >> 32;
        // a·w − q·p ∈ [0, 2p) for any 32-bit lane `a`: exact in u64.
        Self((a.0 as u64 * plain - q * BABYBEAR_MODULUS as u64) as u32)
    }

    #[inline]
    fn dit_butterfly(u: Self, v: Self, t: &ShoupTwiddle<Self>) -> (Self, Self) {
        let x = Self::shoup_mul(v, t).0 as u64; // [0, 2p)
        let s = u.0 as u64 + x; // [0, 4p): one conditional step back to [0, 2p)
        let s = if s >= TWO_P { s - TWO_P } else { s };
        let d = u.0 as u64 + TWO_P - x; // (0, 4p)
        let d = if d >= TWO_P { d - TWO_P } else { d };
        (Self(s as u32), Self(d as u32))
    }

    #[inline]
    fn dif_butterfly(u: Self, v: Self, t: &ShoupTwiddle<Self>) -> (Self, Self) {
        let s = u.0 as u64 + v.0 as u64;
        let s = if s >= TWO_P { s - TWO_P } else { s };
        let d = u.0 as u64 + TWO_P - v.0 as u64;
        let d = if d >= TWO_P { d - TWO_P } else { d };
        (Self(s as u32), Self::shoup_mul(Self(d as u32), t))
    }

    #[inline]
    fn reduce_lane(x: Self) -> Self {
        Self(if x.0 >= BABYBEAR_MODULUS {
            x.0 - BABYBEAR_MODULUS
        } else {
            x.0
        })
    }
}

impl From<u32> for BabyBear {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn montgomery_constants() {
        // R * R^{-1} ≡ 1: reducing R should give 1.
        assert_eq!(BabyBear::mont_reduce(MONT_R as u64), 1);
        // -p * p^{-1} ≡ 1 (mod 2^32)
        assert_eq!(BABYBEAR_MODULUS.wrapping_mul(MONT_NEG_INV), u32::MAX);
        assert_eq!(
            BABYBEAR_MODULUS.wrapping_mul(MONT_NEG_INV.wrapping_neg()),
            1
        );
    }

    #[test]
    fn roundtrip_values() {
        for v in [0u64, 1, 2, 31, 12345, BABYBEAR_MODULUS as u64 - 1] {
            assert_eq!(BabyBear::from_u64(v).value(), v as u32);
        }
        assert_eq!(BabyBear::from_u64(BABYBEAR_MODULUS as u64).value(), 0);
    }

    #[test]
    fn mul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = BabyBear::random(&mut rng);
            let b = BabyBear::random(&mut rng);
            let expected = (a.value() as u64 * b.value() as u64 % BABYBEAR_MODULUS as u64) as u32;
            assert_eq!((a * b).value(), expected);
        }
    }

    #[test]
    fn generator_properties() {
        let g = BabyBear::GENERATOR;
        let p1 = BABYBEAR_MODULUS as u64 - 1;
        // p - 1 = 2^27 * 3 * 5
        assert_eq!(p1, (1 << 27) * 15);
        assert_eq!(g.pow(p1 / 2), -BabyBear::ONE);
        assert!(!g.pow(p1 / 3).is_one());
        assert!(!g.pow(p1 / 5).is_one());
        assert!(g.pow(p1).is_one());
    }

    #[test]
    fn two_adic_generator_orders() {
        for bits in [0u32, 1, 4, 10, 27] {
            let w = BabyBear::two_adic_generator(bits);
            assert!(w.pow(1u64 << bits).is_one());
            if bits > 0 {
                assert!(!w.pow(1u64 << (bits - 1)).is_one());
            }
        }
    }

    #[test]
    #[should_panic(expected = "two-adicity")]
    fn two_adic_generator_beyond_adicity_panics() {
        let _ = BabyBear::two_adic_generator(28);
    }

    #[test]
    fn inverse_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let a = BabyBear::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert!((a * a.inverse().unwrap()).is_one());
        }
        assert!(BabyBear::ZERO.inverse().is_none());
    }
}
