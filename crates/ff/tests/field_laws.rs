//! Property-based field-axiom tests, instantiated for every concrete field.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{BabyBear, Bn254Fq, Bn254Fr, Field, Goldilocks, PrimeField};

/// Derives a field element deterministically from an arbitrary seed so
/// proptest can shrink over the seed space.
fn elem<F: Field>(seed: u64) -> F {
    let mut rng = StdRng::seed_from_u64(seed);
    F::random(&mut rng)
}

macro_rules! field_laws {
    ($modname:ident, $field:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn add_commutative(a in any::<u64>(), b in any::<u64>()) {
                    let (x, y) = (elem::<$field>(a), elem::<$field>(b));
                    prop_assert_eq!(x + y, y + x);
                }

                #[test]
                fn add_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z) = (elem::<$field>(a), elem::<$field>(b), elem::<$field>(c));
                    prop_assert_eq!((x + y) + z, x + (y + z));
                }

                #[test]
                fn mul_commutative(a in any::<u64>(), b in any::<u64>()) {
                    let (x, y) = (elem::<$field>(a), elem::<$field>(b));
                    prop_assert_eq!(x * y, y * x);
                }

                #[test]
                fn mul_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z) = (elem::<$field>(a), elem::<$field>(b), elem::<$field>(c));
                    prop_assert_eq!((x * y) * z, x * (y * z));
                }

                #[test]
                fn distributive(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z) = (elem::<$field>(a), elem::<$field>(b), elem::<$field>(c));
                    prop_assert_eq!(x * (y + z), x * y + x * z);
                }

                #[test]
                fn additive_inverse(a in any::<u64>()) {
                    let x = elem::<$field>(a);
                    prop_assert_eq!(x + (-x), <$field>::ZERO);
                    prop_assert_eq!(x - x, <$field>::ZERO);
                }

                #[test]
                fn multiplicative_inverse(a in any::<u64>()) {
                    let x = elem::<$field>(a);
                    if !x.is_zero() {
                        prop_assert_eq!(x * x.inverse().unwrap(), <$field>::ONE);
                    }
                }

                #[test]
                fn identities(a in any::<u64>()) {
                    let x = elem::<$field>(a);
                    prop_assert_eq!(x + <$field>::ZERO, x);
                    prop_assert_eq!(x * <$field>::ONE, x);
                    prop_assert_eq!(x * <$field>::ZERO, <$field>::ZERO);
                }

                #[test]
                fn square_matches_mul(a in any::<u64>()) {
                    let x = elem::<$field>(a);
                    prop_assert_eq!(x.square(), x * x);
                    prop_assert_eq!(x.double(), x + x);
                    prop_assert_eq!(x.double().halve(), x);
                }

                #[test]
                fn pow_laws(a in any::<u64>(), e1 in 0u64..64, e2 in 0u64..64) {
                    let x = elem::<$field>(a);
                    prop_assert_eq!(x.pow(e1) * x.pow(e2), x.pow(e1 + e2));
                }

                #[test]
                fn canonical_roundtrip(a in any::<u64>()) {
                    let x = elem::<$field>(a);
                    prop_assert_eq!(<$field>::from_u256(x.to_canonical_u256()), x);
                }

                #[test]
                fn from_i64_negates(v in 1i64..i64::MAX) {
                    let pos = <$field>::from_i64(v);
                    let neg = <$field>::from_i64(-v);
                    prop_assert_eq!(pos + neg, <$field>::ZERO);
                }
            }
        }
    };
}

field_laws!(goldilocks_laws, Goldilocks);
field_laws!(babybear_laws, BabyBear);
field_laws!(bn254_fr_laws, Bn254Fr);
field_laws!(bn254_fq_laws, Bn254Fq);
