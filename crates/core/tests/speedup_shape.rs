//! Shape tests: the simulated performance relationships the paper reports
//! must hold (who wins, roughly by how much, and where crossovers fall).

use unintt_core::{single_gpu, FourStepMultiGpuEngine, UniNttEngine, UniNttOptions};
use unintt_ff::{Bn254Fr, Goldilocks, TwoAdicField};
use unintt_gpu_sim::{presets, FieldSpec, Machine};

fn unintt_time<F: TwoAdicField>(log_n: u32, gpus: usize, fs: FieldSpec) -> f64 {
    let cfg = presets::a100_nvlink(gpus);
    let engine = UniNttEngine::<F>::new(log_n, &cfg, UniNttOptions::full(), fs);
    let mut m = Machine::new(cfg, fs);
    engine.simulate_forward(&mut m, 1);
    m.max_clock_ns()
}

fn single_time<F: TwoAdicField>(log_n: u32, fs: FieldSpec) -> f64 {
    let cfg = presets::a100_nvlink(8);
    let engine = single_gpu::engine::<F>(log_n, &cfg, fs);
    let mut m = single_gpu::machine(&cfg, fs);
    engine.simulate_forward(&mut m, 1);
    m.max_clock_ns()
}

fn baseline_time<F: TwoAdicField>(log_n: u32, gpus: usize, fs: FieldSpec) -> f64 {
    let cfg = presets::a100_nvlink(gpus);
    let engine = FourStepMultiGpuEngine::<F>::new(log_n, &cfg, fs);
    // Cost path via the inner engine is private; use the functional path at
    // small-enough sizes in the other tests. Here reconstruct with options:
    let mut opts = UniNttOptions::none();
    opts.natural_output = true;
    let inner = UniNttEngine::<F>::new(log_n, &cfg, opts, fs);
    let mut m = Machine::new(cfg, fs);
    // natural→cyclic conversion ≈ one extra all-to-all + pack, dominated by
    // the all-to-all; charge it explicitly for the shape check.
    inner.simulate_forward(&mut m, 1);
    let _ = engine;
    m.max_clock_ns()
}

#[test]
fn multi_gpu_wins_at_large_sizes() {
    for (fs, name) in [
        (FieldSpec::goldilocks(), "goldilocks"),
        (FieldSpec::bn254_fr(), "bn254"),
    ] {
        for log_n in [22u32, 24, 26] {
            let t1 = if name == "goldilocks" {
                single_time::<Goldilocks>(log_n, fs)
            } else {
                single_time::<Bn254Fr>(log_n, fs)
            };
            let t8 = if name == "goldilocks" {
                unintt_time::<Goldilocks>(log_n, 8, fs)
            } else {
                unintt_time::<Bn254Fr>(log_n, 8, fs)
            };
            let speedup = t1 / t8;
            println!(
                "{name} 2^{log_n}: single={:.1}us  unintt8={:.1}us  speedup={speedup:.2}x",
                t1 / 1e3,
                t8 / 1e3
            );
            assert!(
                speedup > 1.0,
                "8 GPUs must beat 1 at 2^{log_n} {name}: {speedup:.2}"
            );
        }
    }
}

#[test]
fn unintt_beats_naive_baseline() {
    for log_n in [20u32, 24] {
        let u = unintt_time::<Bn254Fr>(log_n, 8, FieldSpec::bn254_fr());
        let b = baseline_time::<Bn254Fr>(log_n, 8, FieldSpec::bn254_fr());
        println!(
            "2^{log_n}: unintt={:.1}us naive={:.1}us ratio={:.2}x",
            u / 1e3,
            b / 1e3,
            b / u
        );
        assert!(b > u, "naive baseline must be slower at 2^{log_n}");
    }
}

#[test]
fn small_sizes_do_not_benefit_from_many_gpus() {
    // At small N, all-to-all latency dominates: 8 GPUs should NOT beat 1.
    let fs = FieldSpec::goldilocks();
    let t1 = single_time::<Goldilocks>(12, fs);
    let t8 = unintt_time::<Goldilocks>(12, 8, fs);
    println!("2^12: single={:.1}us unintt8={:.1}us", t1 / 1e3, t8 / 1e3);
    assert!(t8 > t1, "latency should dominate tiny transforms");
}
