//! Kernel-footprint builders: how plan + options become [`KernelProfile`]s.
//!
//! Every formula here is the byte/op accounting a CUDA programmer would do
//! on a napkin; the switches in [`UniNttOptions`] add or remove exactly the
//! traffic the corresponding optimization saves. Keeping the accounting in
//! one module makes the ablation study (E6) auditable line by line.

use unintt_gpu_sim::{bank_conflict_degree, coalescing_efficiency, FieldSpec, KernelProfile};

use crate::{DecompositionPlan, UniNttOptions};

/// Average shared-memory access stride (in 4-byte words) of an unpadded
/// butterfly network — the value the O3 layout optimization pads away.
const UNPADDED_SHARED_STRIDE: usize = 8;

/// Global-memory element stride charged to unpadded (non-block-cyclic)
/// layouts at pass boundaries.
const UNPADDED_GLOBAL_STRIDE: usize = 8;

/// Profile of one fused global-memory pass of the local hierarchical NTT.
///
/// A pass streams the whole `batch × 2^log_m` shard through shared memory
/// once, performing `radix_log` butterfly stages per element: the lowest
/// `min(radix_log, log_warp_tile)` stages in registers via shuffles, the
/// rest through shared memory.
pub fn local_pass_profile(
    plan: &DecompositionPlan,
    opts: &UniNttOptions,
    field: FieldSpec,
    radix_log: u32,
    batch: u64,
    fused_boundary_twiddle: bool,
) -> KernelProfile {
    let elems = batch * (1u64 << plan.log_m);
    let bytes = elems * field.elem_bytes as u64;
    let mut p = KernelProfile::named("unintt-local-pass");

    p.blocks = (elems >> plan.log_block_tile.min(plan.log_m)).max(1);

    p.global_bytes_read = bytes;
    p.global_bytes_written = bytes;
    if !opts.twiddle_on_the_fly {
        // Twiddle tables streamed alongside the data: one factor per
        // element per pass.
        p.global_bytes_read += bytes;
    }
    p.coalescing_efficiency = if opts.padded_layout {
        1.0
    } else {
        coalescing_efficiency(UNPADDED_GLOBAL_STRIDE, field.elem_bytes)
    };

    let butterflies = (elems / 2) * radix_log as u64;
    p.field_muls = butterflies;
    p.field_adds = 2 * butterflies;
    if opts.twiddle_on_the_fly {
        // Regenerating twiddles costs one extra multiply per butterfly.
        p.field_muls += butterflies;
    }
    if fused_boundary_twiddle {
        // O1 on: the inter-pass twiddle rides along as one multiply per
        // element inside this kernel.
        p.field_muls += elems;
    }

    let warp_stages = radix_log.min(plan.log_warp_tile) as u64;
    let shared_stages = radix_log as u64 - warp_stages;
    p.shuffle_ops = elems * warp_stages;
    // Tile load + store through shared memory, plus two accesses per
    // element per shared-memory stage.
    p.shared_accesses = 2 * elems + 2 * elems * shared_stages;
    p.bank_conflict_degree = if opts.padded_layout {
        1.0
    } else {
        bank_conflict_degree(UNPADDED_SHARED_STRIDE)
    };

    p
}

/// Standalone twiddle-multiplication kernel (charged only when O1 is off):
/// read every element, multiply, write it back.
pub fn twiddle_kernel_profile(
    plan: &DecompositionPlan,
    opts: &UniNttOptions,
    field: FieldSpec,
    batch: u64,
) -> KernelProfile {
    let elems = batch * (1u64 << plan.log_m);
    let bytes = elems * field.elem_bytes as u64;
    let mut p = KernelProfile::named("twiddle-mul");
    p.blocks = (elems / 256).max(1);
    p.global_bytes_read = bytes;
    p.global_bytes_written = bytes;
    if !opts.twiddle_on_the_fly {
        p.global_bytes_read += bytes;
    }
    p.field_muls = elems + if opts.twiddle_on_the_fly { elems } else { 0 };
    p.coalescing_efficiency = 1.0;
    p
}

/// Pack or unpack kernel around an exchange (charged only when O4 is off):
/// a full read+write pass, strided on one side.
pub fn pack_kernel_profile(
    plan: &DecompositionPlan,
    field: FieldSpec,
    batch: u64,
) -> KernelProfile {
    let elems = batch * (1u64 << plan.log_m);
    let bytes = elems * field.elem_bytes as u64;
    let mut p = KernelProfile::named("exchange-pack");
    p.blocks = (elems / 256).max(1);
    p.global_bytes_read = bytes;
    p.global_bytes_written = bytes;
    // A transpose-style pack is strided on exactly one side.
    p.coalescing_efficiency =
        (1.0 + coalescing_efficiency(UNPADDED_GLOBAL_STRIDE, field.elem_bytes)) / 2.0;
    p
}

/// The cross-GPU stage: `2^log_m / G` transforms of length `G` per device,
/// after the all-to-all has localized each length-`G` vector.
pub fn outer_stage_profile(
    plan: &DecompositionPlan,
    opts: &UniNttOptions,
    field: FieldSpec,
    batch: u64,
) -> KernelProfile {
    let elems = batch * (1u64 << plan.log_m);
    let bytes = elems * field.elem_bytes as u64;
    let g = plan.num_gpus() as u64;
    let mut p = KernelProfile::named("unintt-outer");
    p.blocks = (elems / 256).max(1);
    p.global_bytes_read = bytes;
    p.global_bytes_written = bytes;
    p.coalescing_efficiency = if opts.padded_layout { 1.0 } else { 0.5 };
    let butterflies = if g > 1 {
        (elems / 2) * plan.log_g as u64
    } else {
        0
    };
    p.field_muls = butterflies;
    p.field_adds = 2 * butterflies;
    p
}

/// A scale multiplication fused into an adjacent pass: pure ALU cost, no
/// extra memory traffic (the elements are already in registers).
pub fn fused_scale_profile(
    plan: &DecompositionPlan,
    field: FieldSpec,
    batch: u64,
) -> KernelProfile {
    let elems = batch * (1u64 << plan.log_m);
    let mut p = KernelProfile::named("fused-coset-scale");
    p.blocks = (elems >> plan.log_block_tile.min(plan.log_m)).max(1);
    p.field_muls = elems;
    let _ = field;
    p
}

/// Element-wise scale kernel (the `1/n` of an inverse transform when it
/// cannot be fused).
pub fn scale_kernel_profile(
    plan: &DecompositionPlan,
    field: FieldSpec,
    batch: u64,
) -> KernelProfile {
    let elems = batch * (1u64 << plan.log_m);
    let bytes = elems * field.elem_bytes as u64;
    let mut p = KernelProfile::named("scale");
    p.blocks = (elems / 256).max(1);
    p.global_bytes_read = bytes;
    p.global_bytes_written = bytes;
    p.field_muls = elems;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_gpu_sim::presets;

    fn plan() -> DecompositionPlan {
        DecompositionPlan::plan(24, &presets::a100_nvlink(8), 8)
    }

    #[test]
    fn fused_twiddle_removes_standalone_traffic_but_adds_muls() {
        let plan = plan();
        let f = FieldSpec::goldilocks();
        let fused = local_pass_profile(&plan, &UniNttOptions::full(), f, 10, 1, true);
        let unfused = local_pass_profile(&plan, &UniNttOptions::full(), f, 10, 1, false);
        assert!(fused.field_muls > unfused.field_muls);
        assert_eq!(fused.global_bytes_read, unfused.global_bytes_read);
    }

    #[test]
    fn table_twiddles_add_read_traffic() {
        let plan = plan();
        let f = FieldSpec::goldilocks();
        let otf = local_pass_profile(&plan, &UniNttOptions::full(), f, 10, 1, false);
        let table = local_pass_profile(&plan, &UniNttOptions::ablate(2), f, 10, 1, false);
        assert!(table.global_bytes_read > otf.global_bytes_read);
        assert!(otf.field_muls > table.field_muls, "otf recomputes in ALU");
    }

    #[test]
    fn unpadded_layout_hurts_both_memories() {
        let plan = plan();
        let f = FieldSpec::goldilocks();
        let padded = local_pass_profile(&plan, &UniNttOptions::full(), f, 10, 1, false);
        let raw = local_pass_profile(&plan, &UniNttOptions::ablate(3), f, 10, 1, false);
        assert!(raw.coalescing_efficiency < padded.coalescing_efficiency);
        assert!(raw.bank_conflict_degree > padded.bank_conflict_degree);
    }

    #[test]
    fn batching_scales_linear_counters() {
        let plan = plan();
        let f = FieldSpec::goldilocks();
        let one = local_pass_profile(&plan, &UniNttOptions::full(), f, 10, 1, false);
        let four = local_pass_profile(&plan, &UniNttOptions::full(), f, 10, 4, false);
        assert_eq!(four.global_bytes_read, 4 * one.global_bytes_read);
        assert_eq!(four.field_muls, 4 * one.field_muls);
    }

    #[test]
    fn warp_stages_capped_at_warp_tile() {
        let plan = plan();
        let f = FieldSpec::goldilocks();
        let small = local_pass_profile(&plan, &UniNttOptions::full(), f, 3, 1, false);
        let big = local_pass_profile(&plan, &UniNttOptions::full(), f, 11, 1, false);
        let m = 1u64 << plan.log_m;
        assert_eq!(small.shuffle_ops, m * 3);
        assert_eq!(big.shuffle_ops, m * 5, "only 5 stages fit in a warp");
        assert!(big.shared_accesses > small.shared_accesses);
    }

    #[test]
    fn outer_stage_trivial_for_single_gpu() {
        let plan1 = DecompositionPlan::plan(20, &presets::a100_nvlink(1), 8);
        let p = outer_stage_profile(&plan1, &UniNttOptions::full(), FieldSpec::goldilocks(), 1);
        assert_eq!(p.field_muls, 0);
    }
}
