//! # unintt-core — the UniNTT multi-GPU NTT engine
//!
//! Reproduction of the core contribution of *"Accelerating Number Theoretic
//! Transform with Multi-GPU Systems for Efficient Zero Knowledge Proof"*
//! (ASPLOS 2025): a recursive, overhead-free decomposition that lets every
//! level of the GPU hierarchy (warp / thread block / GPU / multi-GPU) run
//! the same NTT computation at its own scale, with a uniform set of
//! optimizations instantiated per level.
//!
//! * [`UniNttEngine`] — the paper's engine, running on the
//!   [`unintt_gpu_sim::Machine`] simulator (functional data movement,
//!   analytical timing).
//! * [`FourStepMultiGpuEngine`] — the conventional transpose-based
//!   multi-GPU baseline (3 all-to-alls, standalone pack/twiddle kernels).
//! * [`single_gpu`] — the strong one-GPU configuration, the headline
//!   speedup's denominator.
//! * [`DecompositionPlan`] / [`UniNttOptions`] — the planner and the O1–O5
//!   ablation switches.
//! * [`Sharded`] / [`ShardLayout`] — distributed vectors with their layout
//!   carried in the type.
//!
//! ```
//! use unintt_core::{Sharded, ShardLayout, UniNttEngine, UniNttOptions};
//! use unintt_ff::{Field, Goldilocks};
//! use unintt_gpu_sim::{presets, FieldSpec, Machine};
//!
//! // A 2^12-point NTT on four simulated A100s.
//! let cfg = presets::a100_nvlink(4);
//! let engine = UniNttEngine::<Goldilocks>::new(
//!     12, &cfg, UniNttOptions::full(), FieldSpec::goldilocks());
//! let mut machine = Machine::new(cfg, FieldSpec::goldilocks());
//!
//! let input = vec![Goldilocks::ONE; 1 << 12];
//! let mut data = Sharded::distribute(&input, 4, ShardLayout::Cyclic);
//! engine.forward(&mut machine, &mut data);
//! println!("simulated time: {:.1} µs", machine.max_clock_ns() / 1e3);
//! ```

#![warn(missing_docs)]

mod baseline;
mod cluster;
mod decompose;
mod engine;
mod opts;
pub mod profiles;
mod recovery;
mod sharded;

pub use baseline::{single_gpu, FourStepMultiGpuEngine};
pub use cluster::{Cluster, ClusterNttEngine, ClusterRunReport, NetworkConfig};
pub use decompose::{DecompositionPlan, LOG_WARP_TILE, MAX_LOG_BLOCK_TILE};
pub use engine::UniNttEngine;
pub use opts::{
    comm_mode_override, kernel_mode_override, set_comm_mode_override, set_kernel_mode_override,
    set_streams_override, streams_override, CommMode, UniNttOptions, MAX_STREAMS_PER_LEASE,
};
pub use recovery::RecoveryPolicy;
pub use sharded::{ShardLayout, Sharded};
