//! Distributed vectors: data sharded across simulated GPUs, with the
//! layout tracked in the type.
//!
//! Getting multi-GPU NTT orderings wrong is the classic source of silent
//! corruption, so the layout travels with the data: every engine method
//! checks the tag of its input and stamps the tag of its output.

use serde::{Deserialize, Serialize};
use unintt_ff::Field;

/// How the logical vector `x[0..n)` maps onto per-GPU shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardLayout {
    /// `x[i]` lives on GPU `i mod G` at local index `i / G`.
    /// The input layout of the UniNTT forward transform.
    Cyclic,
    /// `x[i]` lives on GPU `i / M` at local index `i mod M`
    /// (`M = n / G`). The conventional contiguous distribution.
    NaturalBlocks,
    /// UniNTT forward-output order: writing `k = k1·M + k2` with
    /// `k1 < G`, `k2 < M`, and `C = M / G`, element `X[k]` lives on GPU
    /// `k2 / C` at local index `k1·C + (k2 mod C)`.
    BlockCyclic,
}

/// A vector of field elements distributed over `G` simulated GPUs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sharded<F> {
    shards: Vec<Vec<F>>,
    layout: ShardLayout,
}

impl<F: Field> Sharded<F> {
    /// Wraps existing shards with a layout tag.
    ///
    /// # Panics
    ///
    /// Panics if shards are empty, lengths differ, or the GPU count and
    /// shard length are not powers of two.
    pub fn from_shards(shards: Vec<Vec<F>>, layout: ShardLayout) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let len = shards[0].len();
        assert!(
            shards.iter().all(|s| s.len() == len),
            "all shards must have equal length"
        );
        assert!(
            shards.len().is_power_of_two(),
            "GPU count must be a power of two"
        );
        assert!(len.is_power_of_two(), "shard length must be a power of two");
        Self { shards, layout }
    }

    /// Distributes a host vector into the given layout.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` is not divisible into `num_gpus`
    /// power-of-two shards, or for [`ShardLayout::BlockCyclic`] if the
    /// shard length is smaller than the GPU count.
    pub fn distribute(input: &[F], num_gpus: usize, layout: ShardLayout) -> Self {
        let n = input.len();
        assert!(
            num_gpus.is_power_of_two(),
            "GPU count must be a power of two"
        );
        assert_eq!(n % num_gpus, 0, "input not divisible across GPUs");
        let m = n / num_gpus;
        assert!(m.is_power_of_two(), "shard length must be a power of two");

        let mut shards = vec![Vec::with_capacity(m); num_gpus];
        match layout {
            ShardLayout::Cyclic => {
                for (i, &v) in input.iter().enumerate() {
                    shards[i % num_gpus].push(v);
                }
            }
            ShardLayout::NaturalBlocks => {
                for (g, shard) in shards.iter_mut().enumerate() {
                    shard.extend_from_slice(&input[g * m..(g + 1) * m]);
                }
            }
            ShardLayout::BlockCyclic => {
                assert!(m >= num_gpus, "shard too small for block-cyclic layout");
                let c = m / num_gpus;
                for shard in &mut shards {
                    shard.resize(m, F::ZERO);
                }
                for (k, &v) in input.iter().enumerate() {
                    let (k1, k2) = (k / m, k % m);
                    shards[k2 / c][k1 * c + (k2 % c)] = v;
                }
            }
        }
        Self { shards, layout }
    }

    /// Collects the shards back into one host vector in logical order.
    pub fn collect(&self) -> Vec<F> {
        let g = self.num_gpus();
        let m = self.shard_len();
        let n = g * m;
        let mut out = vec![F::ZERO; n];
        match self.layout {
            ShardLayout::Cyclic => {
                for (dev, shard) in self.shards.iter().enumerate() {
                    for (j, &v) in shard.iter().enumerate() {
                        out[j * g + dev] = v;
                    }
                }
            }
            ShardLayout::NaturalBlocks => {
                for (dev, shard) in self.shards.iter().enumerate() {
                    out[dev * m..(dev + 1) * m].copy_from_slice(shard);
                }
            }
            ShardLayout::BlockCyclic => {
                let c = m / g;
                for (dev, shard) in self.shards.iter().enumerate() {
                    for (p, &v) in shard.iter().enumerate() {
                        let (k1, t) = (p / c, p % c);
                        let k2 = dev * c + t;
                        out[k1 * m + k2] = v;
                    }
                }
            }
        }
        out
    }

    /// The layout tag.
    pub fn layout(&self) -> ShardLayout {
        self.layout
    }

    /// Number of GPUs the vector is spread across.
    pub fn num_gpus(&self) -> usize {
        self.shards.len()
    }

    /// Per-GPU shard length.
    pub fn shard_len(&self) -> usize {
        self.shards[0].len()
    }

    /// Logical vector length.
    pub fn len(&self) -> usize {
        self.num_gpus() * self.shard_len()
    }

    /// Always false: sharded vectors are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read access to the shards.
    pub fn shards(&self) -> &[Vec<F>] {
        &self.shards
    }

    /// Mutable access for engines (which must maintain the layout tag via
    /// [`Sharded::set_layout`] when they permute).
    pub fn shards_mut(&mut self) -> &mut Vec<Vec<F>> {
        &mut self.shards
    }

    /// Restamps the layout after an engine-performed permutation.
    pub fn set_layout(&mut self, layout: ShardLayout) {
        self.layout = layout;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Goldilocks, PrimeField};

    fn input(n: usize) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn roundtrip_all_layouts() {
        let x = input(64);
        for layout in [
            ShardLayout::Cyclic,
            ShardLayout::NaturalBlocks,
            ShardLayout::BlockCyclic,
        ] {
            for g in [1usize, 2, 4, 8] {
                let s = Sharded::distribute(&x, g, layout);
                assert_eq!(s.collect(), x, "{layout:?} g={g}");
                assert_eq!(s.len(), 64);
                assert_eq!(s.shard_len(), 64 / g);
            }
        }
    }

    #[test]
    fn cyclic_places_by_residue() {
        let x: Vec<Goldilocks> = (0..8).map(Goldilocks::from_u64).collect();
        let s = Sharded::distribute(&x, 4, ShardLayout::Cyclic);
        assert_eq!(s.shards()[1][0].to_canonical_u64(), 1);
        assert_eq!(s.shards()[1][1].to_canonical_u64(), 5);
        assert_eq!(s.shards()[3][1].to_canonical_u64(), 7);
    }

    #[test]
    fn natural_blocks_contiguous() {
        let x: Vec<Goldilocks> = (0..8).map(Goldilocks::from_u64).collect();
        let s = Sharded::distribute(&x, 2, ShardLayout::NaturalBlocks);
        let first: Vec<u64> = s.shards()[0].iter().map(|v| v.to_canonical_u64()).collect();
        assert_eq!(first, vec![0, 1, 2, 3]);
    }

    #[test]
    fn block_cyclic_indexing() {
        // n=16, g=2, m=8, c=4: X[k1*8+k2] on GPU k2/4 at [k1*4 + k2%4].
        let x: Vec<Goldilocks> = (0..16).map(Goldilocks::from_u64).collect();
        let s = Sharded::distribute(&x, 2, ShardLayout::BlockCyclic);
        // k=13: k1=1, k2=5 -> GPU 1, pos 1*4+1=5
        assert_eq!(s.shards()[1][5].to_canonical_u64(), 13);
        // k=2: k1=0, k2=2 -> GPU 0, pos 2
        assert_eq!(s.shards()[0][2].to_canonical_u64(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_gpus_rejected() {
        let x = input(12);
        let _ = Sharded::distribute(&x, 3, ShardLayout::Cyclic);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_shards_rejected() {
        let _ = Sharded::from_shards(
            vec![vec![Goldilocks::ZERO; 4], vec![Goldilocks::ZERO; 2]],
            ShardLayout::Cyclic,
        );
    }
}
