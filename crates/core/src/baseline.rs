//! Baseline NTT engines the paper compares against.
//!
//! * [`FourStepMultiGpuEngine`] — the conventional distributed four-step
//!   NTT: natural-order input and output, **three** all-to-alls (layout
//!   conversion in, chunk transpose in the middle, layout conversion out),
//!   standalone pack/transpose/twiddle kernels, table-based twiddles and
//!   unpadded layouts. This is what one gets by gluing a single-GPU NTT
//!   library to NCCL without the paper's fused decomposition.
//! * [`single_gpu`] helpers — the strong single-GPU configuration (all
//!   optimizations on, one device), the baseline for the headline speedup.
//!
//! Both baselines are *functionally exact*: their outputs are bit-identical
//! to the CPU reference, only their charged cost differs from UniNTT's.

use unintt_ff::TwoAdicField;
use unintt_gpu_sim::{FieldSpec, Machine, MachineConfig};

use crate::profiles;
use crate::{ShardLayout, Sharded, UniNttEngine, UniNttOptions};

/// The conventional multi-GPU four-step NTT baseline.
#[derive(Clone, Debug)]
pub struct FourStepMultiGpuEngine<F: TwoAdicField> {
    inner: UniNttEngine<F>,
    field_spec: FieldSpec,
}

impl<F: TwoAdicField> FourStepMultiGpuEngine<F> {
    /// Plans the baseline for size `2^log_n` on `machine_cfg`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`UniNttEngine::new`].
    pub fn new(log_n: u32, machine_cfg: &MachineConfig, field_spec: FieldSpec) -> Self {
        let mut opts = UniNttOptions::none();
        // The classical formulation always restores natural order.
        opts.natural_output = true;
        Self {
            inner: UniNttEngine::new(log_n, machine_cfg, opts, field_spec),
            field_spec,
        }
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Access to the underlying plan.
    pub fn plan(&self) -> &crate::DecompositionPlan {
        self.inner.plan()
    }

    /// Forward NTT: natural-block input, natural-block output.
    ///
    /// # Panics
    ///
    /// Panics on layout/size mismatch, as [`UniNttEngine::forward`].
    pub fn forward(&self, machine: &mut Machine, data: &mut Sharded<F>) {
        assert_eq!(
            data.layout(),
            ShardLayout::NaturalBlocks,
            "four-step baseline consumes natural-block input"
        );
        self.natural_to_cyclic(machine, data);
        self.inner.forward(machine, data);
    }

    /// Inverse NTT: natural-block input, natural-block output.
    pub fn inverse(&self, machine: &mut Machine, data: &mut Sharded<F>) {
        self.inner.inverse(machine, data);
        self.cyclic_to_natural(machine, data);
    }

    /// Cost-only forward transform: charges exactly what [`Self::forward`]
    /// would (layout-conversion pack + all-to-all, then the unfused inner
    /// engine) without touching data.
    pub fn simulate_forward(&self, machine: &mut Machine, batch: u64) {
        assert!(batch > 0, "batch must be positive");
        let g = self.inner.plan().num_gpus();
        if g > 1 {
            let plan = self.inner.plan();
            let shard_bytes = (plan.shard_len() * self.field_spec.elem_bytes) as u64;
            let mut dummy: Vec<()> = vec![(); g];
            machine.parallel_phase(&mut dummy, |ctx, _, _| {
                for _ in 0..batch {
                    ctx.launch(&profiles::pack_kernel_profile(plan, self.field_spec, 1));
                }
            });
            for _ in 0..batch {
                machine.charge_all_to_all(shard_bytes);
            }
        }
        for _ in 0..batch {
            self.inner.simulate_forward(machine, 1);
        }
    }

    /// Layout conversion: natural blocks → cyclic, via a local bucket pack
    /// and one all-to-all. On GPU `g`, destination bucket `d` collects the
    /// local elements with `j ≡ d (mod G)` in order; the chunk transpose
    /// then delivers exactly the cyclic shard.
    fn natural_to_cyclic(&self, machine: &mut Machine, data: &mut Sharded<F>) {
        let g = data.num_gpus();
        if g > 1 {
            let m = data.shard_len();
            let bucket = m / g;
            machine.parallel_phase(data.shards_mut(), |ctx, _dev, shard| {
                let mut packed = vec![F::ZERO; m];
                for (j, &v) in shard.iter().enumerate() {
                    packed[(j % g) * bucket + j / g] = v;
                }
                shard.copy_from_slice(&packed);
                ctx.launch(&profiles::pack_kernel_profile(
                    self.inner.plan(),
                    self.field_spec,
                    1,
                ));
            });
            machine.all_to_all_unchecked(data.shards_mut(), self.field_spec.elem_bytes);
        }
        data.set_layout(ShardLayout::Cyclic);
    }

    /// Layout conversion: cyclic → natural blocks (inverse of
    /// [`Self::natural_to_cyclic`]).
    fn cyclic_to_natural(&self, machine: &mut Machine, data: &mut Sharded<F>) {
        let g = data.num_gpus();
        if g > 1 {
            let m = data.shard_len();
            let bucket = m / g;
            machine.all_to_all_unchecked(data.shards_mut(), self.field_spec.elem_bytes);
            machine.parallel_phase(data.shards_mut(), |ctx, _dev, shard| {
                let mut unpacked = vec![F::ZERO; m];
                for (j, slot) in unpacked.iter_mut().enumerate() {
                    *slot = shard[(j % g) * bucket + j / g];
                }
                shard.copy_from_slice(&unpacked);
                ctx.launch(&profiles::pack_kernel_profile(
                    self.inner.plan(),
                    self.field_spec,
                    1,
                ));
            });
        }
        data.set_layout(ShardLayout::NaturalBlocks);
    }
}

/// Helpers for the strong single-GPU baseline configuration.
pub mod single_gpu {
    use super::*;

    /// A one-GPU copy of `machine_cfg` (same GPU model, no fabric use).
    pub fn config(machine_cfg: &MachineConfig) -> MachineConfig {
        let mut cfg = machine_cfg.clone();
        cfg.num_gpus = 1;
        cfg
    }

    /// A fully optimized single-GPU engine — the Icicle-class baseline the
    /// paper's headline speedup is measured against.
    pub fn engine<F: TwoAdicField>(
        log_n: u32,
        machine_cfg: &MachineConfig,
        field_spec: FieldSpec,
    ) -> UniNttEngine<F> {
        UniNttEngine::new(
            log_n,
            &config(machine_cfg),
            UniNttOptions::tuned_for(&field_spec),
            field_spec,
        )
    }

    /// A machine with a single GPU of the given model.
    pub fn machine(machine_cfg: &MachineConfig, field_spec: FieldSpec) -> Machine {
        Machine::new(config(machine_cfg), field_spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks};
    use unintt_gpu_sim::presets;
    use unintt_ntt::Ntt;

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    fn reference_forward(input: &[Goldilocks]) -> Vec<Goldilocks> {
        let ntt = Ntt::<Goldilocks>::new(input.len().trailing_zeros());
        let mut out = input.to_vec();
        ntt.forward(&mut out);
        out
    }

    #[test]
    fn four_step_matches_reference() {
        for gpus in [1usize, 2, 4, 8] {
            let log_n = 10u32;
            let input = random_vec(1 << log_n, gpus as u64);
            let cfg = presets::a100_nvlink(gpus);
            let fs = FieldSpec::goldilocks();
            let engine = FourStepMultiGpuEngine::<Goldilocks>::new(log_n, &cfg, fs);
            let mut machine = Machine::new(cfg, fs);
            let mut data = Sharded::distribute(&input, gpus, ShardLayout::NaturalBlocks);
            engine.forward(&mut machine, &mut data);
            assert_eq!(data.layout(), ShardLayout::NaturalBlocks);
            assert_eq!(data.collect(), reference_forward(&input), "gpus={gpus}");
        }
    }

    #[test]
    fn four_step_roundtrip() {
        let log_n = 9u32;
        let gpus = 4usize;
        let input = random_vec(1 << log_n, 5);
        let cfg = presets::a100_nvlink(gpus);
        let fs = FieldSpec::goldilocks();
        let engine = FourStepMultiGpuEngine::<Goldilocks>::new(log_n, &cfg, fs);
        let mut machine = Machine::new(cfg, fs);
        let mut data = Sharded::distribute(&input, gpus, ShardLayout::NaturalBlocks);
        engine.forward(&mut machine, &mut data);
        engine.inverse(&mut machine, &mut data);
        assert_eq!(data.collect(), input);
    }

    #[test]
    fn baseline_uses_three_all_to_alls() {
        let log_n = 16u32;
        let gpus = 8usize;
        let input = random_vec(1 << log_n, 6);
        let cfg = presets::a100_nvlink(gpus);
        let fs = FieldSpec::goldilocks();
        let engine = FourStepMultiGpuEngine::<Goldilocks>::new(log_n, &cfg, fs);
        let mut machine = Machine::new(cfg, fs);
        let mut data = Sharded::distribute(&input, gpus, ShardLayout::NaturalBlocks);
        engine.forward(&mut machine, &mut data);
        // 3 all-to-alls × 8 devices.
        assert_eq!(machine.stats().collectives, 24);
    }

    #[test]
    fn baseline_moves_more_interconnect_bytes_than_unintt() {
        let log_n = 18u32;
        let gpus = 8usize;
        let input = random_vec(1 << log_n, 7);
        let fs = FieldSpec::goldilocks();

        let cfg = presets::a100_nvlink(gpus);
        let baseline = FourStepMultiGpuEngine::<Goldilocks>::new(log_n, &cfg, fs);
        let mut mb = Machine::new(cfg.clone(), fs);
        let mut db = Sharded::distribute(&input, gpus, ShardLayout::NaturalBlocks);
        baseline.forward(&mut mb, &mut db);

        let unintt = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
        let mut mu = Machine::new(cfg, fs);
        let mut du = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
        unintt.forward(&mut mu, &mut du);

        let b_bytes = mb.stats().interconnect_bytes_sent;
        let u_bytes = mu.stats().interconnect_bytes_sent;
        assert!(
            b_bytes >= 3 * u_bytes,
            "baseline should move ≥3× the bytes: baseline={b_bytes} unintt={u_bytes}"
        );
        assert!(
            mb.max_clock_ns() > mu.max_clock_ns(),
            "baseline should be slower"
        );
    }

    #[test]
    fn baseline_simulate_matches_run() {
        let log_n = 14u32;
        let gpus = 8usize;
        let input = random_vec(1 << log_n, 9);
        let cfg = presets::a100_nvlink(gpus);
        let fs = FieldSpec::goldilocks();
        let engine = FourStepMultiGpuEngine::<Goldilocks>::new(log_n, &cfg, fs);

        let mut real = Machine::new(cfg.clone(), fs);
        let mut data = Sharded::distribute(&input, gpus, ShardLayout::NaturalBlocks);
        engine.forward(&mut real, &mut data);

        let mut sim = Machine::new(cfg, fs);
        engine.simulate_forward(&mut sim, 1);

        let (rt, st) = (real.max_clock_ns(), sim.max_clock_ns());
        assert!((rt - st).abs() < 1e-6 * rt, "real={rt} sim={st}");
        assert_eq!(
            real.stats().interconnect_bytes_sent,
            sim.stats().interconnect_bytes_sent
        );
        assert_eq!(real.stats().kernels_launched, sim.stats().kernels_launched);
    }

    #[test]
    fn single_gpu_helpers_produce_one_device() {
        let cfg = presets::a100_nvlink(8);
        let fs = FieldSpec::goldilocks();
        let machine = single_gpu::machine(&cfg, fs);
        assert_eq!(machine.num_devices(), 1);
        let engine = single_gpu::engine::<Goldilocks>(12, &cfg, fs);
        assert_eq!(engine.plan().num_gpus(), 1);
    }
}
