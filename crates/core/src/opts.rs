//! The uniform optimization set (O1–O5) and its ablation switches.
//!
//! The paper's thesis is that NTT optimizations designed once against an
//! abstract hardware model apply at *every* hierarchy level. Each flag here
//! toggles one of those optimizations; the engine consults the flags when
//! building kernel profiles, so an ablation run (experiment E6) is just a
//! different `UniNttOptions` value — the functional result never changes.

use std::sync::atomic::{AtomicU8, Ordering};

use serde::{Deserialize, Serialize};
use unintt_ntt::KernelMode;

/// How the engine schedules the multi-GPU exchange relative to compute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommMode {
    /// Legacy schedule: finish the local passes, run the all-to-all as
    /// one blocking transfer, then start the outer transform.
    Blocking,
    /// Software-pipelined schedule (the default): the exchange is split
    /// into chunks and chunk transfers run concurrently with the
    /// producing and consuming passes, hiding communication behind
    /// compute. Bit-identical outputs; only the timing changes.
    #[default]
    Overlapped,
}

/// Process-wide [`CommMode`] override, encoded as
/// 0 = none, 1 = Blocking, 2 = Overlapped. Set by the bench harness's
/// `--blocking-comm` flag (mirroring `--legacy-kernels`) so every engine
/// in the process can be pinned without threading a flag through every
/// constructor.
static COMM_MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Installs (or with `None` clears) a process-wide [`CommMode`] override
/// consulted by [`UniNttOptions::effective_comm_mode`].
pub fn set_comm_mode_override(mode: Option<CommMode>) {
    let v = match mode {
        None => 0,
        Some(CommMode::Blocking) => 1,
        Some(CommMode::Overlapped) => 2,
    };
    COMM_MODE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The current process-wide [`CommMode`] override, if any.
pub fn comm_mode_override() -> Option<CommMode> {
    match COMM_MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(CommMode::Blocking),
        2 => Some(CommMode::Overlapped),
        _ => None,
    }
}

/// Process-wide host [`KernelMode`] override, encoded as 0 = none,
/// 1 = Vector, 2 = Fast, 3 = Legacy. Set by the harness's
/// `--scalar-kernels` / `--legacy-kernels` flags so every options value
/// in the process resolves to the pinned mode.
static KERNEL_MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Installs (or with `None` clears) a process-wide host [`KernelMode`]
/// override consulted by [`UniNttOptions::effective_host_kernels`].
pub fn set_kernel_mode_override(mode: Option<KernelMode>) {
    let v = match mode {
        None => 0,
        Some(KernelMode::Vector) => 1,
        Some(KernelMode::Fast) => 2,
        Some(KernelMode::Legacy) => 3,
    };
    KERNEL_MODE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The current process-wide host [`KernelMode`] override, if any.
pub fn kernel_mode_override() -> Option<KernelMode> {
    match KERNEL_MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => Some(KernelMode::Vector),
        2 => Some(KernelMode::Fast),
        3 => Some(KernelMode::Legacy),
        _ => None,
    }
}

/// Every streams-per-lease value outside this range is clamped into it:
/// one queue is strictly serial, and past four the interference model's
/// pairwise products stop resembling any real SM partitioning.
pub const MAX_STREAMS_PER_LEASE: u32 = 4;

/// Process-wide streams-per-lease override, encoded as 0 = none, else
/// the pinned queue count. Set by the harness's `--serial-streams` flag
/// (mirroring `--blocking-comm`) so every stage scheduler in the process
/// can be forced back to serialized dispatch without threading a flag
/// through every constructor.
static STREAMS_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Installs (or with `None` clears) a process-wide streams-per-lease
/// override consulted by [`UniNttOptions::effective_streams_per_lease`]
/// and the serving layer. Values are clamped to
/// `1..=`[`MAX_STREAMS_PER_LEASE`].
pub fn set_streams_override(streams: Option<u32>) {
    let v = streams.map_or(0, |s| s.clamp(1, MAX_STREAMS_PER_LEASE));
    STREAMS_OVERRIDE.store(v as u8, Ordering::Relaxed);
}

/// The current process-wide streams-per-lease override, if any.
pub fn streams_override() -> Option<u32> {
    match STREAMS_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        v => Some(u32::from(v)),
    }
}

/// Optimization switches for the UniNTT engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniNttOptions {
    /// **O1 — fused twiddles**: the inter-level twiddle multiplication is
    /// folded into the adjacent transform kernel. Off: a standalone
    /// read-multiply-write pass per level boundary.
    pub fuse_twiddle: bool,
    /// **O2 — on-the-fly twiddle generation**: twiddles are regenerated in
    /// registers instead of streamed from memory. Off: twiddle tables are
    /// read from global memory alongside the data (extra read traffic).
    pub twiddle_on_the_fly: bool,
    /// **O3 — conflict-free layout**: padded shared-memory layout and
    /// block-cyclic global layout keeping accesses coalesced and
    /// conflict-free. Off: natural layout with power-of-two strides.
    pub padded_layout: bool,
    /// **O4 — exchange-compute fusion**: the pack/unpack around each
    /// exchange is folded into the neighboring transform's load/store
    /// (register shuffles at warp level, all-to-all staging at multi-GPU
    /// level). Off: standalone pack and unpack passes around the exchange.
    pub fuse_exchange: bool,
    /// **O5 — batching**: independent transforms in a batch share passes
    /// and amortize launch/latency overheads. Off: transforms run
    /// back-to-back individually.
    pub batching: bool,
    /// Restore natural block-distributed output ordering with a second
    /// all-to-all. Off (default): leave the output in UniNTT's documented
    /// block-cyclic permuted order, which evaluation-domain consumers
    /// (pointwise products, quotient computations) accept directly.
    pub natural_output: bool,
    /// Scheduling of the multi-GPU exchange relative to compute. Not an
    /// O-flag (it changes *when* work happens, not what work exists), so
    /// [`UniNttOptions::ablate`] leaves it alone.
    #[serde(default)]
    pub comm_mode: CommMode,
    /// Pipeline depth for [`CommMode::Overlapped`]: how many chunks the
    /// exchange is split into. `0` (default) lets the engine pick from
    /// the plan via `DecompositionPlan::default_comm_chunks`.
    #[serde(default)]
    pub comm_chunks: u32,
    /// Which host-side NTT kernel family backs the real (non-simulated)
    /// transforms driven under these options. Like `comm_mode`, not an
    /// O-flag: every mode is bit-identical, only throughput changes.
    #[serde(default)]
    pub host_kernels: KernelMode,
    /// Typed compute queues per device lease for stage schedulers built
    /// over these options (`0` = auto, which resolves to `1`:
    /// serialized stage dispatch, the historical behaviour). Like
    /// `comm_mode`, not an O-flag: outputs are bit-identical at every
    /// queue count, only the simulated schedule changes. Resolved values
    /// are clamped to `1..=`[`MAX_STREAMS_PER_LEASE`].
    #[serde(default)]
    pub streams_per_lease: u32,
}

impl UniNttOptions {
    /// All optimizations on, permuted output, overlapped communication
    /// (the paper's configuration).
    pub const fn full() -> Self {
        Self {
            fuse_twiddle: true,
            twiddle_on_the_fly: true,
            padded_layout: true,
            fuse_exchange: true,
            batching: true,
            natural_output: false,
            comm_mode: CommMode::Overlapped,
            comm_chunks: 0,
            host_kernels: KernelMode::Vector,
            streams_per_lease: 0,
        }
    }

    /// The configuration the abstract cost model picks for a given field —
    /// the paper's actual modus operandi: optimizations are designed once,
    /// then *tailored* per level/field by the model. Concretely, O2
    /// (regenerate twiddles in registers) trades ALU for memory bandwidth:
    /// a win for cheap fields (Goldilocks is memory-bound) and a loss for
    /// 256-bit Montgomery fields (compute-bound), so the model streams
    /// tables there instead.
    pub fn tuned_for(field: &unintt_gpu_sim::FieldSpec) -> Self {
        let mut o = Self::full();
        o.twiddle_on_the_fly = field.mul_cost <= 2.0;
        o
    }

    /// Every optimization off — the naive hierarchical implementation
    /// with blocking communication.
    pub const fn none() -> Self {
        Self {
            fuse_twiddle: false,
            twiddle_on_the_fly: false,
            padded_layout: false,
            fuse_exchange: false,
            batching: false,
            natural_output: false,
            comm_mode: CommMode::Blocking,
            comm_chunks: 0,
            host_kernels: KernelMode::Legacy,
            streams_per_lease: 0,
        }
    }

    /// The communication mode this options value resolves to: the
    /// process-wide override (see [`set_comm_mode_override`]) if one is
    /// installed, else the per-options [`UniNttOptions::comm_mode`].
    pub fn effective_comm_mode(&self) -> CommMode {
        comm_mode_override().unwrap_or(self.comm_mode)
    }

    /// The host kernel family this options value resolves to: the
    /// process-wide override (see [`set_kernel_mode_override`]) if one is
    /// installed, else the per-options [`UniNttOptions::host_kernels`].
    pub fn effective_host_kernels(&self) -> KernelMode {
        kernel_mode_override().unwrap_or(self.host_kernels)
    }

    /// The streams-per-lease count this options value resolves to: the
    /// process-wide override (see [`set_streams_override`]) if one is
    /// installed, else the per-options
    /// [`UniNttOptions::streams_per_lease`] (`0` = auto = `1`), clamped
    /// to `1..=`[`MAX_STREAMS_PER_LEASE`].
    pub fn effective_streams_per_lease(&self) -> u32 {
        streams_override()
            .unwrap_or(self.streams_per_lease)
            .clamp(1, MAX_STREAMS_PER_LEASE)
    }

    /// `full()` with exactly one optimization disabled, by index O1..=O5.
    ///
    /// # Panics
    ///
    /// Panics if `which` is not in `1..=5`.
    pub fn ablate(which: u32) -> Self {
        let mut o = Self::full();
        match which {
            1 => o.fuse_twiddle = false,
            2 => o.twiddle_on_the_fly = false,
            3 => o.padded_layout = false,
            4 => o.fuse_exchange = false,
            5 => o.batching = false,
            _ => panic!("optimization index must be 1..=5, got {which}"),
        }
        o
    }

    /// Short label for the ablation, e.g. `"-O3(layout)"`.
    pub fn ablation_label(which: u32) -> &'static str {
        match which {
            1 => "-O1(fuse-twiddle)",
            2 => "-O2(otf-twiddle)",
            3 => "-O3(layout)",
            4 => "-O4(fuse-exchange)",
            5 => "-O5(batching)",
            _ => "unknown",
        }
    }
}

impl Default for UniNttOptions {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enables_everything_but_natural_output() {
        let o = UniNttOptions::full();
        assert!(o.fuse_twiddle && o.twiddle_on_the_fly && o.padded_layout);
        assert!(o.fuse_exchange && o.batching);
        assert!(!o.natural_output);
    }

    #[test]
    fn ablate_disables_exactly_one() {
        for which in 1..=5u32 {
            let o = UniNttOptions::ablate(which);
            let flags = [
                o.fuse_twiddle,
                o.twiddle_on_the_fly,
                o.padded_layout,
                o.fuse_exchange,
                o.batching,
            ];
            let disabled = flags.iter().filter(|&&f| !f).count();
            assert_eq!(disabled, 1, "which={which}");
            assert!(!flags[(which - 1) as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn ablate_out_of_range_panics() {
        let _ = UniNttOptions::ablate(6);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(UniNttOptions::default(), UniNttOptions::full());
    }

    #[test]
    fn comm_mode_defaults() {
        // No test may *install* the process-wide override (tests in this
        // binary run concurrently); only the unset default is asserted.
        assert_eq!(comm_mode_override(), None);
        assert_eq!(UniNttOptions::full().comm_mode, CommMode::Overlapped);
        assert_eq!(UniNttOptions::none().comm_mode, CommMode::Blocking);
        assert_eq!(
            UniNttOptions::full().effective_comm_mode(),
            CommMode::Overlapped
        );
        assert_eq!(UniNttOptions::full().comm_chunks, 0, "0 = planner auto");
        // The comm schedule is not an O-flag: every ablation keeps overlap.
        for which in 1..=5u32 {
            assert_eq!(UniNttOptions::ablate(which).comm_mode, CommMode::Overlapped);
        }
    }

    #[test]
    fn host_kernel_defaults() {
        // As with the comm override, only the unset default is asserted —
        // installing the process-wide override would race other tests.
        assert_eq!(kernel_mode_override(), None);
        assert_eq!(UniNttOptions::full().host_kernels, KernelMode::Vector);
        assert_eq!(UniNttOptions::none().host_kernels, KernelMode::Legacy);
        assert_eq!(
            UniNttOptions::full().effective_host_kernels(),
            KernelMode::Vector
        );
        // Not an O-flag: every ablation keeps the vector kernels.
        for which in 1..=5u32 {
            assert_eq!(
                UniNttOptions::ablate(which).host_kernels,
                KernelMode::Vector
            );
        }
    }

    #[test]
    fn streams_default_resolves_to_serial_and_clamps() {
        // As with the other overrides, only the unset default is
        // asserted — installing the process-wide override would race
        // other tests in this binary.
        assert_eq!(streams_override(), None);
        assert_eq!(UniNttOptions::full().streams_per_lease, 0, "0 = auto");
        assert_eq!(
            UniNttOptions::full().effective_streams_per_lease(),
            1,
            "auto resolves to serialized stage dispatch"
        );
        let mut o = UniNttOptions::full();
        o.streams_per_lease = 3;
        assert_eq!(o.effective_streams_per_lease(), 3);
        o.streams_per_lease = 99;
        assert_eq!(
            o.effective_streams_per_lease(),
            MAX_STREAMS_PER_LEASE,
            "out-of-range values clamp"
        );
        // Not an O-flag: every ablation keeps the auto queue count.
        for which in 1..=5u32 {
            assert_eq!(UniNttOptions::ablate(which).streams_per_lease, 0);
        }
    }

    #[test]
    fn tuning_picks_twiddle_strategy_by_field_cost() {
        use unintt_gpu_sim::FieldSpec;
        assert!(UniNttOptions::tuned_for(&FieldSpec::goldilocks()).twiddle_on_the_fly);
        assert!(UniNttOptions::tuned_for(&FieldSpec::babybear()).twiddle_on_the_fly);
        assert!(!UniNttOptions::tuned_for(&FieldSpec::bn254_fr()).twiddle_on_the_fly);
    }
}
