//! The uniform optimization set (O1–O5) and its ablation switches.
//!
//! The paper's thesis is that NTT optimizations designed once against an
//! abstract hardware model apply at *every* hierarchy level. Each flag here
//! toggles one of those optimizations; the engine consults the flags when
//! building kernel profiles, so an ablation run (experiment E6) is just a
//! different `UniNttOptions` value — the functional result never changes.

use serde::{Deserialize, Serialize};

/// Optimization switches for the UniNTT engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniNttOptions {
    /// **O1 — fused twiddles**: the inter-level twiddle multiplication is
    /// folded into the adjacent transform kernel. Off: a standalone
    /// read-multiply-write pass per level boundary.
    pub fuse_twiddle: bool,
    /// **O2 — on-the-fly twiddle generation**: twiddles are regenerated in
    /// registers instead of streamed from memory. Off: twiddle tables are
    /// read from global memory alongside the data (extra read traffic).
    pub twiddle_on_the_fly: bool,
    /// **O3 — conflict-free layout**: padded shared-memory layout and
    /// block-cyclic global layout keeping accesses coalesced and
    /// conflict-free. Off: natural layout with power-of-two strides.
    pub padded_layout: bool,
    /// **O4 — exchange-compute fusion**: the pack/unpack around each
    /// exchange is folded into the neighboring transform's load/store
    /// (register shuffles at warp level, all-to-all staging at multi-GPU
    /// level). Off: standalone pack and unpack passes around the exchange.
    pub fuse_exchange: bool,
    /// **O5 — batching**: independent transforms in a batch share passes
    /// and amortize launch/latency overheads. Off: transforms run
    /// back-to-back individually.
    pub batching: bool,
    /// Restore natural block-distributed output ordering with a second
    /// all-to-all. Off (default): leave the output in UniNTT's documented
    /// block-cyclic permuted order, which evaluation-domain consumers
    /// (pointwise products, quotient computations) accept directly.
    pub natural_output: bool,
}

impl UniNttOptions {
    /// All optimizations on, permuted output (the paper's configuration).
    pub const fn full() -> Self {
        Self {
            fuse_twiddle: true,
            twiddle_on_the_fly: true,
            padded_layout: true,
            fuse_exchange: true,
            batching: true,
            natural_output: false,
        }
    }

    /// The configuration the abstract cost model picks for a given field —
    /// the paper's actual modus operandi: optimizations are designed once,
    /// then *tailored* per level/field by the model. Concretely, O2
    /// (regenerate twiddles in registers) trades ALU for memory bandwidth:
    /// a win for cheap fields (Goldilocks is memory-bound) and a loss for
    /// 256-bit Montgomery fields (compute-bound), so the model streams
    /// tables there instead.
    pub fn tuned_for(field: &unintt_gpu_sim::FieldSpec) -> Self {
        let mut o = Self::full();
        o.twiddle_on_the_fly = field.mul_cost <= 2.0;
        o
    }

    /// Every optimization off — the naive hierarchical implementation.
    pub const fn none() -> Self {
        Self {
            fuse_twiddle: false,
            twiddle_on_the_fly: false,
            padded_layout: false,
            fuse_exchange: false,
            batching: false,
            natural_output: false,
        }
    }

    /// `full()` with exactly one optimization disabled, by index O1..=O5.
    ///
    /// # Panics
    ///
    /// Panics if `which` is not in `1..=5`.
    pub fn ablate(which: u32) -> Self {
        let mut o = Self::full();
        match which {
            1 => o.fuse_twiddle = false,
            2 => o.twiddle_on_the_fly = false,
            3 => o.padded_layout = false,
            4 => o.fuse_exchange = false,
            5 => o.batching = false,
            _ => panic!("optimization index must be 1..=5, got {which}"),
        }
        o
    }

    /// Short label for the ablation, e.g. `"-O3(layout)"`.
    pub fn ablation_label(which: u32) -> &'static str {
        match which {
            1 => "-O1(fuse-twiddle)",
            2 => "-O2(otf-twiddle)",
            3 => "-O3(layout)",
            4 => "-O4(fuse-exchange)",
            5 => "-O5(batching)",
            _ => "unknown",
        }
    }
}

impl Default for UniNttOptions {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enables_everything_but_natural_output() {
        let o = UniNttOptions::full();
        assert!(o.fuse_twiddle && o.twiddle_on_the_fly && o.padded_layout);
        assert!(o.fuse_exchange && o.batching);
        assert!(!o.natural_output);
    }

    #[test]
    fn ablate_disables_exactly_one() {
        for which in 1..=5u32 {
            let o = UniNttOptions::ablate(which);
            let flags = [
                o.fuse_twiddle,
                o.twiddle_on_the_fly,
                o.padded_layout,
                o.fuse_exchange,
                o.batching,
            ];
            let disabled = flags.iter().filter(|&&f| !f).count();
            assert_eq!(disabled, 1, "which={which}");
            assert!(!flags[(which - 1) as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn ablate_out_of_range_panics() {
        let _ = UniNttOptions::ablate(6);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(UniNttOptions::default(), UniNttOptions::full());
    }

    #[test]
    fn tuning_picks_twiddle_strategy_by_field_cost() {
        use unintt_gpu_sim::FieldSpec;
        assert!(UniNttOptions::tuned_for(&FieldSpec::goldilocks()).twiddle_on_the_fly);
        assert!(UniNttOptions::tuned_for(&FieldSpec::babybear()).twiddle_on_the_fly);
        assert!(!UniNttOptions::tuned_for(&FieldSpec::bn254_fr()).twiddle_on_the_fly);
    }
}
