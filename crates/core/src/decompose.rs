//! The recursive, overhead-free decomposition planner.
//!
//! UniNTT's central idea: an NTT of size `2^L` factors recursively so that
//! **every level of the multi-GPU hierarchy runs the same computation at a
//! different scale** — local sub-NTTs, a fused twiddle multiplication, and
//! one exchange through that level's communication medium:
//!
//! | level     | local transform size    | exchange medium     |
//! |-----------|-------------------------|---------------------|
//! | multi-GPU | `2^(L - log G)` per GPU | NCCL all-to-all     |
//! | device    | block tiles             | global memory pass  |
//! | block     | warp tiles              | shared memory       |
//! | warp      | registers (radix 2/4)   | `shfl_xor`          |
//!
//! The plan is "overhead-free" because no level materializes a standalone
//! transpose: each exchange *is* the addressing of the adjacent level's
//! loads/stores. [`DecompositionPlan`] records the radix assigned to each
//! level; the engine and the cost profiles both read it.

use serde::{Deserialize, Serialize};
use unintt_gpu_sim::MachineConfig;

/// Base-2 log of the warp width (32 lanes).
pub const LOG_WARP_TILE: u32 = 5;

/// Largest block tile the planner will use, as a log. 2^11 = 2048 elements
/// keeps several blocks resident per SM even for 32-byte fields.
pub const MAX_LOG_BLOCK_TILE: u32 = 11;

/// How a size-`2^log_n` NTT maps onto the hierarchy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecompositionPlan {
    /// Total transform size, log2.
    pub log_n: u32,
    /// GPUs used, log2 (the multi-GPU radix).
    pub log_g: u32,
    /// Per-GPU local transform size, log2 (`log_n - log_g`).
    pub log_m: u32,
    /// Radix (log2) of each global-memory pass on one GPU, outermost first.
    /// Sums to `log_m`. Each entry is at most [`MAX_LOG_BLOCK_TILE`].
    pub device_passes: Vec<u32>,
    /// Shared-memory tile, log2 (block-level radix).
    pub log_block_tile: u32,
    /// Register tile, log2 (warp-level radix).
    pub log_warp_tile: u32,
}

impl DecompositionPlan {
    /// Plans a size-`2^log_n` transform on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the machine has a non-power-of-two GPU count, or if the
    /// per-GPU share would be smaller than one element per GPU
    /// (`log_n < log_g`).
    pub fn plan(log_n: u32, machine: &MachineConfig, elem_bytes: usize) -> Self {
        let g = machine.num_gpus;
        assert!(
            g.is_power_of_two(),
            "UniNTT requires a power-of-two GPU count, got {g}"
        );
        let log_g = g.trailing_zeros();
        assert!(
            log_n >= log_g,
            "transform of size 2^{log_n} cannot be split across 2^{log_g} GPUs"
        );
        let log_m = log_n - log_g;

        // Capacity: the engine keeps input + output + exchange staging
        // resident, ~4x the shard footprint.
        let shard_bytes = (1u128 << log_m) * elem_bytes.max(1) as u128;
        let working_set = 4 * shard_bytes;
        assert!(
            working_set <= machine.gpu.memory_bytes as u128,
            "shard of 2^{log_m} x {elem_bytes}B elements needs ~{working_set} bytes per GPU, \
             exceeding the {}'s {} bytes of device memory",
            machine.gpu.name,
            machine.gpu.memory_bytes
        );

        // Block tile: as many elements as fit in shared memory with double
        // buffering, capped so several blocks stay resident per SM.
        let shared_elems = machine.gpu.shared_mem_per_block as usize / (2 * elem_bytes.max(1));
        let log_block_tile = shared_elems
            .next_power_of_two()
            .trailing_zeros()
            .saturating_sub(1)
            .clamp(LOG_WARP_TILE, MAX_LOG_BLOCK_TILE)
            .min(log_m.max(1));

        // Device passes: split log_m into near-equal chunks of at most
        // log_block_tile. Balanced chunks minimize the largest pass radix
        // (the paper's planner does the same to keep tiles uniform).
        let device_passes = split_balanced(log_m, log_block_tile);

        Self {
            log_n,
            log_g,
            log_m,
            device_passes,
            log_block_tile,
            log_warp_tile: LOG_WARP_TILE.min(log_m.max(1)),
        }
    }

    /// Number of global-memory passes per GPU.
    pub fn num_device_passes(&self) -> usize {
        self.device_passes.len()
    }

    /// Per-GPU shard length.
    pub fn shard_len(&self) -> usize {
        1 << self.log_m
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        1 << self.log_g
    }

    /// Total transform size.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Default pipeline depth for the overlapped multi-GPU exchange.
    ///
    /// Sized from the per-pair chunk (`2^(log_m - log_g)` elements): one
    /// pipeline chunk per ~1024 elements, clamped to `[2, 8]`. The floor
    /// of 2 keeps the pipeline engaged even for small exchanges — chunk
    /// transfers cost no extra launches or latency serialization in the
    /// model, and a depth-1 "pipeline" would silently degenerate to the
    /// blocking schedule, making simulated time step discontinuously at
    /// the size where the depth first exceeds 1. Large exchanges saturate
    /// around 8 chunks, where the unhidden head/tail slices are already
    /// under an eighth of the blocking wire time. A per-pair chunk of a
    /// single element cannot be sliced, so it stays whole.
    pub fn default_comm_chunks(&self) -> u32 {
        let c_len = 1u64 << self.log_m.saturating_sub(self.log_g);
        if c_len < 2 {
            return 1;
        }
        (c_len / 1024).clamp(2, 8) as u32
    }
}

/// Splits `total` into the fewest parts each ≤ `max_part`, as evenly as
/// possible. `split_balanced(20, 11) == [10, 10]`, not `[11, 9]`.
fn split_balanced(total: u32, max_part: u32) -> Vec<u32> {
    if total == 0 {
        return vec![0];
    }
    let max_part = max_part.max(1);
    let parts = total.div_ceil(max_part);
    let base = total / parts;
    let extra = total % parts;
    (0..parts)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unintt_gpu_sim::presets;

    #[test]
    fn split_balanced_properties() {
        assert_eq!(split_balanced(20, 11), vec![10, 10]);
        assert_eq!(split_balanced(11, 11), vec![11]);
        assert_eq!(split_balanced(0, 11), vec![0]);
        assert_eq!(split_balanced(23, 11), vec![8, 8, 7]);
        for total in 1..40u32 {
            for max in 1..=12u32 {
                let parts = split_balanced(total, max);
                assert_eq!(parts.iter().sum::<u32>(), total);
                assert!(parts.iter().all(|&p| p <= max && p > 0));
                let lo = *parts.iter().min().unwrap();
                let hi = *parts.iter().max().unwrap();
                assert!(hi - lo <= 1, "balanced split must differ by at most 1");
            }
        }
    }

    #[test]
    fn plan_accounts_for_all_stages() {
        let machine = presets::a100_nvlink(8);
        let plan = DecompositionPlan::plan(24, &machine, 8);
        assert_eq!(plan.log_g, 3);
        assert_eq!(plan.log_m, 21);
        assert_eq!(
            plan.device_passes.iter().sum::<u32>(),
            plan.log_m,
            "device passes must cover the local transform"
        );
        assert!(plan.device_passes.iter().all(|&p| p <= plan.log_block_tile));
    }

    #[test]
    fn plan_single_gpu() {
        let machine = presets::a100_nvlink(1);
        let plan = DecompositionPlan::plan(20, &machine, 8);
        assert_eq!(plan.log_g, 0);
        assert_eq!(plan.log_m, 20);
        assert_eq!(plan.num_gpus(), 1);
    }

    #[test]
    fn plan_tiny_transform() {
        let machine = presets::a100_nvlink(4);
        let plan = DecompositionPlan::plan(2, &machine, 8);
        assert_eq!(plan.log_m, 0);
        assert_eq!(plan.shard_len(), 1);
        assert_eq!(plan.device_passes.iter().sum::<u32>(), 0);
    }

    #[test]
    fn default_comm_chunks_scales_with_exchange_size() {
        let machine = presets::a100_nvlink(8);
        // 2^24 over 8 GPUs: per-pair chunks of 2^18 elements — saturated.
        assert_eq!(
            DecompositionPlan::plan(24, &machine, 8).default_comm_chunks(),
            8
        );
        // 2^14 over 8 GPUs: 2^8-element chunks — small, but the pipeline
        // stays engaged at the floor depth so the schedule (and hence the
        // simulated clock) varies smoothly with size.
        assert_eq!(
            DecompositionPlan::plan(14, &machine, 8).default_comm_chunks(),
            2
        );
        // In between: 2^21 → per-pair 2^15 = 32 Ki elements → clamped to 8;
        // 2^17 → per-pair 2^11 = 2 Ki elements → 2 chunks.
        assert_eq!(
            DecompositionPlan::plan(17, &machine, 8).default_comm_chunks(),
            2
        );
        let single = presets::a100_nvlink(1);
        assert_eq!(
            DecompositionPlan::plan(20, &single, 8).default_comm_chunks(),
            8
        );
    }

    #[test]
    fn wide_elements_shrink_block_tile() {
        let machine = presets::a100_nvlink(8);
        let narrow = DecompositionPlan::plan(24, &machine, 8);
        let wide = DecompositionPlan::plan(24, &machine, 32);
        assert!(wide.log_block_tile <= narrow.log_block_tile);
    }

    #[test]
    fn capacity_check_rejects_oversized_shards() {
        // 2^30 x 32B on one RTX 4090 (24 GB): 32 GiB working set x4.
        let machine = presets::rtx4090_pcie(1);
        let result = std::panic::catch_unwind(|| DecompositionPlan::plan(30, &machine, 32));
        assert!(result.is_err(), "oversized plan must be rejected");
        // The same transform split over 8 GPUs fits.
        let machine8 = presets::rtx4090_pcie(8);
        let plan = DecompositionPlan::plan(30, &machine8, 32);
        assert_eq!(plan.log_m, 27);
    }

    #[test]
    #[should_panic(expected = "power-of-two GPU count")]
    fn non_pow2_gpus_rejected() {
        let machine = presets::a100_nvlink(3);
        let _ = DecompositionPlan::plan(20, &machine, 8);
    }

    #[test]
    #[should_panic(expected = "cannot be split")]
    fn too_small_for_gpus_rejected() {
        let machine = presets::a100_nvlink(8);
        let _ = DecompositionPlan::plan(2, &machine, 8);
    }
}
