//! Recovery policies for fault-tolerant NTT execution.
//!
//! A [`RecoveryPolicy`] tells the engines how hard to fight transient
//! fabric faults: how many times to retry a dropped collective, how much
//! simulated backoff to charge between attempts, and whether to verify
//! transfers by per-chunk checksum (which turns silent corruption into a
//! cheap targeted retransmission instead of a wrong result).
//!
//! All recovery time is *simulated* time, charged to the machine under
//! [`unintt_gpu_sim::Category::Fault`], so the overhead of a policy is
//! directly measurable (experiment E13 reports it as a percentage of
//! total simulated time).

/// How the engines respond to transient fabric faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries per collective before giving up (0 = fail on first drop).
    pub max_retries: u32,
    /// Simulated backoff before the first retry, ns.
    pub backoff_base_ns: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Verify every exchanged chunk by checksum and re-request bad ones.
    /// Without this, injected corruption silently reaches the output.
    pub verify_checksums: bool,
}

impl RecoveryPolicy {
    /// No recovery: first drop fails the run, no checksums. The result
    /// charges exactly what the fault-free path charges, so legacy
    /// callers keep their simulated-time totals bit-identical.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            backoff_base_ns: 0.0,
            backoff_multiplier: 1.0,
            verify_checksums: false,
        }
    }

    /// Retry with exponential backoff, no checksums: survives drops but
    /// not corruption.
    pub fn retry_only() -> Self {
        Self {
            verify_checksums: false,
            ..Self::default()
        }
    }

    /// The backoff charged before retry number `attempt` (0-based).
    pub fn backoff_ns(&self, attempt: u32) -> f64 {
        self.backoff_base_ns * self.backoff_multiplier.powi(attempt as i32)
    }
}

impl Default for RecoveryPolicy {
    /// Full recovery: 4 retries, 50 µs base backoff doubling per attempt,
    /// checksums on.
    fn default() -> Self {
        Self {
            max_retries: 4,
            backoff_base_ns: 50_000.0,
            backoff_multiplier: 2.0,
            verify_checksums: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.backoff_ns(0), 50_000.0);
        assert_eq!(p.backoff_ns(1), 100_000.0);
        assert_eq!(p.backoff_ns(3), 400_000.0);
    }

    #[test]
    fn none_is_free() {
        let p = RecoveryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_ns(0), 0.0);
        assert!(!p.verify_checksums);
    }
}
