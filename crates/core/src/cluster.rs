//! Multi-node scale-out: one more level of the same recursion.
//!
//! The paper stops at one server; this module extends UniNTT's
//! decomposition upward exactly the way the algorithm invites: the node
//! level is one more digit of the mixed-radix factorization, with the
//! datacenter network (InfiniBand/RoCE) as its exchange medium:
//!
//! ```text
//! N = T(nodes) · G(GPUs) · M(local)
//! node phase:  per-node UniNTT of size N/T (itself hierarchical)
//!              + fused boundary twiddle ω_N^{t·k}
//! exchange:    ONE cross-node all-to-all
//! outer phase: N/T² tiny size-T NTTs per node
//! ```
//!
//! Every node's machine simulates independently (node phases overlap);
//! the cluster clock advances to the slowest node plus the network time.
//! As in the single-node engine, the functional result is bit-checked
//! against the CPU reference and the network volume is exact.

use serde::{Deserialize, Serialize};
use unintt_ff::TwoAdicField;
use unintt_gpu_sim::{
    alpha_beta_all_to_all_ns, FabricError, FieldSpec, KernelProfile, Machine, MachineConfig,
};
use unintt_ntt::Ntt;

use crate::{CommMode, RecoveryPolicy, ShardLayout, Sharded, UniNttEngine, UniNttOptions};

/// Datacenter network datasheet (node-to-node fabric).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Per-node injection bandwidth in GB/s (e.g. 50 for 400G InfiniBand).
    pub per_node_bandwidth_gbps: f64,
    /// One-way latency in nanoseconds.
    pub latency_ns: f64,
    /// Achievable fraction of peak for large transfers.
    pub efficiency: f64,
}

impl NetworkConfig {
    /// 400 Gb/s InfiniBand NDR per node.
    pub fn infiniband_400g() -> Self {
        Self {
            per_node_bandwidth_gbps: 50.0,
            latency_ns: 5_000.0,
            efficiency: 0.85,
        }
    }

    /// 100 Gb/s Ethernet (RoCE) per node.
    pub fn ethernet_100g() -> Self {
        Self {
            per_node_bandwidth_gbps: 12.5,
            latency_ns: 10_000.0,
            efficiency: 0.8,
        }
    }

    /// α–β time for a cross-node all-to-all of `bytes_per_node`.
    ///
    /// Routed through [`unintt_gpu_sim::alpha_beta_all_to_all_ns`], the
    /// exact function the GPU fabric's crossbar arm charges with — one
    /// shared cost formula, so the two layers cannot drift apart in units
    /// (a regression test pins the charged nanoseconds).
    pub fn all_to_all_ns(&self, nodes: usize, bytes_per_node: u64) -> f64 {
        alpha_beta_all_to_all_ns(
            nodes,
            bytes_per_node,
            self.per_node_bandwidth_gbps,
            self.latency_ns,
            self.efficiency,
        )
    }
}

/// A cluster: `T` identical multi-GPU nodes joined by a network.
pub struct Cluster {
    nodes: Vec<Machine>,
    network: NetworkConfig,
    /// Time spent in cross-node communication (on top of node clocks).
    network_ns: f64,
    /// Cross-node wire time hidden behind the outer column NTTs by the
    /// overlapped schedule (already excluded from `network_ns`).
    network_hidden_ns: f64,
    /// Bytes injected into the node-to-node network, all nodes summed.
    network_bytes: u64,
}

impl Cluster {
    /// Builds a cluster of `num_nodes` machines of shape `node_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is not a power of two, or the node config is
    /// invalid.
    pub fn new(
        num_nodes: usize,
        node_cfg: MachineConfig,
        network: NetworkConfig,
        field: FieldSpec,
    ) -> Self {
        assert!(
            num_nodes.is_power_of_two(),
            "node count must be a power of two"
        );
        Self {
            nodes: (0..num_nodes)
                .map(|i| {
                    let mut node = Machine::new(node_cfg.clone(), field);
                    // Distinct telemetry tracks per node: concurrent node
                    // spans must not share a track.
                    node.set_label(format!("node{i}"));
                    node
                })
                .collect(),
            network,
            network_ns: 0.0,
            network_hidden_ns: 0.0,
            network_bytes: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The cluster makespan: slowest node plus accumulated network time.
    pub fn total_time_ns(&self) -> f64 {
        let node_max = self
            .nodes
            .iter()
            .map(Machine::max_clock_ns)
            .fold(0.0, f64::max);
        node_max + self.network_ns
    }

    /// Cross-node traffic in bytes (all nodes summed).
    pub fn network_bytes(&self) -> u64 {
        self.network_bytes
    }

    /// Cross-node wire time hidden behind compute by the overlapped
    /// schedule. Zero under [`CommMode::Blocking`].
    pub fn network_hidden_ns(&self) -> f64 {
        self.network_hidden_ns
    }

    /// Access to one node's machine.
    pub fn node(&self, i: usize) -> &Machine {
        &self.nodes[i]
    }

    /// Mutable access to one node's machine (to install fault plans or
    /// inspect traces).
    pub fn node_mut(&mut self, i: usize) -> &mut Machine {
        &mut self.nodes[i]
    }

    /// Nodes whose every GPU is still alive, in index order.
    pub fn healthy_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].first_dead_device().is_none())
            .collect()
    }

    /// Charges a cross-node all-to-all among `nodes` participants (the
    /// degraded path exchanges among survivors only).
    fn charge_network_all_to_all_among(&mut self, nodes: usize, bytes_per_node: u64) {
        if nodes <= 1 {
            return;
        }
        self.network_ns += self.network.all_to_all_ns(nodes, bytes_per_node);
        self.network_bytes += Self::all_to_all_volume(nodes, bytes_per_node);
    }

    /// Charges a cross-node all-to-all whose wire time is pipelined
    /// against up to `hide_ns` of per-node compute: only the exposed
    /// remainder (latency plus un-hidden wire time) advances the cluster
    /// clock. The latency term is never hidable — the first chunk must
    /// arrive before any dependent compute can start.
    fn charge_network_all_to_all_overlapped(
        &mut self,
        nodes: usize,
        bytes_per_node: u64,
        hide_ns: f64,
    ) {
        if nodes <= 1 {
            return;
        }
        let total = self.network.all_to_all_ns(nodes, bytes_per_node);
        let wire = (total - self.network.latency_ns).max(0.0);
        let hidden = wire.min(hide_ns.max(0.0));
        self.network_ns += total - hidden;
        self.network_hidden_ns += hidden;
        self.network_bytes += Self::all_to_all_volume(nodes, bytes_per_node);
    }

    fn all_to_all_volume(nodes: usize, bytes_per_node: u64) -> u64 {
        (bytes_per_node * (nodes as u64 - 1) / nodes as u64) * nodes as u64
    }
}

/// Outcome of a fault-tolerant cluster run ([`ClusterNttEngine::forward_with_recovery`]).
#[derive(Clone, Debug)]
pub struct ClusterRunReport<F> {
    /// The transform result in natural order (bit-identical to the CPU
    /// reference whenever `Ok` is returned).
    pub output: Vec<F>,
    /// How many times the decomposition was re-derived over survivors.
    pub replans: u32,
    /// Nodes evicted mid-run by a permanent device loss, in eviction order.
    pub lost_nodes: Vec<usize>,
    /// How many nodes the final (successful) plan spanned.
    pub nodes_used: usize,
    /// Transient-fault retries charged per attempt (one entry per plan
    /// tried, including the successful final one), summed over every node
    /// machine. Serving layers surface these in their metrics.
    pub retries_per_attempt: Vec<u64>,
    /// GPU-fabric collective operations executed, summed over every node
    /// machine (all attempts included).
    pub collectives: u64,
    /// Communication bytes moved end to end: intra-node GPU-fabric
    /// injections on every node plus cross-node network traffic.
    pub comm_bytes: u64,
    /// Communication nanoseconds hidden behind compute by the overlapped
    /// schedule — GPU-fabric overlap inside the nodes plus network wire
    /// time pipelined against the outer column NTTs. Zero under
    /// [`CommMode::Blocking`].
    pub comm_hidden_ns: f64,
}

impl<F> ClusterRunReport<F> {
    /// Total transient retries over all attempts.
    pub fn total_retries(&self) -> u64 {
        self.retries_per_attempt.iter().sum()
    }

    /// Number of plan attempts (replans + the final successful one).
    pub fn attempts(&self) -> usize {
        self.retries_per_attempt.len()
    }
}

/// Records one cluster-level span on the shared `"cluster"` track. The
/// cluster clock is [`Cluster::total_time_ns`] (slowest node plus
/// network time); `root` is `None` exactly when telemetry is disabled.
fn obs_cluster_span(
    root: Option<u64>,
    cluster: &Cluster,
    name: &'static str,
    category: &'static str,
    parent_is_self: bool,
    t_start_ns: f64,
    attrs: impl FnOnce() -> Vec<(&'static str, unintt_telemetry::AttrValue)>,
) {
    if let Some(id) = root {
        unintt_telemetry::record_span(|| unintt_telemetry::Span {
            id: if parent_is_self {
                id
            } else {
                unintt_telemetry::fresh_id()
            },
            parent: if parent_is_self { None } else { Some(id) },
            name: name.to_string(),
            level: unintt_telemetry::SpanLevel::Cluster,
            category,
            track: String::from("cluster"),
            t_start_ns,
            t_end_ns: cluster.total_time_ns(),
            attrs: attrs(),
        });
    }
}

/// The cluster-scale UniNTT engine.
pub struct ClusterNttEngine<F: TwoAdicField> {
    log_n: u32,
    log_t: u32,
    node_engine: UniNttEngine<F>,
    outer: Ntt<F>,
    field_spec: FieldSpec,
    /// Kept so the decomposition can be re-derived over survivors after a
    /// permanent node loss.
    node_cfg: MachineConfig,
    opts: UniNttOptions,
}

impl<F: TwoAdicField> ClusterNttEngine<F> {
    /// Plans a size-`2^log_n` transform over a cluster of `num_nodes`
    /// machines of shape `node_cfg`.
    ///
    /// # Panics
    ///
    /// Panics under the node-engine's conditions, or if the per-node share
    /// is smaller than `num_nodes` (the chunked exchange needs
    /// `N/T ≥ T`).
    pub fn new(
        log_n: u32,
        num_nodes: usize,
        node_cfg: &MachineConfig,
        opts: UniNttOptions,
        field_spec: FieldSpec,
    ) -> Self {
        assert!(
            num_nodes.is_power_of_two(),
            "node count must be a power of two"
        );
        let log_t = num_nodes.trailing_zeros();
        assert!(
            log_n >= 2 * log_t,
            "transform of 2^{log_n} too small for 2^{log_t} nodes"
        );
        // Node-local results are chunked across nodes, so the node engine
        // runs with natural output ordering.
        let mut node_opts = opts;
        node_opts.natural_output = true;
        Self {
            log_n,
            log_t,
            node_engine: UniNttEngine::new(log_n - log_t, node_cfg, node_opts, field_spec),
            outer: Ntt::new(log_t),
            field_spec,
            node_cfg: node_cfg.clone(),
            opts,
        }
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        1 << self.log_t
    }

    /// `(per-node transform size, GPUs per node)` for the current plan.
    fn node_shape(&self) -> (usize, usize) {
        (
            self.n() / self.num_nodes(),
            self.node_engine.plan().num_gpus(),
        )
    }

    /// The fused node-boundary twiddle kernel (tail of the node phase).
    fn node_twiddle_profile(&self) -> KernelProfile {
        let (r, gpus) = self.node_shape();
        let mut profile = KernelProfile::named("node-boundary-twiddle");
        profile.field_muls = r as u64 / gpus as u64;
        profile.blocks = (r as u64 / 256).max(1);
        profile
    }

    /// The outer size-T column-NTT kernel (phase 3).
    fn cluster_outer_profile(&self) -> KernelProfile {
        let (r, gpus) = self.node_shape();
        let mut profile = KernelProfile::named("cluster-outer-ntt");
        profile.field_muls = (r as u64 / 2) * self.log_t as u64 / gpus as u64;
        profile.global_bytes_read = (r * self.field_spec.elem_bytes) as u64;
        profile.global_bytes_written = (r * self.field_spec.elem_bytes) as u64;
        profile.blocks = (r as u64 / 256).max(1);
        profile
    }

    /// Charges the cross-node all-to-all. Under [`CommMode::Overlapped`]
    /// the chunked transfer is pipelined against the outer column NTTs,
    /// so only the un-hidden remainder lands on the cluster clock; both
    /// the functional and cost-only paths route through here so they
    /// charge identically.
    fn charge_cluster_exchange(&self, cluster: &mut Cluster) {
        let t = self.num_nodes();
        let bytes = ((self.n() / t) * self.field_spec.elem_bytes) as u64;
        if self.opts.effective_comm_mode() == CommMode::Overlapped {
            let hide = cluster.nodes[0]
                .model()
                .kernel_cost(&self.cluster_outer_profile())
                .total_ns;
            cluster.charge_network_all_to_all_overlapped(t, bytes, hide);
        } else {
            cluster.charge_network_all_to_all_among(t, bytes);
        }
    }

    /// Forward NTT across the cluster.
    ///
    /// Input: `node_shards[t]` holds the node-cyclic sub-sequence
    /// `x[j·T + t]` in host memory; each node distributes it across its
    /// GPUs internally. Output: `X[k1·(N/T) + k2]` lands on node
    /// `k2 / (N/T²)` — the node-level block-cyclic order, matching the
    /// single-node engine's convention one level up.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(&self, cluster: &mut Cluster, node_shards: &mut [Vec<F>]) {
        let t = self.num_nodes();
        assert_eq!(cluster.num_nodes(), t, "cluster does not match the plan");
        assert_eq!(node_shards.len(), t, "need one shard per node");
        let r = self.n() / t; // per-node transform size
        assert!(
            node_shards.iter().all(|s| s.len() == r),
            "every node shard must hold 2^{} elements",
            self.log_n - self.log_t
        );

        let root = unintt_telemetry::reserve_span_id();
        let t_begin = cluster.total_time_ns();

        // Phase 1 (parallel across nodes): each node runs the full
        // single-node UniNTT on its sub-sequence, then applies the fused
        // node-boundary twiddle ω_N^{t·k2}.
        let omega = F::two_adic_generator(self.log_n);
        let gpus = self.node_engine.plan().num_gpus();
        for (node_idx, (machine, shard)) in cluster
            .nodes
            .iter_mut()
            .zip(node_shards.iter_mut())
            .enumerate()
        {
            let mut data = Sharded::distribute(shard, gpus, ShardLayout::Cyclic);
            self.node_engine.forward(machine, &mut data);
            *shard = data.collect();

            // Boundary twiddle, charged as one fused-scale kernel.
            let step = omega.pow(node_idx as u64);
            let mut cur = F::ONE;
            for v in shard.iter_mut() {
                *v *= cur;
                cur *= step;
            }
            let profile = self.node_twiddle_profile();
            let mut unused = ();
            machine.on_device(0, &mut unused, |ctx, _| {
                ctx.launch(&profile);
            });
        }

        obs_cluster_span(
            root,
            cluster,
            "node-phase",
            "phase",
            false,
            t_begin,
            Vec::new,
        );

        // Phase 2: one cross-node all-to-all (chunk transpose).
        let chunk = r / t;
        let old: Vec<Vec<F>> = node_shards.to_vec();
        for (dst, shard) in node_shards.iter_mut().enumerate() {
            for (src, old_shard) in old.iter().enumerate() {
                shard[src * chunk..(src + 1) * chunk]
                    .copy_from_slice(&old_shard[dst * chunk..(dst + 1) * chunk]);
            }
        }
        let t0 = cluster.total_time_ns();
        let pre = root.map(|_| (cluster.network_bytes, cluster.network_hidden_ns));
        self.charge_cluster_exchange(cluster);
        if let Some((pre_bytes, pre_hidden)) = pre {
            obs_cluster_span(
                root,
                cluster,
                "cluster-exchange",
                "interconnect",
                false,
                t0,
                || {
                    vec![
                        ("bytes", (cluster.network_bytes - pre_bytes).into()),
                        (
                            "hidden_comm_ns",
                            (cluster.network_hidden_ns - pre_hidden).into(),
                        ),
                    ]
                },
            );
        }

        // Phase 3: size-T NTTs down the received columns, on each node.
        let t0 = cluster.total_time_ns();
        for (machine, shard) in cluster.nodes.iter_mut().zip(node_shards.iter_mut()) {
            let mut col = vec![F::ZERO; t];
            for j in 0..chunk {
                for (src, slot) in col.iter_mut().enumerate() {
                    *slot = shard[src * chunk + j];
                }
                self.outer.forward(&mut col);
                for (k1, &v) in col.iter().enumerate() {
                    shard[k1 * chunk + j] = v;
                }
            }
            let profile = self.cluster_outer_profile();
            let mut unused = ();
            machine.on_device(0, &mut unused, |ctx, _| {
                ctx.launch(&profile);
            });
        }
        obs_cluster_span(root, cluster, "outer-phase", "phase", false, t0, Vec::new);
        let nodes = t;
        obs_cluster_span(
            root,
            cluster,
            "cluster-forward",
            "transform",
            true,
            t_begin,
            || vec![("nodes", nodes.into())],
        );
    }

    /// Fault-tolerant forward NTT with degraded re-planning.
    ///
    /// Takes the input in natural host order and returns the transform in
    /// natural order, surviving permanent device losses inside node
    /// machines: when a node's engine reports [`FabricError::DeviceLost`],
    /// the node is evicted, the mixed-radix decomposition is re-derived
    /// over the largest power-of-two subset of healthy nodes, and the run
    /// replays from the last completed checkpoint. With the simulated
    /// fault model only the node phase (level 0 → 1) can fail — the
    /// cross-node exchange is charged analytically — so a replan resumes
    /// from the level-0 checkpoint, i.e. the input itself; transient drops
    /// and corrupted transfers are absorbed *within* a plan by the node
    /// engines' retry/checksum machinery and never reach this level.
    ///
    /// Simulated time accumulates across replans on every surviving
    /// machine, so the recovery overhead of a policy is directly visible
    /// in [`Cluster::total_time_ns`].
    ///
    /// # Errors
    ///
    /// Returns the final [`FabricError`] when no healthy node subset can
    /// complete the transform (all nodes lost, or a transient fault
    /// outlived `policy.max_retries`).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the planned transform size or
    /// the cluster does not match the plan.
    pub fn forward_with_recovery(
        &self,
        cluster: &mut Cluster,
        input: &[F],
        policy: &RecoveryPolicy,
    ) -> Result<ClusterRunReport<F>, FabricError> {
        assert_eq!(input.len(), self.n(), "input length mismatch");
        assert_eq!(
            cluster.num_nodes(),
            self.num_nodes(),
            "cluster does not match the plan"
        );
        let mut survivors = cluster.healthy_nodes();
        let mut replans = 0u32;
        let mut lost_nodes = Vec::new();
        let mut retries_per_attempt = Vec::new();
        let mut last_err = None;
        loop {
            let mut t = 0usize;
            if !survivors.is_empty() {
                t = 1;
                while t * 2 <= survivors.len() {
                    t *= 2;
                }
            }
            if t == 0 {
                return Err(last_err.unwrap_or(FabricError::DeviceLost {
                    device: 0,
                    seq: cluster.nodes.first().map_or(0, Machine::collective_seq),
                }));
            }
            // Checkpoint level 0: the input vector. Every replan re-derives
            // the plan over the survivor prefix and replays from here.
            let plan = if t == self.num_nodes() {
                None
            } else {
                Some(Self::new(
                    self.log_n,
                    t,
                    &self.node_cfg,
                    self.opts,
                    self.field_spec,
                ))
            };
            let plan = plan.as_ref().unwrap_or(self);
            let retries_before = Self::cluster_retries(cluster);
            let attempt = plan.try_forward_active(cluster, &survivors[..t], input, policy);
            retries_per_attempt.push(Self::cluster_retries(cluster) - retries_before);
            match attempt {
                Ok(output) => {
                    let mut collectives = 0u64;
                    let mut comm_bytes = cluster.network_bytes;
                    let mut comm_hidden_ns = cluster.network_hidden_ns;
                    for machine in &cluster.nodes {
                        let stats = machine.stats();
                        collectives += stats.collectives;
                        comm_bytes += stats.interconnect_bytes_sent;
                        comm_hidden_ns += stats.comm_hidden_ns;
                    }
                    return Ok(ClusterRunReport {
                        output,
                        replans,
                        lost_nodes,
                        nodes_used: t,
                        retries_per_attempt,
                        collectives,
                        comm_bytes,
                        comm_hidden_ns,
                    });
                }
                Err((Some(node), e)) => {
                    lost_nodes.push(node);
                    survivors.retain(|&i| i != node);
                    replans += 1;
                    last_err = Some(e);
                }
                Err((None, e)) => return Err(e),
            }
        }
    }

    /// Transient retries charged so far across every node machine.
    fn cluster_retries(cluster: &Cluster) -> u64 {
        cluster.nodes.iter().map(|m| m.stats().retries).sum()
    }

    /// One attempt of the three cluster phases over the `active` node
    /// subset (which must have exactly `self.num_nodes()` entries).
    /// Returns `Err((Some(node), e))` when `node` suffered a permanent
    /// device loss (recoverable by eviction), `Err((None, e))` for
    /// non-recoverable fabric errors.
    fn try_forward_active(
        &self,
        cluster: &mut Cluster,
        active: &[usize],
        input: &[F],
        policy: &RecoveryPolicy,
    ) -> Result<Vec<F>, (Option<usize>, FabricError)> {
        let t = self.num_nodes();
        debug_assert_eq!(active.len(), t);
        let r = self.n() / t;
        let mut shards = self.distribute(input);
        let root = unintt_telemetry::reserve_span_id();
        let t_begin = cluster.total_time_ns();

        // Level 0 → 1: per-node UniNTT + fused boundary twiddle.
        let omega = F::two_adic_generator(self.log_n);
        let gpus = self.node_engine.plan().num_gpus();
        for (slot, (&node, shard)) in active.iter().zip(shards.iter_mut()).enumerate() {
            let machine = &mut cluster.nodes[node];
            let mut data = Sharded::distribute(shard, gpus, ShardLayout::Cyclic);
            if let Err(e) = self.node_engine.try_forward(machine, &mut data, policy) {
                return match e {
                    FabricError::DeviceLost { .. } => Err((Some(node), e)),
                    other => Err((None, other)),
                };
            }
            *shard = data.collect();

            let step = omega.pow(slot as u64);
            let mut cur = F::ONE;
            for v in shard.iter_mut() {
                *v *= cur;
                cur *= step;
            }
            let profile = self.node_twiddle_profile();
            let mut unused = ();
            machine.on_device(0, &mut unused, |ctx, _| {
                ctx.launch(&profile);
            });
        }

        obs_cluster_span(
            root,
            cluster,
            "node-phase",
            "phase",
            false,
            t_begin,
            Vec::new,
        );

        // Level 1 → 2: cross-node all-to-all among the survivors only
        // (`self` is the survivor-subset plan here, so the exchange helper
        // charges among exactly `t` participants).
        let chunk = r / t;
        let old: Vec<Vec<F>> = shards.to_vec();
        for (dst, shard) in shards.iter_mut().enumerate() {
            for (src, old_shard) in old.iter().enumerate() {
                shard[src * chunk..(src + 1) * chunk]
                    .copy_from_slice(&old_shard[dst * chunk..(dst + 1) * chunk]);
            }
        }
        let t0 = cluster.total_time_ns();
        let pre = root.map(|_| (cluster.network_bytes, cluster.network_hidden_ns));
        self.charge_cluster_exchange(cluster);
        if let Some((pre_bytes, pre_hidden)) = pre {
            obs_cluster_span(
                root,
                cluster,
                "cluster-exchange",
                "interconnect",
                false,
                t0,
                || {
                    vec![
                        ("bytes", (cluster.network_bytes - pre_bytes).into()),
                        (
                            "hidden_comm_ns",
                            (cluster.network_hidden_ns - pre_hidden).into(),
                        ),
                    ]
                },
            );
        }

        // Level 2 → 3: size-T outer NTTs on each surviving node.
        let t0 = cluster.total_time_ns();
        for (&node, shard) in active.iter().zip(shards.iter_mut()) {
            let machine = &mut cluster.nodes[node];
            let mut col = vec![F::ZERO; t];
            for j in 0..chunk {
                for (src, slot) in col.iter_mut().enumerate() {
                    *slot = shard[src * chunk + j];
                }
                self.outer.forward(&mut col);
                for (k1, &v) in col.iter().enumerate() {
                    shard[k1 * chunk + j] = v;
                }
            }
            let profile = self.cluster_outer_profile();
            let mut unused = ();
            machine.on_device(0, &mut unused, |ctx, _| {
                ctx.launch(&profile);
            });
        }
        obs_cluster_span(root, cluster, "outer-phase", "phase", false, t0, Vec::new);
        obs_cluster_span(
            root,
            cluster,
            "cluster-attempt",
            "transform",
            true,
            t_begin,
            || vec![("nodes", active.len().into())],
        );
        Ok(self.collect(&shards))
    }

    /// Reassembles the cluster output into the natural-order host vector.
    pub fn collect(&self, node_shards: &[Vec<F>]) -> Vec<F> {
        let t = self.num_nodes();
        let r = self.n() / t;
        let chunk = r / t;
        let mut out = vec![F::ZERO; self.n()];
        // Node `c` position k1·chunk + j holds X[k1·R + c·chunk + j].
        for (c, shard) in node_shards.iter().enumerate() {
            for (pos, &v) in shard.iter().enumerate() {
                let (k1, j) = (pos / chunk, pos % chunk);
                out[k1 * r + c * chunk + j] = v;
            }
        }
        out
    }

    /// Distributes a host vector into the node-cyclic input layout.
    pub fn distribute(&self, input: &[F]) -> Vec<Vec<F>> {
        let t = self.num_nodes();
        assert_eq!(input.len(), self.n(), "input length mismatch");
        let mut shards = vec![Vec::with_capacity(input.len() / t); t];
        for (i, &v) in input.iter().enumerate() {
            shards[i % t].push(v);
        }
        shards
    }

    /// Cost-only forward transform for large-size sweeps.
    pub fn simulate_forward(&self, cluster: &mut Cluster) {
        let root = unintt_telemetry::reserve_span_id();
        let t_begin = cluster.total_time_ns();
        let twiddle = self.node_twiddle_profile();
        let outer = self.cluster_outer_profile();
        for machine in cluster.nodes.iter_mut() {
            self.node_engine.simulate_forward(machine, 1);
            let mut unused = ();
            machine.on_device(0, &mut unused, |ctx, _| {
                ctx.launch(&twiddle);
                ctx.launch(&outer);
            });
        }
        obs_cluster_span(
            root,
            cluster,
            "node-phase",
            "phase",
            false,
            t_begin,
            Vec::new,
        );
        let t0 = cluster.total_time_ns();
        let pre = root.map(|_| (cluster.network_bytes, cluster.network_hidden_ns));
        self.charge_cluster_exchange(cluster);
        if let Some((pre_bytes, pre_hidden)) = pre {
            obs_cluster_span(
                root,
                cluster,
                "cluster-exchange",
                "interconnect",
                false,
                t0,
                || {
                    vec![
                        ("bytes", (cluster.network_bytes - pre_bytes).into()),
                        (
                            "hidden_comm_ns",
                            (cluster.network_hidden_ns - pre_hidden).into(),
                        ),
                    ]
                },
            );
        }
        let nodes = cluster.num_nodes();
        obs_cluster_span(
            root,
            cluster,
            "cluster-forward",
            "transform",
            true,
            t_begin,
            || vec![("nodes", nodes.into())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks};
    use unintt_gpu_sim::presets;

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    fn reference(input: &[Goldilocks]) -> Vec<Goldilocks> {
        let ntt = Ntt::<Goldilocks>::new(input.len().trailing_zeros());
        let mut out = input.to_vec();
        ntt.forward(&mut out);
        out
    }

    #[test]
    fn cluster_forward_matches_reference() {
        let fs = FieldSpec::goldilocks();
        for nodes in [1usize, 2, 4] {
            for gpus in [1usize, 4] {
                let log_n = 12u32;
                let node_cfg = presets::a100_nvlink(gpus);
                let engine = ClusterNttEngine::<Goldilocks>::new(
                    log_n,
                    nodes,
                    &node_cfg,
                    UniNttOptions::tuned_for(&fs),
                    fs,
                );
                let mut cluster =
                    Cluster::new(nodes, node_cfg, NetworkConfig::infiniband_400g(), fs);
                let input = random_vec(1 << log_n, nodes as u64);
                let mut shards = engine.distribute(&input);
                engine.forward(&mut cluster, &mut shards);
                assert_eq!(
                    engine.collect(&shards),
                    reference(&input),
                    "nodes={nodes} gpus={gpus}"
                );
                if nodes > 1 {
                    assert!(cluster.network_bytes() > 0);
                    assert!(cluster.total_time_ns() > 0.0);
                }
            }
        }
    }

    #[test]
    fn network_volume_is_exact() {
        let fs = FieldSpec::goldilocks();
        let nodes = 4usize;
        let log_n = 14u32;
        let node_cfg = presets::a100_nvlink(4);
        let engine = ClusterNttEngine::<Goldilocks>::new(
            log_n,
            nodes,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );
        let mut cluster = Cluster::new(nodes, node_cfg, NetworkConfig::infiniband_400g(), fs);
        let input = random_vec(1 << log_n, 1);
        let mut shards = engine.distribute(&input);
        engine.forward(&mut cluster, &mut shards);
        // Each node sends (T-1)/T of its R-element shard once.
        let r_bytes = (1u64 << (log_n - 2)) * 8;
        assert_eq!(cluster.network_bytes(), r_bytes * 3 / 4 * nodes as u64);
    }

    #[test]
    fn simulate_matches_functional_clock() {
        let fs = FieldSpec::goldilocks();
        let nodes = 4usize;
        let log_n = 14u32;
        let node_cfg = presets::a100_nvlink(4);
        let engine = ClusterNttEngine::<Goldilocks>::new(
            log_n,
            nodes,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );

        let mut real = Cluster::new(
            nodes,
            node_cfg.clone(),
            NetworkConfig::infiniband_400g(),
            fs,
        );
        let input = random_vec(1 << log_n, 2);
        let mut shards = engine.distribute(&input);
        engine.forward(&mut real, &mut shards);

        let mut sim = Cluster::new(nodes, node_cfg, NetworkConfig::infiniband_400g(), fs);
        engine.simulate_forward(&mut sim);

        let (rt, st) = (real.total_time_ns(), sim.total_time_ns());
        assert!((rt - st).abs() < 1e-6 * rt, "real={rt} sim={st}");
        assert_eq!(real.network_bytes(), sim.network_bytes());
    }

    #[test]
    fn network_model_scales() {
        let net = NetworkConfig::infiniband_400g();
        assert_eq!(net.all_to_all_ns(1, 1 << 30), 0.0);
        let t2 = net.all_to_all_ns(2, 1 << 30);
        let t8 = net.all_to_all_ns(8, 1 << 30);
        assert!(t8 > t2, "more nodes exchange a larger fraction");
        let eth = NetworkConfig::ethernet_100g();
        assert!(eth.all_to_all_ns(4, 1 << 30) > net.all_to_all_ns(4, 1 << 30));
    }

    #[test]
    fn network_cost_is_pinned_to_shared_alpha_beta() {
        // The network charge must equal the shared α–β formula in
        // unintt-gpu-sim, and its absolute value is pinned so neither
        // layer can drift in units without this test noticing.
        let net = NetworkConfig::infiniband_400g();
        let got = net.all_to_all_ns(4, 1 << 30);
        assert_eq!(
            got,
            alpha_beta_all_to_all_ns(4, 1 << 30, 50.0, 5_000.0, 0.85)
        );
        // 4 nodes × 1 GiB: egress 3/4 GiB per node at 50 GB/s × 0.85
        // = 805306368 B / 42.5 B/ns + 5 µs latency.
        let expected = 5_000.0 + (1u64 << 30) as f64 * 0.75 / 42.5;
        assert_eq!(got, expected);
        assert!((got - 18_953_385.129).abs() < 0.01, "charged {got} ns");
    }

    #[test]
    fn overlapped_cluster_hides_network_time() {
        let fs = FieldSpec::goldilocks();
        let node_cfg = presets::a100_nvlink(4);
        let log_n = 22u32;
        let mut opts = UniNttOptions::tuned_for(&fs);
        let over_engine = ClusterNttEngine::<Goldilocks>::new(log_n, 4, &node_cfg, opts, fs);
        opts.comm_mode = CommMode::Blocking;
        let block_engine = ClusterNttEngine::<Goldilocks>::new(log_n, 4, &node_cfg, opts, fs);

        let mut over = Cluster::new(4, node_cfg.clone(), NetworkConfig::infiniband_400g(), fs);
        over_engine.simulate_forward(&mut over);
        let mut block = Cluster::new(4, node_cfg, NetworkConfig::infiniband_400g(), fs);
        block_engine.simulate_forward(&mut block);

        assert!(over.network_hidden_ns() > 0.0, "wire time must be hidden");
        assert_eq!(block.network_hidden_ns(), 0.0);
        assert!(
            over.total_time_ns() < block.total_time_ns(),
            "overlap must shorten the makespan: over={} block={}",
            over.total_time_ns(),
            block.total_time_ns()
        );
        assert_eq!(over.network_bytes(), block.network_bytes());
    }

    #[test]
    fn recovery_without_faults_matches_reference() {
        let fs = FieldSpec::goldilocks();
        let node_cfg = presets::a100_nvlink(4);
        let engine = ClusterNttEngine::<Goldilocks>::new(
            12,
            4,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );
        let mut cluster = Cluster::new(4, node_cfg, NetworkConfig::infiniband_400g(), fs);
        let input = random_vec(1 << 12, 11);
        let report = engine
            .forward_with_recovery(&mut cluster, &input, &RecoveryPolicy::default())
            .unwrap();
        assert_eq!(report.output, reference(&input));
        assert_eq!(report.replans, 0);
        assert!(report.lost_nodes.is_empty());
        assert_eq!(report.nodes_used, 4);
        assert_eq!(report.retries_per_attempt, vec![0]);
        assert_eq!(report.total_retries(), 0);
        assert_eq!(report.attempts(), 1);
        // Communication totals (satellite observability): GPU-fabric
        // collectives ran on every node, bytes cover fabric + network, and
        // the default overlapped schedule hid some network wire time.
        assert!(report.collectives > 0);
        assert!(report.comm_bytes > cluster.network_bytes());
        assert!(report.comm_hidden_ns > 0.0);
        assert_eq!(
            report.comm_hidden_ns,
            cluster.network_hidden_ns()
                + (0..4)
                    .map(|i| cluster.node(i).stats().comm_hidden_ns)
                    .sum::<f64>()
        );
    }

    #[test]
    fn transient_drops_are_reported_per_attempt() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let fs = FieldSpec::goldilocks();
        let node_cfg = presets::a100_nvlink(4);
        let engine = ClusterNttEngine::<Goldilocks>::new(
            12,
            2,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );
        let mut cluster = Cluster::new(2, node_cfg, NetworkConfig::infiniband_400g(), fs);
        // Two dropped collectives on node 0: absorbed by the policy's
        // retries within the single attempt, and surfaced in the report.
        cluster.node_mut(0).set_fault_plan(FaultPlan::scripted(vec![
            FaultEvent {
                seq: 0,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                seq: 2,
                kind: FaultKind::Drop,
            },
        ]));
        let input = random_vec(1 << 12, 21);
        let report = engine
            .forward_with_recovery(&mut cluster, &input, &RecoveryPolicy::default())
            .unwrap();
        assert_eq!(report.output, reference(&input));
        assert_eq!(report.replans, 0, "drops never evict a node");
        assert_eq!(report.attempts(), 1);
        assert_eq!(report.retries_per_attempt.len(), 1);
        assert!(
            report.total_retries() >= 2,
            "both injected drops must surface as retries: {:?}",
            report.retries_per_attempt
        );
    }

    #[test]
    fn recovery_skips_pre_dead_node() {
        let fs = FieldSpec::goldilocks();
        let node_cfg = presets::a100_nvlink(4);
        let engine = ClusterNttEngine::<Goldilocks>::new(
            12,
            4,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );
        let mut cluster = Cluster::new(4, node_cfg, NetworkConfig::infiniband_400g(), fs);
        cluster.node_mut(2).fail_device(1);
        let input = random_vec(1 << 12, 12);
        let report = engine
            .forward_with_recovery(&mut cluster, &input, &RecoveryPolicy::default())
            .unwrap();
        assert_eq!(report.output, reference(&input));
        // Three healthy nodes -> largest power-of-two subset is two.
        assert_eq!(report.nodes_used, 2);
        assert_eq!(
            report.replans, 0,
            "pre-dead nodes are excluded, not replanned"
        );
    }

    #[test]
    fn mid_run_node_loss_replans_and_recovers() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let fs = FieldSpec::goldilocks();
        let node_cfg = presets::a100_nvlink(4);
        let engine = ClusterNttEngine::<Goldilocks>::new(
            12,
            4,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );
        let mut cluster = Cluster::new(4, node_cfg, NetworkConfig::infiniband_400g(), fs);
        // Node 1 loses GPU 3 at its first collective.
        cluster
            .node_mut(1)
            .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
                seq: 0,
                kind: FaultKind::DeviceLoss { device: 3 },
            }]));
        let input = random_vec(1 << 12, 13);
        let report = engine
            .forward_with_recovery(&mut cluster, &input, &RecoveryPolicy::default())
            .unwrap();
        assert_eq!(
            report.output,
            reference(&input),
            "degraded result must stay exact"
        );
        assert_eq!(report.replans, 1);
        assert_eq!(report.lost_nodes, vec![1]);
        assert_eq!(report.nodes_used, 2);
        assert_eq!(
            report.attempts(),
            2,
            "one failed attempt plus the successful replay"
        );
        assert!(!cluster.node(1).is_alive(3));
    }

    #[test]
    fn all_nodes_lost_reports_error() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let fs = FieldSpec::goldilocks();
        let node_cfg = presets::a100_nvlink(2);
        let engine = ClusterNttEngine::<Goldilocks>::new(
            12,
            2,
            &node_cfg,
            UniNttOptions::tuned_for(&fs),
            fs,
        );
        let mut cluster = Cluster::new(2, node_cfg, NetworkConfig::infiniband_400g(), fs);
        for i in 0..2 {
            cluster
                .node_mut(i)
                .set_fault_plan(FaultPlan::scripted(vec![FaultEvent {
                    seq: 0,
                    kind: FaultKind::DeviceLoss { device: 0 },
                }]));
        }
        let input = random_vec(1 << 12, 14);
        let err = engine
            .forward_with_recovery(&mut cluster, &input, &RecoveryPolicy::default())
            .unwrap_err();
        assert!(matches!(
            err,
            unintt_gpu_sim::FabricError::DeviceLost { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_transform_rejected() {
        let fs = FieldSpec::goldilocks();
        let _ = ClusterNttEngine::<Goldilocks>::new(
            3,
            4,
            &presets::a100_nvlink(2),
            UniNttOptions::tuned_for(&fs),
            fs,
        );
    }
}
