//! The UniNTT hierarchical execution engine.
//!
//! ## Algebra
//!
//! With `N = G·M` (`G` GPUs) and input distributed **cyclically**
//! (`x[i2·G + i1]` on GPU `i1`), the DFT factors as
//!
//! ```text
//! X[k1·M + k2] = Σ_{i1} ω_G^{i1·k1} · ω_N^{i1·k2} · Inner(i1, k2)
//! Inner(i1, k2) = Σ_{i2} x[i2·G + i1] · ω_M^{i2·k2}
//! ```
//!
//! which the engine executes as three phases:
//!
//! 1. **Local phase** (every GPU, no communication): a size-`M` NTT over
//!    the local shard — itself executed as the planned hierarchy of fused
//!    global-memory passes, shared-memory tiles, and warp shuffles — with
//!    the boundary twiddle `ω_N^{i1·k2}` fused into the final pass (O1).
//! 2. **Exchange**: exactly one all-to-all. The pack/unpack is fused into
//!    the neighboring kernels' addressing (O4) — the "overhead-free" part:
//!    no standalone transpose pass ever touches memory.
//! 3. **Outer phase**: `M/G` independent size-`G` NTTs per GPU, now fully
//!    local.
//!
//! The forward output is left in the documented
//! [`ShardLayout::BlockCyclic`] order (evaluation-domain consumers are
//! order-oblivious); [`UniNttOptions::natural_output`] adds the extra
//! all-to-all that restores natural blocks. The inverse transform retraces
//! the same three phases backwards, so `inverse(forward(x)) == x` exactly.
//!
//! ## Communication–compute overlap
//!
//! Under [`CommMode::Overlapped`] (the default) the exchange is charged as
//! a software pipeline instead of a blocking transfer: the exchange-
//! adjacent kernels — the final (twiddle-fused) local pass on one side and
//! the outer stage on the other — are sliced across
//! [`UniNttOptions::comm_chunks`] pipeline chunks and interleaved with the
//! chunked all-to-all, so wire time hides behind butterfly work. The data
//! movement, fault injection points, and checksum-repair semantics are
//! bit-identical to [`CommMode::Blocking`]; only the charged schedule
//! changes. The `natural_output` reordering exchange stays blocking in
//! both modes (it has no adjacent compute to hide behind).
//!
//! Functional correctness is independent of every optimization switch:
//! options change only the charged [`unintt_gpu_sim::KernelProfile`]s.

use std::sync::OnceLock;

use unintt_ff::TwoAdicField;
use unintt_gpu_sim::{
    FabricError, FieldSpec, KernelProfile, Machine, MachineConfig, OverlapCompute,
};
use unintt_ntt::{Direction, Ntt};

use crate::profiles;
use crate::{CommMode, DecompositionPlan, RecoveryPolicy, ShardLayout, Sharded, UniNttOptions};

/// Records one engine phase span on the machine's track, parented to the
/// reserved transform root. `root` is `None` exactly when telemetry is
/// disabled, so the disabled path never evaluates `attrs`.
fn obs_phase(
    root: Option<u64>,
    machine: &Machine,
    name: &'static str,
    category: &'static str,
    t_start_ns: f64,
    attrs: impl FnOnce() -> Vec<(&'static str, unintt_telemetry::AttrValue)>,
) {
    if let Some(parent) = root {
        unintt_telemetry::record_span(|| unintt_telemetry::Span {
            id: unintt_telemetry::fresh_id(),
            parent: Some(parent),
            name: name.to_string(),
            level: unintt_telemetry::SpanLevel::Fabric,
            category,
            track: machine.label().to_string(),
            t_start_ns,
            t_end_ns: machine.max_clock_ns(),
            attrs: attrs(),
        });
    }
}

/// Records the transform's root span (recorded last, after its phases,
/// under the id reserved up front).
fn obs_root(
    root: Option<u64>,
    machine: &Machine,
    name: &'static str,
    t_start_ns: f64,
    attrs: impl FnOnce() -> Vec<(&'static str, unintt_telemetry::AttrValue)>,
) {
    if let Some(id) = root {
        unintt_telemetry::record_span(|| unintt_telemetry::Span {
            id,
            parent: None,
            name: name.to_string(),
            level: unintt_telemetry::SpanLevel::Fabric,
            category: "transform",
            track: machine.label().to_string(),
            t_start_ns,
            t_end_ns: machine.max_clock_ns(),
            attrs: attrs(),
        });
    }
}

/// Raw-vs-exposed-vs-hidden interconnect annotations for an exchange
/// span, from the stats delta across the exchange.
fn exchange_attrs(
    pre: &unintt_gpu_sim::Stats,
    post: &unintt_gpu_sim::Stats,
    overlapped: bool,
) -> Vec<(&'static str, unintt_telemetry::AttrValue)> {
    vec![
        (
            "mode",
            if overlapped { "overlapped" } else { "blocking" }.into(),
        ),
        (
            "raw_comm_ns",
            (post.raw_time_ns.interconnect - pre.raw_time_ns.interconnect).into(),
        ),
        (
            "exposed_comm_ns",
            (post.time_ns.interconnect - pre.time_ns.interconnect).into(),
        ),
        (
            "hidden_comm_ns",
            (post.comm_hidden_ns - pre.comm_hidden_ns).into(),
        ),
    ]
}

/// The UniNTT multi-GPU NTT engine.
#[derive(Clone, Debug)]
pub struct UniNttEngine<F: TwoAdicField> {
    plan: DecompositionPlan,
    opts: UniNttOptions,
    field_spec: FieldSpec,
    // Twiddle tables are built lazily: cost-only simulations
    // (`simulate_forward`) never pay for them, and a 2^28 engine stays
    // cheap to construct.
    local: OnceLock<Ntt<F>>,
    outer: OnceLock<Ntt<F>>,
}

impl<F: TwoAdicField> UniNttEngine<F> {
    /// Plans and precomputes an engine for size `2^log_n` on `machine_cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the GPU count is not a power of two, `log_n` exceeds the
    /// field's two-adicity, or the shard would be smaller than the GPU
    /// count (needed by the block-cyclic output layout).
    pub fn new(
        log_n: u32,
        machine_cfg: &MachineConfig,
        opts: UniNttOptions,
        field_spec: FieldSpec,
    ) -> Self {
        let plan = DecompositionPlan::plan(log_n, machine_cfg, field_spec.elem_bytes);
        assert!(
            plan.log_m >= plan.log_g,
            "shard of 2^{} elements is smaller than the 2^{} GPUs (block-cyclic layout needs log_m >= log_g)",
            plan.log_m,
            plan.log_g
        );
        Self {
            local: OnceLock::new(),
            outer: OnceLock::new(),
            plan,
            opts,
            field_spec,
        }
    }

    /// The decomposition plan in force.
    pub fn plan(&self) -> &DecompositionPlan {
        &self.plan
    }

    /// The optimization switches in force.
    pub fn options(&self) -> &UniNttOptions {
        &self.opts
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.plan.n()
    }

    /// Whether the multi-GPU exchange runs as a software pipeline (the
    /// resolved communication mode, honoring the process-wide override).
    fn overlapped(&self) -> bool {
        self.plan.num_gpus() > 1 && self.opts.effective_comm_mode() == CommMode::Overlapped
    }

    /// Pipeline depth for the overlapped exchange: the explicit
    /// [`UniNttOptions::comm_chunks`] if set, else the planner's choice.
    fn comm_chunks(&self) -> u32 {
        if self.opts.comm_chunks > 0 {
            self.opts.comm_chunks
        } else {
            self.plan.default_comm_chunks()
        }
    }

    /// The kernels the overlapped exchange interleaves with. The local
    /// side is the exchange-adjacent tail of the local phase (final
    /// twiddle-fused pass, plus the standalone twiddle/pack kernels when
    /// O1/O4 are off); the outer side is the whole outer phase. Forward
    /// streams local → fabric → outer; inverse streams outer → fabric →
    /// local. [`Self::charge_local`] skips exactly this local-side set
    /// when overlap is on, so the totals never double-charge.
    fn exchange_compute_profiles(
        &self,
        direction: Direction,
        per_launch: u64,
    ) -> (Vec<KernelProfile>, Vec<KernelProfile>) {
        let (plan, opts, fs) = (&self.plan, &self.opts, self.field_spec);
        debug_assert!(plan.num_gpus() > 1);
        let radix = *plan
            .device_passes
            .last()
            .expect("plans always have at least one device pass");
        let mut local_side = vec![profiles::local_pass_profile(
            plan,
            opts,
            fs,
            radix,
            per_launch,
            opts.fuse_twiddle,
        )];
        if !opts.fuse_twiddle {
            local_side.push(profiles::twiddle_kernel_profile(plan, opts, fs, per_launch));
        }
        if !opts.fuse_exchange {
            local_side.push(profiles::pack_kernel_profile(plan, fs, per_launch));
        }
        let mut outer_side = Vec::new();
        if !opts.fuse_exchange {
            outer_side.push(profiles::pack_kernel_profile(plan, fs, per_launch));
        }
        outer_side.push(profiles::outer_stage_profile(plan, opts, fs, per_launch));
        match direction {
            Direction::Forward => (local_side, outer_side),
            Direction::Inverse => (outer_side, local_side),
        }
    }

    /// The lazily-built local (size-M) NTT context.
    fn local(&self) -> &Ntt<F> {
        self.local.get_or_init(|| Ntt::new(self.plan.log_m))
    }

    /// The lazily-built outer (size-G) NTT context.
    fn outer(&self) -> &Ntt<F> {
        self.outer.get_or_init(|| Ntt::new(self.plan.log_g))
    }

    /// The per-device boundary-twiddle step `ω_N^{±dev}`: on device `dev`
    /// the fused twiddle for output `k2` is `step^k2`, applied by a running
    /// product (the on-the-fly generation the O2 optimization models).
    fn boundary_step(&self, dev: usize, direction: Direction) -> F {
        let omega = F::two_adic_generator(self.plan.log_n);
        let root = match direction {
            Direction::Forward => omega,
            Direction::Inverse => omega.inverse().expect("roots of unity are nonzero"),
        };
        root.pow(dev as u64)
    }

    /// Forward NTT of a single vector. See the module docs for layout
    /// semantics: input [`ShardLayout::Cyclic`], output
    /// [`ShardLayout::BlockCyclic`] (or natural blocks when requested).
    ///
    /// # Panics
    ///
    /// Panics if the input layout or size does not match, or if
    /// `machine.num_devices()` differs from the plan.
    pub fn forward(&self, machine: &mut Machine, data: &mut Sharded<F>) {
        let mut batch = [std::mem::replace(
            data,
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::Cyclic),
        )];
        self.forward_batch(machine, &mut batch);
        *data = std::mem::replace(
            &mut batch[0],
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::Cyclic),
        );
    }

    /// Inverse NTT of a single vector (exact inverse of [`Self::forward`]).
    pub fn inverse(&self, machine: &mut Machine, data: &mut Sharded<F>) {
        let mut batch = [std::mem::replace(
            data,
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::BlockCyclic),
        )];
        self.inverse_batch(machine, &mut batch);
        *data = std::mem::replace(
            &mut batch[0],
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::BlockCyclic),
        );
    }

    /// Forward NTT of a batch of equally-sized vectors.
    ///
    /// With [`UniNttOptions::batching`] the batch shares each pass and a
    /// single (larger) all-to-all; without it every vector pays its own
    /// kernels and collectives.
    pub fn forward_batch(&self, machine: &mut Machine, batch: &mut [Sharded<F>]) {
        self.try_forward_batch(machine, batch, &RecoveryPolicy::none())
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fault-tolerant [`Self::forward_batch`]: dropped collectives are
    /// retried up to `policy.max_retries` times with exponential backoff
    /// (charged as simulated fault time), and with
    /// [`RecoveryPolicy::verify_checksums`] corrupted chunks are detected
    /// and re-requested. Permanent failures (device loss, retry budget
    /// exhausted) surface as [`FabricError`]s — multi-machine callers
    /// re-plan around them ([`crate::ClusterNttEngine`]).
    ///
    /// # Errors
    ///
    /// [`FabricError::CollectiveDropped`] once retries are exhausted;
    /// [`FabricError::DeviceLost`] on device loss.
    pub fn try_forward_batch(
        &self,
        machine: &mut Machine,
        batch: &mut [Sharded<F>],
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        self.check_batch(machine, batch, ShardLayout::Cyclic);
        let g = self.plan.num_gpus();
        let root = unintt_telemetry::reserve_span_id();
        let t_begin = machine.max_clock_ns();

        // Phase 1: local hierarchical NTT + fused boundary twiddle.
        self.local_phase(machine, batch, Direction::Forward);
        obs_phase(root, machine, "local-phase", "phase", t_begin, Vec::new);

        if g > 1 {
            // Phase 2: the single all-to-all (pipelined against the
            // adjacent passes when overlap is on).
            let overlap = self.overlapped().then_some(Direction::Forward);
            let t0 = machine.max_clock_ns();
            let pre = root.map(|_| machine.stats());
            self.exchange(machine, batch, policy, overlap)?;
            if let Some(pre) = pre {
                let post = machine.stats();
                obs_phase(root, machine, "exchange", "interconnect", t0, || {
                    exchange_attrs(&pre, &post, overlap.is_some())
                });
            }
            // Phase 3: outer size-G NTTs.
            let t0 = machine.max_clock_ns();
            self.outer_phase(machine, batch, Direction::Forward);
            obs_phase(root, machine, "outer-phase", "phase", t0, Vec::new);
        }
        for item in batch.iter_mut() {
            item.set_layout(ShardLayout::BlockCyclic);
        }

        if self.opts.natural_output {
            if g > 1 {
                let t0 = machine.max_clock_ns();
                let pre = root.map(|_| machine.stats());
                self.exchange(machine, batch, policy, None)?;
                if let Some(pre) = pre {
                    let post = machine.stats();
                    obs_phase(root, machine, "natural-reorder", "interconnect", t0, || {
                        exchange_attrs(&pre, &post, false)
                    });
                }
            }
            // For g == 1 the block-cyclic and natural layouts coincide, so
            // only the stamp changes.
            for item in batch.iter_mut() {
                item.set_layout(ShardLayout::NaturalBlocks);
            }
        }
        let b = batch.len();
        obs_root(root, machine, "unintt-forward", t_begin, || {
            vec![("batch", b.into()), ("path", "functional".into())]
        });
        Ok(())
    }

    /// Inverse NTT of a batch (exact inverse of [`Self::forward_batch`]).
    pub fn inverse_batch(&self, machine: &mut Machine, batch: &mut [Sharded<F>]) {
        self.try_inverse_batch(machine, batch, &RecoveryPolicy::none())
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fault-tolerant [`Self::inverse_batch`]; see
    /// [`Self::try_forward_batch`] for the recovery semantics.
    ///
    /// # Errors
    ///
    /// As [`Self::try_forward_batch`].
    pub fn try_inverse_batch(
        &self,
        machine: &mut Machine,
        batch: &mut [Sharded<F>],
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        let g = self.plan.num_gpus();
        let expected = if self.opts.natural_output {
            ShardLayout::NaturalBlocks
        } else {
            ShardLayout::BlockCyclic
        };
        self.check_batch(machine, batch, expected);
        let root = unintt_telemetry::reserve_span_id();
        let t_begin = machine.max_clock_ns();

        if self.opts.natural_output {
            // The chunk transpose is an involution: natural → block-cyclic.
            if g > 1 {
                let t0 = machine.max_clock_ns();
                let pre = root.map(|_| machine.stats());
                self.exchange(machine, batch, policy, None)?;
                if let Some(pre) = pre {
                    let post = machine.stats();
                    obs_phase(root, machine, "natural-reorder", "interconnect", t0, || {
                        exchange_attrs(&pre, &post, false)
                    });
                }
            }
            for item in batch.iter_mut() {
                item.set_layout(ShardLayout::BlockCyclic);
            }
        }

        if g > 1 {
            // Undo phase 3, then undo the exchange (pipelined against the
            // outer producers and local consumers when overlap is on).
            let t0 = machine.max_clock_ns();
            self.outer_phase(machine, batch, Direction::Inverse);
            obs_phase(root, machine, "outer-phase", "phase", t0, Vec::new);
            let overlap = self.overlapped().then_some(Direction::Inverse);
            let t0 = machine.max_clock_ns();
            let pre = root.map(|_| machine.stats());
            self.exchange(machine, batch, policy, overlap)?;
            if let Some(pre) = pre {
                let post = machine.stats();
                obs_phase(root, machine, "exchange", "interconnect", t0, || {
                    exchange_attrs(&pre, &post, overlap.is_some())
                });
            }
        }
        // Undo phase 1 (boundary twiddle then local inverse NTT).
        let t0 = machine.max_clock_ns();
        self.local_phase(machine, batch, Direction::Inverse);
        obs_phase(root, machine, "local-phase", "phase", t0, Vec::new);
        for item in batch.iter_mut() {
            item.set_layout(ShardLayout::Cyclic);
        }
        let b = batch.len();
        obs_root(root, machine, "unintt-inverse", t_begin, || {
            vec![("batch", b.into()), ("path", "functional".into())]
        });
        Ok(())
    }

    /// Fault-tolerant [`Self::forward`] for a single vector.
    ///
    /// # Errors
    ///
    /// As [`Self::try_forward_batch`]. On error the vector's contents are
    /// unspecified (mid-transform); re-run from the caller's checkpoint.
    pub fn try_forward(
        &self,
        machine: &mut Machine,
        data: &mut Sharded<F>,
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        let mut batch = [std::mem::replace(
            data,
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::Cyclic),
        )];
        let res = self.try_forward_batch(machine, &mut batch, policy);
        *data = std::mem::replace(
            &mut batch[0],
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::Cyclic),
        );
        res
    }

    /// Fault-tolerant [`Self::inverse`] for a single vector.
    ///
    /// # Errors
    ///
    /// As [`Self::try_forward`].
    pub fn try_inverse(
        &self,
        machine: &mut Machine,
        data: &mut Sharded<F>,
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        let mut batch = [std::mem::replace(
            data,
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::BlockCyclic),
        )];
        let res = self.try_inverse_batch(machine, &mut batch, policy);
        *data = std::mem::replace(
            &mut batch[0],
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::BlockCyclic),
        );
        res
    }

    fn check_batch(&self, machine: &Machine, batch: &[Sharded<F>], layout: ShardLayout) {
        assert!(!batch.is_empty(), "batch must not be empty");
        assert_eq!(
            machine.num_devices(),
            self.plan.num_gpus(),
            "machine does not match the engine's plan"
        );
        for item in batch {
            assert_eq!(item.len(), self.n(), "vector size does not match engine");
            assert_eq!(
                item.num_gpus(),
                self.plan.num_gpus(),
                "vector sharded over wrong GPU count"
            );
            assert_eq!(item.layout(), layout, "unexpected input layout");
        }
    }

    /// Phase 1 (forward) / its inverse: the local size-M transform with the
    /// boundary twiddle, plus all cost charges.
    fn local_phase(&self, machine: &mut Machine, batch: &mut [Sharded<F>], direction: Direction) {
        let g = self.plan.num_gpus();
        let b = batch.len() as u64;
        let local = self.local();
        let engine = self;
        // Under overlap the exchange-adjacent kernels are charged inside
        // the exchange pipeline, not here.
        let skip_exchange_adjacent = self.overlapped();

        // Regroup: one Vec of per-device mutable shard refs per phase call.
        let mut per_device: Vec<Vec<&mut Vec<F>>> = (0..g).map(|_| Vec::new()).collect();
        for item in batch.iter_mut() {
            for (dev, shard) in item.shards_mut().iter_mut().enumerate() {
                per_device[dev].push(shard);
            }
        }

        machine.parallel_phase(&mut per_device, |ctx, dev, shards| {
            // Functional work.
            for shard in shards.iter_mut() {
                match direction {
                    Direction::Forward => {
                        local.forward(shard);
                        if g > 1 {
                            let step = engine.boundary_step(dev, Direction::Forward);
                            let mut cur = F::ONE;
                            for v in shard.iter_mut() {
                                *v *= cur;
                                cur *= step;
                            }
                        }
                    }
                    Direction::Inverse => {
                        if g > 1 {
                            let step = engine.boundary_step(dev, Direction::Inverse);
                            let mut cur = F::ONE;
                            for v in shard.iter_mut() {
                                *v *= cur;
                                cur *= step;
                            }
                        }
                        local.inverse(shard);
                    }
                }
            }

            // Cost charges.
            engine.charge_local(ctx, b, direction, skip_exchange_adjacent);
        });
    }

    /// Charges the cost of one local phase for a batch of `b` vectors.
    ///
    /// With `skip_exchange_adjacent` the exchange-adjacent kernels (final
    /// twiddle-fused pass, standalone twiddle, pack) are left out: the
    /// overlapped exchange charges them inside its pipeline instead, via
    /// [`Self::exchange_compute_profiles`].
    fn charge_local(
        &self,
        ctx: &mut unintt_gpu_sim::DeviceCtx<'_>,
        b: u64,
        direction: Direction,
        skip_exchange_adjacent: bool,
    ) {
        let g = self.plan.num_gpus();
        let (plan, opts, fs) = (&self.plan, &self.opts, self.field_spec);
        let launches = if opts.batching { 1 } else { b };
        let per_launch = if opts.batching { b } else { 1 };
        for _ in 0..launches {
            let passes = plan.num_device_passes();
            for (i, &radix) in plan.device_passes.iter().enumerate() {
                let last = i + 1 == passes;
                if skip_exchange_adjacent && last {
                    continue;
                }
                let fuse_here = opts.fuse_twiddle && g > 1 && last;
                let p = profiles::local_pass_profile(plan, opts, fs, radix, per_launch, fuse_here);
                ctx.launch(&p);
            }
            if !opts.fuse_twiddle && g > 1 && !skip_exchange_adjacent {
                ctx.launch(&profiles::twiddle_kernel_profile(
                    plan, opts, fs, per_launch,
                ));
            }
            if !opts.fuse_exchange && g > 1 && !skip_exchange_adjacent {
                // Standalone pack (forward) / unpack (inverse) pass.
                ctx.launch(&profiles::pack_kernel_profile(plan, fs, per_launch));
            }
            if direction == Direction::Inverse && !opts.fuse_twiddle {
                // 1/N scale: fused into the last pass when twiddles are
                // fused, otherwise a standalone kernel.
                ctx.launch(&profiles::scale_kernel_profile(plan, fs, per_launch));
            }
        }
    }

    /// Charges the cost of one outer phase for a batch of `b` vectors.
    fn charge_outer(&self, ctx: &mut unintt_gpu_sim::DeviceCtx<'_>, b: u64) {
        let (plan, opts, fs) = (&self.plan, &self.opts, self.field_spec);
        let launches = if opts.batching { 1 } else { b };
        let per_launch = if opts.batching { b } else { 1 };
        for _ in 0..launches {
            if !opts.fuse_exchange {
                ctx.launch(&profiles::pack_kernel_profile(plan, fs, per_launch));
            }
            ctx.launch(&profiles::outer_stage_profile(plan, opts, fs, per_launch));
        }
    }

    /// Charges the cost of the multi-GPU exchange(s) for a batch of `b`
    /// vectors without moving data (blocking schedule).
    fn charge_exchange(&self, machine: &mut Machine, b: u64) {
        let shard_bytes = (self.plan.shard_len() * self.field_spec.elem_bytes) as u64;
        if self.opts.batching {
            machine.charge_all_to_all(b * shard_bytes);
        } else {
            for _ in 0..b {
                machine.charge_all_to_all(shard_bytes);
            }
        }
    }

    /// Charges the overlapped exchange(s) for a batch of `b` vectors
    /// without moving data: the cost-only twin of the pipelined exchange,
    /// including the interleaved producer/consumer kernels whose charges
    /// moved out of [`Self::charge_local`] / [`Self::charge_outer`].
    fn charge_exchange_overlapped(&self, machine: &mut Machine, b: u64, direction: Direction) {
        let shard_bytes = (self.plan.shard_len() * self.field_spec.elem_bytes) as u64;
        let per_launch = if self.opts.batching { b } else { 1 };
        let (producers, consumers) = self.exchange_compute_profiles(direction, per_launch);
        let compute = OverlapCompute {
            producers: &producers,
            consumers: &consumers,
            chunks: self.comm_chunks(),
        };
        if self.opts.batching {
            machine.charge_all_to_all_overlapped(b * shard_bytes, &compute);
        } else {
            for _ in 0..b {
                machine.charge_all_to_all_overlapped(shard_bytes, &compute);
            }
        }
    }

    /// Coset forward NTT: evaluates the coefficient vector on `shift·H`
    /// instead of `H` — the low-degree-extension call every ZKP prover
    /// makes. The coefficient scaling `cᵢ ← cᵢ·shiftⁱ` is fused into the
    /// first local pass (pure ALU when O1 is on, a standalone pass when
    /// off). Layout semantics are identical to [`Self::forward`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::forward`], or if
    /// `shift` is zero.
    pub fn coset_forward(&self, machine: &mut Machine, data: &mut Sharded<F>, shift: F) {
        assert!(!shift.is_zero(), "coset shift must be nonzero");
        self.scale_phase(machine, data, shift);
        self.forward(machine, data);
    }

    /// Inverse of [`Self::coset_forward`]: recovers coefficients from
    /// evaluations on `shift·H`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::inverse`], or if
    /// `shift` is zero.
    pub fn coset_inverse(&self, machine: &mut Machine, data: &mut Sharded<F>, shift: F) {
        let shift_inv = shift.inverse().expect("coset shift must be nonzero");
        self.inverse(machine, data);
        self.scale_phase(machine, data, shift_inv);
    }

    /// Coset forward NTT of a batch: one fused scale phase plus one
    /// batched transform (shared passes and collectives under O5).
    pub fn coset_forward_batch(&self, machine: &mut Machine, batch: &mut [Sharded<F>], shift: F) {
        assert!(!shift.is_zero(), "coset shift must be nonzero");
        self.scale_phase_batch(machine, batch, shift);
        self.forward_batch(machine, batch);
    }

    /// Fault-tolerant twin of [`Self::coset_forward_batch`]: the scale
    /// phase is collective-free, the transform runs under `policy`.
    ///
    /// # Errors
    ///
    /// Returns the [`FabricError`] that outlived the policy's retries.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::coset_forward_batch`].
    pub fn try_coset_forward_batch(
        &self,
        machine: &mut Machine,
        batch: &mut [Sharded<F>],
        shift: F,
        policy: &RecoveryPolicy,
    ) -> Result<(), FabricError> {
        assert!(!shift.is_zero(), "coset shift must be nonzero");
        self.scale_phase_batch(machine, batch, shift);
        self.try_forward_batch(machine, batch, policy)
    }

    /// Scales element `i` of the cyclic-distributed vector by `shift^i`:
    /// device `dev` holds elements `j·G + dev`, so its factors form the
    /// geometric sequence `shift^dev · (shift^G)^j` — generated on the fly.
    fn scale_phase(&self, machine: &mut Machine, data: &mut Sharded<F>, shift: F) {
        let mut batch = [std::mem::replace(
            data,
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::Cyclic),
        )];
        self.scale_phase_batch(machine, &mut batch, shift);
        *data = std::mem::replace(
            &mut batch[0],
            Sharded::from_shards(vec![vec![F::ZERO]], ShardLayout::Cyclic),
        );
    }

    fn scale_phase_batch(&self, machine: &mut Machine, batch: &mut [Sharded<F>], shift: F) {
        let g = self.plan.num_gpus();
        let b = batch.len() as u64;
        let engine = self;

        let mut per_device: Vec<Vec<&mut Vec<F>>> = (0..g).map(|_| Vec::new()).collect();
        for item in batch.iter_mut() {
            for (dev, shard) in item.shards_mut().iter_mut().enumerate() {
                per_device[dev].push(shard);
            }
        }
        machine.parallel_phase(&mut per_device, |ctx, dev, shards| {
            let step = shift.pow(g as u64);
            for shard in shards.iter_mut() {
                let mut cur = shift.pow(dev as u64);
                for v in shard.iter_mut() {
                    *v *= cur;
                    cur *= step;
                }
            }
            engine.charge_scale_batch(ctx, b);
        });
    }

    /// Charges coset-scale kernels for a batch of `b` vectors, honoring
    /// the batching flag (one fused launch vs `b` separate ones).
    fn charge_scale_batch(&self, ctx: &mut unintt_gpu_sim::DeviceCtx<'_>, b: u64) {
        let launches = if self.opts.batching { 1 } else { b };
        let per_launch = if self.opts.batching { b } else { 1 };
        for _ in 0..launches {
            self.charge_scale(ctx, per_launch);
        }
    }

    /// Charges the coset-scale cost for a batch of `b` vectors.
    fn charge_scale(&self, ctx: &mut unintt_gpu_sim::DeviceCtx<'_>, b: u64) {
        let (plan, fs) = (&self.plan, self.field_spec);
        if self.opts.fuse_twiddle {
            ctx.launch(&profiles::fused_scale_profile(plan, fs, b));
        } else {
            ctx.launch(&profiles::scale_kernel_profile(plan, fs, b));
        }
    }

    /// Cost-only twin of [`Self::coset_forward`] /
    /// [`Self::coset_forward_batch`].
    pub fn simulate_coset_forward(&self, machine: &mut Machine, batch: u64) {
        let mut dummy: Vec<()> = vec![(); self.plan.num_gpus()];
        machine.parallel_phase(&mut dummy, |ctx, _, _| {
            self.charge_scale_batch(ctx, batch);
        });
        self.simulate_forward(machine, batch);
    }

    /// Cost-only forward transform: charges exactly the kernels and
    /// collectives [`Self::forward_batch`] would, without touching data.
    ///
    /// Used by the benchmark harness for transform sizes whose functional
    /// execution would not fit in host memory or time budgets. The
    /// equivalence of the two paths is enforced by tests.
    pub fn simulate_forward(&self, machine: &mut Machine, batch: u64) {
        assert!(batch > 0, "batch must be positive");
        let g = self.plan.num_gpus();
        let overlapped = self.overlapped();
        let root = unintt_telemetry::reserve_span_id();
        let t_begin = machine.max_clock_ns();
        let mut dummy: Vec<()> = vec![(); g];
        machine.parallel_phase(&mut dummy, |ctx, _, _| {
            self.charge_local(ctx, batch, Direction::Forward, overlapped);
        });
        obs_phase(root, machine, "local-phase", "phase", t_begin, Vec::new);
        if g > 1 {
            let t0 = machine.max_clock_ns();
            let pre = root.map(|_| machine.stats());
            if overlapped {
                self.charge_exchange_overlapped(machine, batch, Direction::Forward);
            } else {
                self.charge_exchange(machine, batch);
            }
            if let Some(pre) = pre {
                let post = machine.stats();
                obs_phase(root, machine, "exchange", "interconnect", t0, || {
                    exchange_attrs(&pre, &post, overlapped)
                });
            }
            let t0 = machine.max_clock_ns();
            machine.parallel_phase(&mut dummy, |ctx, _, _| {
                if !overlapped {
                    self.charge_outer(ctx, batch);
                }
            });
            obs_phase(root, machine, "outer-phase", "phase", t0, Vec::new);
            if self.opts.natural_output {
                let t0 = machine.max_clock_ns();
                let pre = root.map(|_| machine.stats());
                self.charge_exchange(machine, batch);
                if let Some(pre) = pre {
                    let post = machine.stats();
                    obs_phase(root, machine, "natural-reorder", "interconnect", t0, || {
                        exchange_attrs(&pre, &post, false)
                    });
                }
            }
        }
        obs_root(root, machine, "unintt-forward", t_begin, || {
            vec![("batch", batch.into()), ("path", "simulate".into())]
        });
    }

    /// Cost-only inverse transform, mirroring [`Self::inverse_batch`].
    pub fn simulate_inverse(&self, machine: &mut Machine, batch: u64) {
        assert!(batch > 0, "batch must be positive");
        let g = self.plan.num_gpus();
        let overlapped = self.overlapped();
        let root = unintt_telemetry::reserve_span_id();
        let t_begin = machine.max_clock_ns();
        let mut dummy: Vec<()> = vec![(); g];
        if g > 1 {
            if self.opts.natural_output {
                let t0 = machine.max_clock_ns();
                let pre = root.map(|_| machine.stats());
                self.charge_exchange(machine, batch);
                if let Some(pre) = pre {
                    let post = machine.stats();
                    obs_phase(root, machine, "natural-reorder", "interconnect", t0, || {
                        exchange_attrs(&pre, &post, false)
                    });
                }
            }
            let t0 = machine.max_clock_ns();
            machine.parallel_phase(&mut dummy, |ctx, _, _| {
                if !overlapped {
                    self.charge_outer(ctx, batch);
                }
            });
            obs_phase(root, machine, "outer-phase", "phase", t0, Vec::new);
            let t0 = machine.max_clock_ns();
            let pre = root.map(|_| machine.stats());
            if overlapped {
                self.charge_exchange_overlapped(machine, batch, Direction::Inverse);
            } else {
                self.charge_exchange(machine, batch);
            }
            if let Some(pre) = pre {
                let post = machine.stats();
                obs_phase(root, machine, "exchange", "interconnect", t0, || {
                    exchange_attrs(&pre, &post, overlapped)
                });
            }
        }
        let t0 = machine.max_clock_ns();
        machine.parallel_phase(&mut dummy, |ctx, _, _| {
            self.charge_local(ctx, batch, Direction::Inverse, overlapped);
        });
        obs_phase(root, machine, "local-phase", "phase", t0, Vec::new);
        obs_root(root, machine, "unintt-inverse", t_begin, || {
            vec![("batch", batch.into()), ("path", "simulate".into())]
        });
    }

    /// Phase 3 (forward) / its inverse: size-G NTTs down the received
    /// columns, plus cost charges.
    fn outer_phase(&self, machine: &mut Machine, batch: &mut [Sharded<F>], direction: Direction) {
        let g = self.plan.num_gpus();
        debug_assert!(g > 1);
        let b = batch.len() as u64;
        let c_len = self.plan.shard_len() / g;
        let outer = self.outer();
        let engine = self;

        let mut per_device: Vec<Vec<&mut Vec<F>>> = (0..g).map(|_| Vec::new()).collect();
        for item in batch.iter_mut() {
            for (dev, shard) in item.shards_mut().iter_mut().enumerate() {
                per_device[dev].push(shard);
            }
        }

        // Under overlap the outer kernels are charged inside the exchange
        // pipeline; this phase then runs functionally for free.
        let charge = !self.overlapped();
        machine.parallel_phase(&mut per_device, |ctx, _dev, shards| {
            let mut col = vec![F::ZERO; g];
            for shard in shards.iter_mut() {
                for t in 0..c_len {
                    for (src, slot) in col.iter_mut().enumerate() {
                        *slot = shard[src * c_len + t];
                    }
                    match direction {
                        Direction::Forward => outer.forward(&mut col),
                        Direction::Inverse => outer.inverse(&mut col),
                    }
                    for (k1, &v) in col.iter().enumerate() {
                        shard[k1 * c_len + t] = v;
                    }
                }
            }

            if charge {
                engine.charge_outer(ctx, b);
            }
        });
    }

    /// One all-to-all under the recovery policy: transient drops are
    /// retried with exponential backoff (charged as simulated fault
    /// time); with checksums on, corrupted chunks are repaired inside the
    /// collective. Drops are atomic — no data moves on a failed attempt —
    /// so retrying the same buffers is always safe; under overlap a retry
    /// re-runs the whole pipeline (the blocking attempt only charged the
    /// detection timeout).
    fn exchange_step(
        &self,
        machine: &mut Machine,
        shards: &mut [Vec<F>],
        policy: &RecoveryPolicy,
        compute: Option<&OverlapCompute<'_>>,
    ) -> Result<(), FabricError> {
        let elem_bytes = self.field_spec.elem_bytes;
        let mut attempt = 0;
        loop {
            let res = match compute {
                Some(c) => machine
                    .all_to_all_overlapped(
                        shards,
                        elem_bytes,
                        c,
                        policy.verify_checksums,
                        |_, _, _| {},
                    )
                    .map(|_| ()),
                None if policy.verify_checksums => {
                    machine.all_to_all_checked(shards, elem_bytes).map(|_| ())
                }
                None => machine.all_to_all(shards, elem_bytes).map(|_| ()),
            };
            match res {
                Ok(()) => return Ok(()),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    machine.charge_fault_ns("retry-backoff", policy.backoff_ns(attempt));
                    machine.count_retry();
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The multi-GPU exchange: one all-to-all carrying the whole batch
    /// (batching on) or one per vector (batching off). With
    /// `overlap = Some(direction)` the exchange is charged as a software
    /// pipeline interleaved with the exchange-adjacent kernels of that
    /// direction; with `None` it blocks (used by the `natural_output`
    /// reordering, which has no compute to hide behind).
    fn exchange(
        &self,
        machine: &mut Machine,
        batch: &mut [Sharded<F>],
        policy: &RecoveryPolicy,
        overlap: Option<Direction>,
    ) -> Result<(), FabricError> {
        let g = self.plan.num_gpus();
        let m = self.plan.shard_len();
        let per_launch = if self.opts.batching {
            batch.len() as u64
        } else {
            1
        };
        let profile_lists =
            overlap.map(|direction| self.exchange_compute_profiles(direction, per_launch));
        let compute = profile_lists.as_ref().map(|(prod, cons)| OverlapCompute {
            producers: prod,
            consumers: cons,
            chunks: self.comm_chunks(),
        });
        let compute = compute.as_ref();

        if self.opts.batching && batch.len() > 1 {
            // Pack chunk-major so one all-to-all carries every vector:
            // combined chunk c = [item0 chunk c | item1 chunk c | …].
            let b = batch.len();
            let chunk = m / g;
            let mut combined: Vec<Vec<F>> = (0..g)
                .map(|dev| {
                    let mut buf = Vec::with_capacity(b * m);
                    for c in 0..g {
                        for item in batch.iter() {
                            buf.extend_from_slice(&item.shards()[dev][c * chunk..(c + 1) * chunk]);
                        }
                    }
                    buf
                })
                .collect();
            self.exchange_step(machine, &mut combined, policy, compute)?;
            for (dev, buf) in combined.into_iter().enumerate() {
                // Received layout: for src in 0..g, for item, chunk data.
                let mut offset = 0;
                for src in 0..g {
                    for item in batch.iter_mut() {
                        item.shards_mut()[dev][src * chunk..(src + 1) * chunk]
                            .copy_from_slice(&buf[offset..offset + chunk]);
                        offset += chunk;
                    }
                }
            }
        } else {
            for item in batch.iter_mut() {
                self.exchange_step(machine, item.shards_mut(), policy, compute)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Bn254Fr, Field, Goldilocks};
    use unintt_gpu_sim::presets;

    fn random_vec<F: Field>(n: usize, seed: u64) -> Vec<F> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| F::random(&mut rng)).collect()
    }

    fn reference_forward<F: TwoAdicField>(input: &[F]) -> Vec<F> {
        let ntt = Ntt::<F>::new(input.len().trailing_zeros());
        let mut out = input.to_vec();
        ntt.forward(&mut out);
        out
    }

    fn run_forward<F: TwoAdicField>(
        log_n: u32,
        gpus: usize,
        opts: UniNttOptions,
        field_spec: FieldSpec,
        input: &[F],
    ) -> (Vec<F>, Machine) {
        let cfg = presets::a100_nvlink(gpus);
        let engine = UniNttEngine::<F>::new(log_n, &cfg, opts, field_spec);
        let mut machine = Machine::new(cfg, field_spec);
        let mut data = Sharded::distribute(input, gpus, ShardLayout::Cyclic);
        engine.forward(&mut machine, &mut data);
        (data.collect(), machine)
    }

    #[test]
    fn forward_matches_reference_goldilocks() {
        for gpus in [1usize, 2, 4, 8] {
            for log_n in [6u32, 8, 10, 12] {
                let input = random_vec::<Goldilocks>(1 << log_n, log_n as u64);
                let expected = reference_forward(&input);
                let (actual, _) = run_forward(
                    log_n,
                    gpus,
                    UniNttOptions::full(),
                    FieldSpec::goldilocks(),
                    &input,
                );
                assert_eq!(actual, expected, "gpus={gpus} log_n={log_n}");
            }
        }
    }

    #[test]
    fn forward_matches_reference_bn254() {
        let log_n = 10u32;
        let input = random_vec::<Bn254Fr>(1 << log_n, 3);
        let expected = reference_forward(&input);
        for gpus in [2usize, 8] {
            let (actual, _) = run_forward(
                log_n,
                gpus,
                UniNttOptions::full(),
                FieldSpec::bn254_fr(),
                &input,
            );
            assert_eq!(actual, expected, "gpus={gpus}");
        }
    }

    #[test]
    fn natural_output_matches_reference_too() {
        let log_n = 10u32;
        let input = random_vec::<Goldilocks>(1 << log_n, 7);
        let expected = reference_forward(&input);
        let mut opts = UniNttOptions::full();
        opts.natural_output = true;
        let (actual, _) = run_forward(log_n, 4, opts, FieldSpec::goldilocks(), &input);
        assert_eq!(actual, expected);
    }

    #[test]
    fn options_never_change_results() {
        let log_n = 9u32;
        let input = random_vec::<Goldilocks>(1 << log_n, 11);
        let expected = reference_forward(&input);
        let mut all = vec![UniNttOptions::full(), UniNttOptions::none()];
        all.extend((1..=5).map(UniNttOptions::ablate));
        for opts in all {
            let (actual, _) = run_forward(log_n, 4, opts, FieldSpec::goldilocks(), &input);
            assert_eq!(actual, expected, "opts={opts:?}");
        }
    }

    #[test]
    fn roundtrip_exact() {
        for gpus in [1usize, 4] {
            let log_n = 11u32;
            let input = random_vec::<Goldilocks>(1 << log_n, 13);
            let cfg = presets::a100_nvlink(gpus);
            let fs = FieldSpec::goldilocks();
            let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
            let mut machine = Machine::new(cfg, fs);
            let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
            engine.forward(&mut machine, &mut data);
            engine.inverse(&mut machine, &mut data);
            assert_eq!(data.layout(), ShardLayout::Cyclic);
            assert_eq!(data.collect(), input, "gpus={gpus}");
        }
    }

    #[test]
    fn roundtrip_with_natural_output() {
        let log_n = 10u32;
        let input = random_vec::<Goldilocks>(1 << log_n, 17);
        let cfg = presets::a100_nvlink(8);
        let fs = FieldSpec::goldilocks();
        let mut opts = UniNttOptions::full();
        opts.natural_output = true;
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, opts, fs);
        let mut machine = Machine::new(cfg, fs);
        let mut data = Sharded::distribute(&input, 8, ShardLayout::Cyclic);
        engine.forward(&mut machine, &mut data);
        assert_eq!(data.layout(), ShardLayout::NaturalBlocks);
        engine.inverse(&mut machine, &mut data);
        assert_eq!(data.collect(), input);
    }

    #[test]
    fn batch_matches_individual() {
        let log_n = 8u32;
        let gpus = 4usize;
        let cfg = presets::a100_nvlink(gpus);
        let fs = FieldSpec::goldilocks();
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);

        let inputs: Vec<Vec<Goldilocks>> =
            (0..5).map(|i| random_vec(1 << log_n, 100 + i)).collect();

        let mut machine = Machine::new(cfg, fs);
        let mut batch: Vec<Sharded<Goldilocks>> = inputs
            .iter()
            .map(|x| Sharded::distribute(x, gpus, ShardLayout::Cyclic))
            .collect();
        engine.forward_batch(&mut machine, &mut batch);

        for (input, out) in inputs.iter().zip(&batch) {
            assert_eq!(out.collect(), reference_forward(input));
        }
    }

    #[test]
    fn batch_roundtrip() {
        let log_n = 8u32;
        let gpus = 4usize;
        let cfg = presets::a100_nvlink(gpus);
        let fs = FieldSpec::goldilocks();
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
        let inputs: Vec<Vec<Goldilocks>> =
            (0..3).map(|i| random_vec(1 << log_n, 200 + i)).collect();
        let mut machine = Machine::new(cfg, fs);
        let mut batch: Vec<Sharded<Goldilocks>> = inputs
            .iter()
            .map(|x| Sharded::distribute(x, gpus, ShardLayout::Cyclic))
            .collect();
        engine.forward_batch(&mut machine, &mut batch);
        engine.inverse_batch(&mut machine, &mut batch);
        for (input, out) in inputs.iter().zip(&batch) {
            assert_eq!(&out.collect(), input);
        }
    }

    #[test]
    fn ablations_cost_more_than_full() {
        let log_n = 20u32;
        let gpus = 8usize;
        let input = random_vec::<Goldilocks>(1 << log_n, 23);
        let (_, full_machine) = run_forward(
            log_n,
            gpus,
            UniNttOptions::full(),
            FieldSpec::goldilocks(),
            &input,
        );
        let full_time = full_machine.max_clock_ns();
        for which in [1u32, 2, 3, 4] {
            let (_, m) = run_forward(
                log_n,
                gpus,
                UniNttOptions::ablate(which),
                FieldSpec::goldilocks(),
                &input,
            );
            assert!(
                m.max_clock_ns() > full_time,
                "ablation {which} should slow the engine: full={full_time} ablated={}",
                m.max_clock_ns()
            );
        }
    }

    #[test]
    fn single_all_to_all_in_default_mode() {
        let log_n = 16u32;
        let input = random_vec::<Goldilocks>(1 << log_n, 29);
        let (_, machine) = run_forward(
            log_n,
            8,
            UniNttOptions::full(),
            FieldSpec::goldilocks(),
            &input,
        );
        // One collective per device.
        assert_eq!(machine.stats().collectives, 8);
    }

    #[test]
    fn simulate_charges_exactly_what_run_charges() {
        for gpus in [1usize, 8] {
            for natural in [false, true] {
                for batch_len in [1usize, 3] {
                    let log_n = 14u32;
                    let cfg = presets::a100_nvlink(gpus);
                    let fs = FieldSpec::goldilocks();
                    let mut opts = UniNttOptions::full();
                    opts.natural_output = natural;
                    let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, opts, fs);

                    let mut real = Machine::new(cfg.clone(), fs);
                    let mut batch: Vec<Sharded<Goldilocks>> = (0..batch_len)
                        .map(|i| {
                            Sharded::distribute(
                                &random_vec::<Goldilocks>(1 << log_n, i as u64),
                                gpus,
                                ShardLayout::Cyclic,
                            )
                        })
                        .collect();
                    engine.forward_batch(&mut real, &mut batch);
                    engine.inverse_batch(&mut real, &mut batch);

                    let mut sim = Machine::new(cfg, fs);
                    engine.simulate_forward(&mut sim, batch_len as u64);
                    engine.simulate_inverse(&mut sim, batch_len as u64);

                    let (rt, st) = (real.max_clock_ns(), sim.max_clock_ns());
                    assert!(
                        (rt - st).abs() < 1e-6 * rt.max(1.0),
                        "clock mismatch gpus={gpus} natural={natural} b={batch_len}: real={rt} sim={st}"
                    );
                    assert_eq!(
                        real.stats().kernels_launched,
                        sim.stats().kernels_launched,
                        "kernel count mismatch gpus={gpus} natural={natural} b={batch_len}"
                    );
                    assert_eq!(
                        real.stats().interconnect_bytes_sent,
                        sim.stats().interconnect_bytes_sent,
                        "bytes mismatch gpus={gpus} natural={natural} b={batch_len}"
                    );
                }
            }
        }
    }

    #[test]
    fn overlapped_and_blocking_outputs_bit_identical() {
        let log_n = 12u32;
        let gpus = 8usize;
        let input = random_vec::<Goldilocks>(1 << log_n, 31);
        let mut blocking = UniNttOptions::full();
        blocking.comm_mode = CommMode::Blocking;
        let (b_out, b_machine) =
            run_forward(log_n, gpus, blocking, FieldSpec::goldilocks(), &input);
        let (o_out, o_machine) = run_forward(
            log_n,
            gpus,
            UniNttOptions::full(),
            FieldSpec::goldilocks(),
            &input,
        );
        assert_eq!(o_out, b_out, "overlap must not change any output bit");
        // Overlap reschedules work, it never adds or removes any: same
        // kernels, same bytes on the wire.
        assert_eq!(
            b_machine.stats().kernels_launched,
            o_machine.stats().kernels_launched
        );
        assert_eq!(
            b_machine.stats().interconnect_bytes_sent,
            o_machine.stats().interconnect_bytes_sent
        );
    }

    #[test]
    fn overlapped_roundtrip_exact() {
        let log_n = 11u32;
        let input = random_vec::<Goldilocks>(1 << log_n, 33);
        let cfg = presets::a100_nvlink(8);
        let fs = FieldSpec::goldilocks();
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
        assert!(engine.overlapped(), "full() must default to overlap");
        let mut machine = Machine::new(cfg, fs);
        let mut data = Sharded::distribute(&input, 8, ShardLayout::Cyclic);
        engine.forward(&mut machine, &mut data);
        engine.inverse(&mut machine, &mut data);
        assert_eq!(data.collect(), input);
        assert!(machine.stats().comm_hidden_ns >= 0.0);
    }

    #[test]
    fn overlap_hides_exchange_time_at_scale() {
        let log_n = 24u32;
        let gpus = 8;
        let cfg = presets::a100_nvlink(gpus);
        let fs = FieldSpec::goldilocks();
        let mut blocking_opts = UniNttOptions::full();
        blocking_opts.comm_mode = CommMode::Blocking;
        let eb = UniNttEngine::<Goldilocks>::new(log_n, &cfg, blocking_opts, fs);
        let mut mb = Machine::new(cfg.clone(), fs);
        eb.simulate_forward(&mut mb, 1);
        let eo = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
        let mut mo = Machine::new(cfg, fs);
        eo.simulate_forward(&mut mo, 1);
        assert!(
            mo.max_clock_ns() < mb.max_clock_ns(),
            "overlap must beat blocking at 2^24: {} vs {}",
            mo.max_clock_ns(),
            mb.max_clock_ns()
        );
        assert!(mo.stats().comm_hidden_ns > 0.0);
        // The raw (overlap-blind) interconnect charge is unchanged — only
        // the exposed time shrinks.
        assert!(
            (mb.stats().raw_time_ns.interconnect - mo.stats().raw_time_ns.interconnect).abs()
                < 1e-6
        );
        assert_eq!(mb.stats().kernels_launched, mo.stats().kernels_launched);
    }

    #[test]
    fn single_chunk_overlap_matches_blocking_clock() {
        // chunks = 1 degenerates to the blocking schedule exactly, so the
        // two modes must charge the same makespan.
        let log_n = 20u32;
        let cfg = presets::a100_nvlink(8);
        let fs = FieldSpec::goldilocks();
        let mut blocking_opts = UniNttOptions::full();
        blocking_opts.comm_mode = CommMode::Blocking;
        let mut one_chunk = UniNttOptions::full();
        one_chunk.comm_chunks = 1;
        let eb = UniNttEngine::<Goldilocks>::new(log_n, &cfg, blocking_opts, fs);
        let eo = UniNttEngine::<Goldilocks>::new(log_n, &cfg, one_chunk, fs);
        let mut mb = Machine::new(cfg.clone(), fs);
        eb.simulate_forward(&mut mb, 1);
        eb.simulate_inverse(&mut mb, 1);
        let mut mo = Machine::new(cfg, fs);
        eo.simulate_forward(&mut mo, 1);
        eo.simulate_inverse(&mut mo, 1);
        let (b, o) = (mb.max_clock_ns(), mo.max_clock_ns());
        assert!((b - o).abs() < 1e-6 * b, "blocking {b} vs one-chunk {o}");
    }

    #[test]
    fn overlapped_recovery_matches_clean_run() {
        use unintt_gpu_sim::{FaultEvent, FaultKind, FaultPlan};
        let log_n = 10u32;
        let gpus = 4usize;
        let cfg = presets::a100_nvlink(gpus);
        let fs = FieldSpec::goldilocks();
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
        let input = random_vec::<Goldilocks>(1 << log_n, 37);

        let mut clean = Machine::new(cfg.clone(), fs);
        let mut expected = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
        engine.forward(&mut clean, &mut expected);

        // A dropped then a corrupted exchange, both under overlap: the
        // retry and the checksum repair must compose with the pipeline.
        let mut m = Machine::new(cfg, fs);
        m.set_fault_plan(FaultPlan::scripted(vec![
            FaultEvent {
                seq: 0,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                seq: 1,
                kind: FaultKind::Corrupt { src: 2, dst: 1 },
            },
        ]));
        let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
        engine
            .try_forward(&mut m, &mut data, &RecoveryPolicy::default())
            .unwrap();
        assert_eq!(data.collect(), expected.collect());
        assert!(m.stats().retries > 0, "the drop must have been retried");
        assert!(
            m.stats().interconnect_bytes_retransmitted > 0,
            "the corruption must have been repaired by retransmission"
        );
    }

    #[test]
    #[should_panic(expected = "unexpected input layout")]
    fn wrong_layout_rejected() {
        let cfg = presets::a100_nvlink(4);
        let fs = FieldSpec::goldilocks();
        let engine = UniNttEngine::<Goldilocks>::new(8, &cfg, UniNttOptions::full(), fs);
        let mut machine = Machine::new(cfg, fs);
        let input = random_vec::<Goldilocks>(256, 1);
        let mut data = Sharded::distribute(&input, 4, ShardLayout::NaturalBlocks);
        engine.forward(&mut machine, &mut data);
    }
}

#[cfg(test)]
mod coset_tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use unintt_ff::{Field, Goldilocks, PrimeField};
    use unintt_gpu_sim::presets;

    fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
    }

    #[test]
    fn coset_forward_matches_cpu_library() {
        let log_n = 10u32;
        let gpus = 4usize;
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(gpus);
        let engine =
            UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
        let mut machine = Machine::new(cfg, fs);

        let coeffs = random_vec(1 << log_n, 1);
        let shift = Goldilocks::GENERATOR;

        let expected = {
            let ntt = Ntt::<Goldilocks>::new(log_n);
            let mut v = coeffs.clone();
            unintt_ntt::coset_ntt(&ntt, &mut v, shift);
            v
        };

        let mut data = Sharded::distribute(&coeffs, gpus, ShardLayout::Cyclic);
        engine.coset_forward(&mut machine, &mut data, shift);
        assert_eq!(data.collect(), expected);

        engine.coset_inverse(&mut machine, &mut data, shift);
        assert_eq!(data.collect(), coeffs);
    }

    #[test]
    fn coset_with_unit_shift_is_plain_forward() {
        let log_n = 8u32;
        let gpus = 8usize;
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(gpus);
        let engine =
            UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);

        let input = random_vec(1 << log_n, 2);
        let mut m1 = Machine::new(cfg.clone(), fs);
        let mut d1 = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
        engine.coset_forward(&mut m1, &mut d1, Goldilocks::ONE);

        let mut m2 = Machine::new(cfg, fs);
        let mut d2 = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
        engine.forward(&mut m2, &mut d2);

        assert_eq!(d1.collect(), d2.collect());
        // The coset path costs strictly more (the fused scale).
        assert!(m1.max_clock_ns() > m2.max_clock_ns());
    }

    #[test]
    fn simulate_coset_matches_functional() {
        let log_n = 12u32;
        let gpus = 8usize;
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(gpus);
        let engine =
            UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);

        let mut real = Machine::new(cfg.clone(), fs);
        let input = random_vec(1 << log_n, 3);
        let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
        engine.coset_forward(&mut real, &mut data, Goldilocks::GENERATOR);

        let mut sim = Machine::new(cfg, fs);
        engine.simulate_coset_forward(&mut sim, 1);

        let (rt, st) = (real.max_clock_ns(), sim.max_clock_ns());
        assert!((rt - st).abs() < 1e-6 * rt, "real={rt} sim={st}");
        assert_eq!(real.stats().kernels_launched, sim.stats().kernels_launched);
    }

    #[test]
    fn coset_batch_matches_individual_and_simulate() {
        let log_n = 10u32;
        let gpus = 4usize;
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(gpus);
        let engine =
            UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
        let shift = Goldilocks::GENERATOR;
        let inputs: Vec<Vec<Goldilocks>> = (0..5).map(|i| random_vec(1 << log_n, i)).collect();

        // Individual transforms (separate machine) as the reference.
        let mut expected = Vec::new();
        for input in &inputs {
            let mut m = Machine::new(cfg.clone(), fs);
            let mut d = Sharded::distribute(input, gpus, ShardLayout::Cyclic);
            engine.coset_forward(&mut m, &mut d, shift);
            expected.push(d.collect());
        }

        // Batched.
        let mut real = Machine::new(cfg.clone(), fs);
        let mut batch: Vec<Sharded<Goldilocks>> = inputs
            .iter()
            .map(|x| Sharded::distribute(x, gpus, ShardLayout::Cyclic))
            .collect();
        engine.coset_forward_batch(&mut real, &mut batch, shift);
        for (out, exp) in batch.iter().zip(&expected) {
            assert_eq!(&out.collect(), exp);
        }

        // Cost-only twin.
        let mut sim = Machine::new(cfg, fs);
        engine.simulate_coset_forward(&mut sim, 5);
        let (rt, st) = (real.max_clock_ns(), sim.max_clock_ns());
        assert!((rt - st).abs() < 1e-6 * rt, "real={rt} sim={st}");
        assert_eq!(real.stats().kernels_launched, sim.stats().kernels_launched);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_shift_rejected() {
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(2);
        let engine = UniNttEngine::<Goldilocks>::new(6, &cfg, UniNttOptions::tuned_for(&fs), fs);
        let mut machine = Machine::new(cfg, fs);
        let input = random_vec(64, 4);
        let mut data = Sharded::distribute(&input, 2, ShardLayout::Cyclic);
        engine.coset_forward(&mut machine, &mut data, Goldilocks::ZERO);
    }
}
