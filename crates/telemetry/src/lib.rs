//! Unified telemetry for the UniNTT stack: simulated-clock spans, a
//! metrics registry, and Perfetto/flamegraph exporters.
//!
//! Every layer of the simulation — warp-level kernels, the multi-GPU
//! fabric, the cluster, the proving service — charges the same simulated
//! clock. This crate records that clock's structure: *spans* (closed
//! intervals on named tracks, nested per the paper's hierarchy), *instant
//! events* (faults, retransmissions, lease repairs, coalescer flushes),
//! and *metrics* (counters / gauges / histograms with Prometheus text
//! exposition). Because no wall-clock time is ever involved, telemetry is
//! deterministic: two identical runs produce byte-identical traces.
//!
//! # Zero cost when disabled
//!
//! Recording is **off by default**. Every recording entry point takes a
//! closure and begins with one relaxed atomic load; when disabled the
//! closure is never invoked, so the hot path performs no allocation and
//! no locking (see `tests/zero_alloc.rs`). This is what keeps the
//! benchmark numbers byte-identical whether or not the crate is linked.
//!
//! # Sessions
//!
//! Tests and experiments run concurrently in one process, so the global
//! sink is guarded by a session lock: [`start_session`] clears state,
//! enables recording and returns a [`SessionGuard`]; dropping the guard
//! disables recording again. Drain with [`take_session`] while holding
//! the guard.

#![warn(missing_docs)]

mod export;
mod hist;
mod json;
mod latency;
mod registry;
mod slo;
mod span;
mod tree;

pub use export::{chrome_trace_json, folded_stacks};
pub use hist::{StreamHist, MAX_REL_ERROR, SUB_BUCKETS};
pub use json::{parse as parse_json, validate_chrome_trace, JsonValue, TraceSummary};
pub use latency::LatencyStats;
pub use registry::{escape_label_value, Histogram, LabelPairs, Registry, DEFAULT_NS_BUCKETS};
pub use slo::{Alert, BurnWindows, Objective, SloEngine, SloEvent, SloSpec};
pub use span::{AttrValue, Instant, InstantKind, Session, Span, SpanLevel};
pub use tree::SpanTree;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread::ThreadId;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Session> = Mutex::new(Session::empty());
static REGISTRY: Mutex<Registry> = Mutex::new(Registry::empty());
static SESSION_LOCK: Mutex<()> = Mutex::new(());
/// The thread that owns the active session, if any. While set, records
/// from *other* threads are dropped: every instrumentation site records
/// from the thread driving the simulated machine, so this cleanly shuts
/// out unrelated work running concurrently in the same process (e.g.
/// other tests exercising instrumented engines).
static OWNER: Mutex<Option<ThreadId>> = Mutex::new(None);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether recording is currently enabled. One relaxed atomic load —
/// this is the entire disabled-path cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off. Prefer [`start_session`], which also
/// serializes concurrent telemetry users and resets state.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether *this thread* may record right now: telemetry is enabled and
/// either no session owner is set or the caller is the owning thread.
/// Starts with the same single relaxed load as [`enabled`], so disabled
/// call sites stay free.
#[inline]
pub fn recording() -> bool {
    if !enabled() {
        return false;
    }
    match *lock(&OWNER) {
        None => true,
        Some(tid) => tid == std::thread::current().id(),
    }
}

/// Allocates a session-unique span id.
pub fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Reserves a span id for a parent whose span will be recorded after its
/// children, or `None` when telemetry is disabled. Lets call sites hand
/// children an explicit `parent` id without recording the root first.
#[inline]
pub fn reserve_span_id() -> Option<u64> {
    if recording() {
        Some(fresh_id())
    } else {
        None
    }
}

/// Records a closed span. The closure only runs when telemetry is
/// enabled, so disabled call sites pay one atomic load and nothing else.
#[inline]
pub fn record_span(make: impl FnOnce() -> Span) {
    if !recording() {
        return;
    }
    let span = make();
    lock(&SINK).spans.push(span);
}

/// Records an instant event; same cost contract as [`record_span`].
#[inline]
pub fn record_instant(make: impl FnOnce() -> Instant) {
    if !recording() {
        return;
    }
    let instant = make();
    lock(&SINK).instants.push(instant);
}

/// Adds to a counter when enabled. Metric names are `&'static str`, so
/// the enabled path allocates only on first insertion.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !recording() {
        return;
    }
    lock(&REGISTRY).counter_add(name, delta);
}

/// Adds to a labeled counter when enabled (one numeric label per
/// series, e.g. `serve_shed_jobs{tenant="3"}`). Same cost contract as
/// [`counter_add`]: fully static keys, no allocation on the hot path.
#[inline]
pub fn counter_add_labeled(name: &'static str, label: &'static str, value: u64, delta: u64) {
    if !recording() {
        return;
    }
    lock(&REGISTRY).counter_add_labeled(name, label, value, delta);
}

/// Sets a gauge when enabled.
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if !recording() {
        return;
    }
    lock(&REGISTRY).gauge_set(name, value);
}

/// Raises a gauge to a new maximum when enabled.
#[inline]
pub fn gauge_max(name: &'static str, value: f64) {
    if !recording() {
        return;
    }
    lock(&REGISTRY).gauge_max(name, value);
}

/// Sets a labeled gauge series when enabled (e.g.
/// `slo_burn_rate{class="raw-ntt",slo="avail",tenant="3"}`). List the
/// labels alphabetically by key; values are escaped at exposition time.
/// The enabled path allocates for the label values — use on report and
/// control-loop surfaces, not per-kernel hot paths.
#[inline]
pub fn gauge_set_labeled(name: &'static str, labels: &[(&'static str, &str)], value: f64) {
    if !recording() {
        return;
    }
    lock(&REGISTRY).gauge_set_labeled(name, labels, value);
}

/// Attaches `# HELP` text to a metric family when enabled. Help text is
/// cleared with the rest of the registry at session start.
#[inline]
pub fn describe_metric(name: &'static str, help: &'static str) {
    if !recording() {
        return;
    }
    lock(&REGISTRY).describe(name, help);
}

/// Observes a histogram sample when enabled.
#[inline]
pub fn histogram_observe(name: &'static str, value: f64) {
    if !recording() {
        return;
    }
    lock(&REGISTRY).histogram_observe(name, value);
}

/// Drains and returns everything recorded so far, leaving the sink
/// empty (recording stays in whatever state it was).
pub fn take_session() -> Session {
    std::mem::take(&mut *lock(&SINK))
}

/// Discards everything recorded so far.
pub fn clear_session() {
    lock(&SINK).spans.clear();
    lock(&SINK).instants.clear();
}

/// A copy of the current metrics registry.
pub fn registry_snapshot() -> Registry {
    lock(&REGISTRY).clone()
}

/// Renders the current registry in Prometheus text exposition format.
pub fn render_prometheus() -> String {
    lock(&REGISTRY).render_prometheus()
}

/// Serializes access to the global sink across threads. Held by
/// [`SessionGuard`]; recording is disabled when the guard drops.
pub struct SessionGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        set_enabled(false);
        *lock(&OWNER) = None;
        clear_session();
        lock(&REGISTRY).clear();
    }
}

/// Begins an exclusive telemetry session: waits for any other session to
/// finish, clears the sink, the registry and the id counter (so traces
/// are deterministic run-to-run), pins recording to the calling thread
/// (see [`recording`]) and enables it. Recording stops when the returned
/// guard drops.
pub fn start_session() -> SessionGuard {
    let guard = lock(&SESSION_LOCK);
    clear_session();
    lock(&REGISTRY).clear();
    NEXT_ID.store(1, Ordering::Relaxed);
    *lock(&OWNER) = Some(std::thread::current().id());
    set_enabled(true);
    SessionGuard { _lock: guard }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = lock(&SESSION_LOCK);
        set_enabled(false);
        clear_session();
        record_span(|| unreachable!("closure must not run when disabled"));
        record_instant(|| unreachable!("closure must not run when disabled"));
        counter_add("nope", 1);
        assert!(take_session().is_empty());
        assert_eq!(reserve_span_id(), None);
    }

    #[test]
    fn session_guard_enables_records_and_disables() {
        let spans = {
            let _g = start_session();
            assert!(enabled());
            record_span(|| Span {
                id: fresh_id(),
                parent: None,
                name: "k".into(),
                level: SpanLevel::Device,
                category: "compute",
                track: "gpu0".into(),
                t_start_ns: 0.0,
                t_end_ns: 5.0,
                attrs: vec![],
            });
            counter_add("kernels", 1);
            assert_eq!(registry_snapshot().counters["kernels"], 1);
            take_session().spans
        };
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].id, 1, "ids restart per session");
        assert!(!enabled(), "guard drop disables recording");
    }

    #[test]
    fn sessions_reset_ids_for_determinism() {
        let first = {
            let _g = start_session();
            fresh_id()
        };
        let second = {
            let _g = start_session();
            fresh_id()
        };
        assert_eq!(first, second);
    }
}
