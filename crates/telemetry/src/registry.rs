//! Process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms, with a Prometheus-style text exposition writer.
//!
//! Keys are `&'static str` so the enabled hot path never allocates for a
//! metric name, and storage is `BTreeMap` so exposition order (and thus
//! the rendered text) is deterministic.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Sorted label pairs identifying one labeled-gauge series. Keys are
/// static; values may be dynamic (e.g. a tenant id rendered to text).
pub type LabelPairs = Vec<(&'static str, String)>;

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double-quote and newline must be backslash-escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Default histogram bucket upper bounds, in simulated nanoseconds:
/// decades from 1 µs to 1000 s. Everything above falls in `+Inf`.
pub const DEFAULT_NS_BUCKETS: [f64; 10] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12];

/// A fixed-bucket histogram (Prometheus `histogram` semantics:
/// cumulative buckets plus `sum` and `count`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; an implicit `+Inf` follows.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`len == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// A histogram over the default nanosecond decades.
    pub fn default_ns() -> Self {
        Histogram {
            bounds: DEFAULT_NS_BUCKETS.to_vec(),
            counts: vec![0; DEFAULT_NS_BUCKETS.len() + 1],
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The registry itself: deterministic maps throughout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Monotonic counters with one numeric label (e.g. per-tenant sheds),
    /// keyed `(name, label key, label value)`. Fully static keys keep the
    /// enabled hot path allocation-free.
    pub labeled_counters: BTreeMap<(&'static str, &'static str, u64), u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Last-write-wins gauges with arbitrary label sets (e.g.
    /// `slo_burn_rate{class="raw-ntt",slo="avail",tenant="3"}`), keyed
    /// `(name, sorted label pairs)` so exposition stays deterministic.
    pub labeled_gauges: BTreeMap<(&'static str, LabelPairs), f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Optional `# HELP` text per metric family.
    pub help: BTreeMap<&'static str, &'static str>,
}

impl Registry {
    /// An empty registry (const so the global can be a static).
    pub const fn empty() -> Self {
        Registry {
            counters: BTreeMap::new(),
            labeled_counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            labeled_gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            help: BTreeMap::new(),
        }
    }

    /// Attaches `# HELP` text to a metric family.
    pub fn describe(&mut self, name: &'static str, help: &'static str) {
        self.help.insert(name, help);
    }

    /// Adds to a counter, creating it at zero.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Adds to a labeled counter (one numeric label per series),
    /// creating the series at zero.
    pub fn counter_add_labeled(
        &mut self,
        name: &'static str,
        label: &'static str,
        value: u64,
        delta: u64,
    ) {
        *self
            .labeled_counters
            .entry((name, label, value))
            .or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Raises a gauge to `value` if it is higher than the current one.
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        let g = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    }

    /// Sets a labeled gauge series. `labels` must be pre-sorted by key
    /// (call sites list them alphabetically); values are stored raw and
    /// escaped at exposition time.
    pub fn gauge_set_labeled(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        value: f64,
    ) {
        let key: LabelPairs = labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
        self.labeled_gauges.insert((name, key), value);
    }

    /// Observes into a histogram, creating it with the default
    /// nanosecond buckets.
    pub fn histogram_observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(Histogram::default_ns)
            .observe(value);
    }

    /// Clears every metric (and the help text, so sessions start clean).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.labeled_counters.clear();
        self.gauges.clear();
        self.labeled_gauges.clear();
        self.histograms.clear();
        self.help.clear();
    }

    /// Writes the family header: optional `# HELP` first (conformance
    /// requires HELP before TYPE), then `# TYPE`.
    fn write_header(&self, out: &mut String, name: &str, kind: &str) {
        if let Some(help) = self.help.get(name) {
            let _ = writeln!(out, "# HELP {name} {help}");
        }
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }

    /// Renders the Prometheus text exposition format. Deterministic:
    /// metrics appear in name order, labeled series in label order;
    /// label values are escaped per the exposition-format rules.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            self.write_header(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut last_labeled: Option<&'static str> = None;
        for (&(name, label, value), v) in &self.labeled_counters {
            if last_labeled != Some(name) {
                self.write_header(&mut out, name, "counter");
                last_labeled = Some(name);
            }
            let _ = writeln!(out, "{name}{{{label}=\"{value}\"}} {v}");
        }
        // Gauges: one header per family across plain and labeled series.
        let gauge_names: BTreeSet<&'static str> = self
            .gauges
            .keys()
            .copied()
            .chain(self.labeled_gauges.keys().map(|k| k.0))
            .collect();
        for name in gauge_names {
            self.write_header(&mut out, name, "gauge");
            if let Some(v) = self.gauges.get(name) {
                let _ = writeln!(out, "{name} {v}");
            }
            for ((n, labels), v) in &self.labeled_gauges {
                if *n != name {
                    continue;
                }
                let rendered: Vec<String> = labels
                    .iter()
                    .map(|(k, val)| format!("{k}=\"{}\"", escape_label_value(val)))
                    .collect();
                let _ = writeln!(out, "{name}{{{}}} {v}", rendered.join(","));
            }
        }
        for (name, h) in &self.histograms {
            self.write_header(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (i, b) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
            }
            cumulative += h.counts[h.bounds.len()];
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_in_order() {
        let mut r = Registry::empty();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 2);
        r.counter_add("alpha", 3);
        let text = r.render_prometheus();
        assert!(text.contains("alpha 5\n"));
        let a = text.find("alpha").unwrap();
        let z = text.find("zeta").unwrap();
        assert!(a < z, "exposition must be name-ordered");
    }

    #[test]
    fn labeled_counters_render_per_series_with_one_type_line() {
        let mut r = Registry::empty();
        r.counter_add_labeled("serve_shed_jobs", "tenant", 3, 2);
        r.counter_add_labeled("serve_shed_jobs", "tenant", 0, 1);
        r.counter_add_labeled("serve_shed_jobs", "tenant", 3, 1);
        let text = r.render_prometheus();
        assert!(text.contains("serve_shed_jobs{tenant=\"0\"} 1\n"));
        assert!(text.contains("serve_shed_jobs{tenant=\"3\"} 3\n"));
        assert_eq!(
            text.matches("# TYPE serve_shed_jobs counter").count(),
            1,
            "one TYPE line per metric family"
        );
        let t0 = text.find("tenant=\"0\"").unwrap();
        let t3 = text.find("tenant=\"3\"").unwrap();
        assert!(t0 < t3, "series must render in label order");
    }

    #[test]
    fn gauge_max_only_raises() {
        let mut r = Registry::empty();
        r.gauge_max("depth", 3.0);
        r.gauge_max("depth", 1.0);
        assert_eq!(r.gauges["depth"], 3.0);
        r.gauge_set("depth", 0.5);
        assert_eq!(r.gauges["depth"], 0.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let mut r = Registry::empty();
        r.histogram_observe("lat_ns", 5e2); // <= 1e3
        r.histogram_observe("lat_ns", 5e3); // <= 1e4
        r.histogram_observe("lat_ns", 1e13); // +Inf
        let text = r.render_prometheus();
        assert!(text.contains("lat_ns_bucket{le=\"1000\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"10000\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_count 3"));
    }
}
