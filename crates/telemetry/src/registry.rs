//! Process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms, with a Prometheus-style text exposition writer.
//!
//! Keys are `&'static str` so the enabled hot path never allocates for a
//! metric name, and storage is `BTreeMap` so exposition order (and thus
//! the rendered text) is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram bucket upper bounds, in simulated nanoseconds:
/// decades from 1 µs to 1000 s. Everything above falls in `+Inf`.
pub const DEFAULT_NS_BUCKETS: [f64; 10] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12];

/// A fixed-bucket histogram (Prometheus `histogram` semantics:
/// cumulative buckets plus `sum` and `count`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; an implicit `+Inf` follows.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`len == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// A histogram over the default nanosecond decades.
    pub fn default_ns() -> Self {
        Histogram {
            bounds: DEFAULT_NS_BUCKETS.to_vec(),
            counts: vec![0; DEFAULT_NS_BUCKETS.len() + 1],
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The registry itself: deterministic maps throughout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Monotonic counters with one numeric label (e.g. per-tenant sheds),
    /// keyed `(name, label key, label value)`. Fully static keys keep the
    /// enabled hot path allocation-free.
    pub labeled_counters: BTreeMap<(&'static str, &'static str, u64), u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry (const so the global can be a static).
    pub const fn empty() -> Self {
        Registry {
            counters: BTreeMap::new(),
            labeled_counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Adds to a counter, creating it at zero.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Adds to a labeled counter (one numeric label per series),
    /// creating the series at zero.
    pub fn counter_add_labeled(
        &mut self,
        name: &'static str,
        label: &'static str,
        value: u64,
        delta: u64,
    ) {
        *self
            .labeled_counters
            .entry((name, label, value))
            .or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Raises a gauge to `value` if it is higher than the current one.
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        let g = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    }

    /// Observes into a histogram, creating it with the default
    /// nanosecond buckets.
    pub fn histogram_observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(Histogram::default_ns)
            .observe(value);
    }

    /// Clears every metric.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.labeled_counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Renders the Prometheus text exposition format. Deterministic:
    /// metrics appear in name order, labeled series in label order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut last_labeled: Option<&'static str> = None;
        for (&(name, label, value), v) in &self.labeled_counters {
            if last_labeled != Some(name) {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_labeled = Some(name);
            }
            let _ = writeln!(out, "{name}{{{label}=\"{value}\"}} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, b) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
            }
            cumulative += h.counts[h.bounds.len()];
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_in_order() {
        let mut r = Registry::empty();
        r.counter_add("zeta", 1);
        r.counter_add("alpha", 2);
        r.counter_add("alpha", 3);
        let text = r.render_prometheus();
        assert!(text.contains("alpha 5\n"));
        let a = text.find("alpha").unwrap();
        let z = text.find("zeta").unwrap();
        assert!(a < z, "exposition must be name-ordered");
    }

    #[test]
    fn labeled_counters_render_per_series_with_one_type_line() {
        let mut r = Registry::empty();
        r.counter_add_labeled("serve_shed_jobs", "tenant", 3, 2);
        r.counter_add_labeled("serve_shed_jobs", "tenant", 0, 1);
        r.counter_add_labeled("serve_shed_jobs", "tenant", 3, 1);
        let text = r.render_prometheus();
        assert!(text.contains("serve_shed_jobs{tenant=\"0\"} 1\n"));
        assert!(text.contains("serve_shed_jobs{tenant=\"3\"} 3\n"));
        assert_eq!(
            text.matches("# TYPE serve_shed_jobs counter").count(),
            1,
            "one TYPE line per metric family"
        );
        let t0 = text.find("tenant=\"0\"").unwrap();
        let t3 = text.find("tenant=\"3\"").unwrap();
        assert!(t0 < t3, "series must render in label order");
    }

    #[test]
    fn gauge_max_only_raises() {
        let mut r = Registry::empty();
        r.gauge_max("depth", 3.0);
        r.gauge_max("depth", 1.0);
        assert_eq!(r.gauges["depth"], 3.0);
        r.gauge_set("depth", 0.5);
        assert_eq!(r.gauges["depth"], 0.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_exposition() {
        let mut r = Registry::empty();
        r.histogram_observe("lat_ns", 5e2); // <= 1e3
        r.histogram_observe("lat_ns", 5e3); // <= 1e4
        r.histogram_observe("lat_ns", 1e13); // +Inf
        let text = r.render_prometheus();
        assert!(text.contains("lat_ns_bucket{le=\"1000\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"10000\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_count 3"));
    }
}
