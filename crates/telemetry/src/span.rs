//! Span and instant-event types recorded against the simulated clock.
//!
//! Every timestamp in this module is a simulated nanosecond produced by
//! the cost model — never wall-clock time. Two runs of the same workload
//! therefore produce byte-identical telemetry, which is what makes the
//! traces replayable and diffable.

/// Where in the paper's execution hierarchy a span lives.
///
/// The ordering is meaningful: `Warp < Block < Device < Fabric < Cluster
/// < Serve`, mirroring warp → thread block → GPU → multi-GPU fabric →
/// multi-node cluster → proving service. Parent derivation (see
/// [`crate::SpanTree::build`]) only ever attaches a span to one of a
/// *strictly higher* level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanLevel {
    /// A warp-scope operation (shuffle-based butterfly stages).
    Warp,
    /// A thread-block scope operation (shared-memory stages).
    Block,
    /// A single simulated GPU: kernels, per-device collective legs.
    Device,
    /// The multi-GPU fabric inside one node: NTT phases, exchanges.
    Fabric,
    /// The multi-node cluster: node phases, network all-to-alls.
    Cluster,
    /// The proving service: job lifecycle, lease dispatches.
    Serve,
}

impl SpanLevel {
    /// Stable lowercase name used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanLevel::Warp => "warp",
            SpanLevel::Block => "block",
            SpanLevel::Device => "device",
            SpanLevel::Fabric => "fabric",
            SpanLevel::Cluster => "cluster",
            SpanLevel::Serve => "serve",
        }
    }
}

/// A typed attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer (counts, bytes, ids).
    U64(u64),
    /// A simulated-time or ratio value.
    F64(f64),
    /// A short static label (modes, kinds).
    Str(&'static str),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

/// A closed interval of simulated time on one track.
///
/// Spans are recorded *after* they end (both endpoints are known), so
/// there is no open/running state to manage and the disabled path never
/// has to track anything.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Session-unique id (from [`crate::fresh_id`]).
    pub id: u64,
    /// Explicit parent span id, or `None` to let the tree builder derive
    /// one by interval containment.
    pub parent: Option<u64>,
    /// Human-readable name ("local-phase", "exchange", "job", ...).
    pub name: String,
    /// Hierarchy level; drives parent derivation and trace filtering.
    pub level: SpanLevel,
    /// Cost category ("compute", "interconnect", "phase", ...).
    pub category: &'static str,
    /// The timeline this span renders on (one Perfetto thread per track).
    pub track: String,
    /// Simulated start, ns.
    pub t_start_ns: f64,
    /// Simulated end, ns.
    pub t_end_ns: f64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Simulated duration in nanoseconds (never negative).
    pub fn duration_ns(&self) -> f64 {
        (self.t_end_ns - self.t_start_ns).max(0.0)
    }
}

/// What kind of zero-duration event an [`Instant`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantKind {
    /// A fault-plan decision fired (drop, corrupt, delay, ...).
    Fault,
    /// A checksum-failed chunk was re-sent over the fabric.
    Retransmission,
    /// A lease went through post-dispatch repair.
    LeaseRepair,
    /// The batch coalescer closed a window and released a batch.
    CoalescerFlush,
    /// A collective finished (op, bytes, hidden time in attrs).
    Collective,
    /// A cluster's work was re-sharded onto survivors after a failure.
    Failover,
    /// A straggling dispatch was speculatively re-dispatched elsewhere.
    Hedge,
    /// A job was shed by backpressure or cancelled past its deadline.
    Shed,
    /// A cluster health-state transition (quarantine, probe, recovery).
    Quarantine,
    /// An SLO burn-rate alert fired (fast + slow windows both over).
    Alert,
    /// A fabric link's end-of-run occupancy summary (bytes, busy time).
    LinkUtilization,
}

impl InstantKind {
    /// Stable lowercase name used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            InstantKind::Fault => "fault",
            InstantKind::Retransmission => "retransmission",
            InstantKind::LeaseRepair => "lease-repair",
            InstantKind::CoalescerFlush => "coalescer-flush",
            InstantKind::Collective => "collective",
            InstantKind::Failover => "failover",
            InstantKind::Hedge => "hedge",
            InstantKind::Shed => "shed",
            InstantKind::Quarantine => "quarantine",
            InstantKind::Alert => "alert",
            InstantKind::LinkUtilization => "link-utilization",
        }
    }
}

/// A zero-duration marker on a track (Perfetto "instant" event).
#[derive(Debug, Clone, PartialEq)]
pub struct Instant {
    /// Human-readable name ("fault-drop", "chunk-retransmit", ...).
    pub name: String,
    /// Event class; becomes the trace category.
    pub kind: InstantKind,
    /// The timeline the marker renders on.
    pub track: String,
    /// Simulated time of the event, ns.
    pub t_ns: f64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Everything recorded between enabling telemetry and draining the sink.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Session {
    /// Closed spans, in recording order.
    pub spans: Vec<Span>,
    /// Instant events, in recording order.
    pub instants: Vec<Instant>,
}

impl Session {
    /// An empty session (const so the global sink can be a static).
    pub const fn empty() -> Self {
        Session {
            spans: Vec::new(),
            instants: Vec::new(),
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.instants.is_empty()
    }

    /// Prefixes every track name, used to namespace merged sections
    /// ("e1/", "serve/") inside one exported trace.
    pub fn prefix_tracks(&mut self, prefix: &str) {
        for s in &mut self.spans {
            s.track = format!("{prefix}{}", s.track);
        }
        for i in &mut self.instants {
            i.track = format!("{prefix}{}", i.track);
        }
    }

    /// Appends all events from `other`, preserving order.
    pub fn merge(&mut self, other: Session) {
        self.spans.extend(other.spans);
        self.instants.extend(other.instants);
    }
}
