//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] states an objective — availability ("99.9 % of jobs
//! complete") or latency ("99 % of jobs finish within 2 ms") — scoped to
//! a tenant and/or job class. The [`SloEngine`] consumes the stream of
//! per-job [`SloEvent`]s on the *simulated* clock and evaluates the
//! **burn rate**: the rate at which the error budget (`1 − target`) is
//! being spent, where burn 1.0 exhausts the budget exactly at the
//! objective's horizon and burn 14.4 exhausts a 30-day budget in two
//! days (the classic paging threshold).
//!
//! Following the multi-window pattern, an alert fires only when the
//! burn rate exceeds its threshold over **both** a fast window (default
//! 5 min — "it is still happening") and a slow window (default 1 h —
//! "it is sustained, not a blip"). Windows slide on the simulated
//! clock in fixed-width buckets, so evaluation is O(buckets) memory and
//! fully deterministic: two identical runs produce byte-identical alert
//! streams.
//!
//! Firing emits a typed [`Alert`] (also recorded into the telemetry
//! session as an [`InstantKind::Alert`](crate::InstantKind::Alert)
//! instant on the `slo` track) and updates the
//! `slo_burn_rate{class,slo,tenant}` gauge — the input surface a
//! closed-loop autoscaler consumes.

use std::collections::VecDeque;

use crate::span::{Instant, InstantKind};

/// Sliding-window buckets per window (memory and time resolution).
const WINDOW_BUCKETS: i64 = 32;

/// One job-level service-level indicator sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloEvent {
    /// When the job reached its terminal state, simulated ns.
    pub t_ns: f64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Job class name (see `JobClass::name` in the serve crate).
    pub class: &'static str,
    /// True when the job completed successfully (availability SLI).
    pub ok: bool,
    /// Sojourn latency, ns (latency SLI; ignored for failed jobs).
    pub latency_ns: f64,
}

/// What an [`SloSpec`] promises.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// At least `target` of jobs complete successfully.
    Availability {
        /// Good fraction promised (e.g. `0.999`).
        target: f64,
    },
    /// At least `target` of completed jobs finish within `threshold_ns`.
    Latency {
        /// The latency bound, simulated ns.
        threshold_ns: f64,
        /// Good fraction promised (e.g. `0.99`).
        target: f64,
    },
}

impl Objective {
    /// The error budget: the tolerated bad fraction.
    pub fn budget(&self) -> f64 {
        let target = match *self {
            Objective::Availability { target } => target,
            Objective::Latency { target, .. } => target,
        };
        (1.0 - target).max(f64::EPSILON)
    }

    /// Whether `ev` is a good event under this objective.
    fn is_good(&self, ev: &SloEvent) -> bool {
        match *self {
            Objective::Availability { .. } => ev.ok,
            Objective::Latency { threshold_ns, .. } => ev.ok && ev.latency_ns <= threshold_ns,
        }
    }
}

/// Fast/slow window shapes and burn thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnWindows {
    /// Fast ("it is still happening") window, simulated ns.
    pub fast_ns: f64,
    /// Slow ("it is sustained") window, simulated ns.
    pub slow_ns: f64,
    /// Burn rate that fires the fast window.
    pub fast_threshold: f64,
    /// Burn rate that fires the slow window.
    pub slow_threshold: f64,
    /// Events required in the slow window before alerting arms (a burn
    /// rate over a handful of jobs is noise).
    pub min_events: u64,
}

impl Default for BurnWindows {
    /// The classic paging pair: burn ≥ 14.4 over both 5 min and 1 h.
    fn default() -> Self {
        Self {
            fast_ns: 5.0 * 60.0 * 1e9,
            slow_ns: 3600.0 * 1e9,
            fast_threshold: 14.4,
            slow_threshold: 14.4,
            min_events: 8,
        }
    }
}

impl BurnWindows {
    /// Windows scaled to a short simulated horizon: fast = `horizon/24`,
    /// slow = `horizon/6`, same default thresholds. Lets experiments
    /// whose whole run spans milliseconds keep the multi-window
    /// semantics the 5 min / 1 h defaults give a real deployment.
    pub fn scaled_to(horizon_ns: f64) -> Self {
        Self {
            fast_ns: horizon_ns / 24.0,
            slow_ns: horizon_ns / 6.0,
            ..Self::default()
        }
    }
}

/// One declarative objective, scoped to a tenant and/or class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Stable alert/gauge name (e.g. `"raw-ntt-availability"`).
    pub name: &'static str,
    /// Only events from this tenant count (all tenants when `None`).
    pub tenant: Option<u32>,
    /// Only events of this class count (all classes when `None`).
    pub class: Option<&'static str>,
    /// The promise.
    pub objective: Objective,
    /// Window shapes and thresholds.
    pub windows: BurnWindows,
}

impl SloSpec {
    fn matches(&self, ev: &SloEvent) -> bool {
        self.tenant.is_none_or(|t| t == ev.tenant) && self.class.is_none_or(|c| c == ev.class)
    }
}

/// A burn-rate alert: both windows exceeded their thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alert {
    /// The violated spec's name.
    pub spec: &'static str,
    /// Simulated instant the alert fired, ns.
    pub t_ns: f64,
    /// Fast-window burn rate at the firing instant.
    pub fast_burn: f64,
    /// Slow-window burn rate at the firing instant.
    pub slow_burn: f64,
}

/// A fixed-bucket sliding window of good/bad counts.
#[derive(Clone, Debug, Default)]
struct Window {
    /// Bucket width, ns.
    width_ns: f64,
    /// Live buckets, oldest first: (bucket index, good, bad).
    buckets: VecDeque<(i64, u64, u64)>,
    good: u64,
    bad: u64,
}

impl Window {
    fn new(span_ns: f64) -> Self {
        Self {
            width_ns: (span_ns / WINDOW_BUCKETS as f64).max(f64::MIN_POSITIVE),
            ..Self::default()
        }
    }

    fn record(&mut self, t_ns: f64, good: bool) {
        let idx = (t_ns / self.width_ns).floor() as i64;
        // Expire buckets that slid out of the window.
        while let Some(&(front, g, b)) = self.buckets.front() {
            if front > idx - WINDOW_BUCKETS {
                break;
            }
            self.good -= g;
            self.bad -= b;
            self.buckets.pop_front();
        }
        match self.buckets.back_mut() {
            Some(back) if back.0 == idx => {
                back.1 += u64::from(good);
                back.2 += u64::from(!good);
            }
            _ => self
                .buckets
                .push_back((idx, u64::from(good), u64::from(!good))),
        }
        self.good += u64::from(good);
        self.bad += u64::from(!good);
    }

    fn total(&self) -> u64 {
        self.good + self.bad
    }

    /// Bad fraction over the window (0 when empty).
    fn bad_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.bad as f64 / total as f64
        }
    }
}

/// Rolling evaluation state for one spec.
#[derive(Clone, Debug)]
struct SpecState {
    fast: Window,
    slow: Window,
    firing: bool,
    last_fast_burn: f64,
    last_slow_burn: f64,
}

/// The burn-rate engine: feed it job events in completion order.
#[derive(Clone, Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    states: Vec<SpecState>,
    alerts: Vec<Alert>,
    last_t_ns: f64,
}

impl SloEngine {
    /// Builds an engine over the given objectives.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let states = specs
            .iter()
            .map(|s| SpecState {
                fast: Window::new(s.windows.fast_ns),
                slow: Window::new(s.windows.slow_ns),
                firing: false,
                last_fast_burn: 0.0,
                last_slow_burn: 0.0,
            })
            .collect();
        Self {
            specs,
            states,
            alerts: Vec::new(),
            last_t_ns: 0.0,
        }
    }

    /// Consumes one event. Events must arrive in non-decreasing `t_ns`
    /// order (replay outcomes sorted by completion time); earlier
    /// timestamps are clamped to the clock's high-water mark.
    pub fn record(&mut self, ev: &SloEvent) {
        let t_ns = ev.t_ns.max(self.last_t_ns);
        self.last_t_ns = t_ns;
        for (spec, state) in self.specs.iter().zip(self.states.iter_mut()) {
            if !spec.matches(ev) {
                continue;
            }
            let good = spec.objective.is_good(ev);
            state.fast.record(t_ns, good);
            state.slow.record(t_ns, good);
            let budget = spec.objective.budget();
            let fast_burn = state.fast.bad_fraction() / budget;
            let slow_burn = state.slow.bad_fraction() / budget;
            state.last_fast_burn = fast_burn;
            state.last_slow_burn = slow_burn;
            crate::gauge_set_labeled(
                "slo_burn_rate",
                &[
                    ("class", spec.class.unwrap_or("all")),
                    ("slo", spec.name),
                    (
                        "tenant",
                        &spec.tenant.map_or("all".into(), |t| t.to_string()),
                    ),
                ],
                fast_burn,
            );
            let armed = state.slow.total() >= spec.windows.min_events;
            let over = fast_burn >= spec.windows.fast_threshold
                && slow_burn >= spec.windows.slow_threshold;
            if armed && over && !state.firing {
                state.firing = true;
                self.alerts.push(Alert {
                    spec: spec.name,
                    t_ns,
                    fast_burn,
                    slow_burn,
                });
                crate::record_instant(|| Instant {
                    name: spec.name.to_string(),
                    kind: InstantKind::Alert,
                    track: String::from("slo"),
                    t_ns,
                    attrs: vec![
                        ("fast_burn", fast_burn.into()),
                        ("slow_burn", slow_burn.into()),
                    ],
                });
                crate::counter_add("slo_alerts_fired", 1);
            } else if state.firing && fast_burn < spec.windows.fast_threshold / 2.0 {
                // Hysteresis: re-arm once the fast window has clearly
                // recovered, so a later, separate degradation re-fires.
                state.firing = false;
            }
        }
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Final `(spec name, fast burn, slow burn)` per spec.
    pub fn burn_rates(&self) -> Vec<(&'static str, f64, f64)> {
        self.specs
            .iter()
            .zip(self.states.iter())
            .map(|(s, st)| (s.name, st.last_fast_burn, st.last_slow_burn))
            .collect()
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avail_spec(windows: BurnWindows) -> SloSpec {
        SloSpec {
            name: "avail",
            tenant: None,
            class: None,
            objective: Objective::Availability { target: 0.99 },
            windows,
        }
    }

    fn windows(horizon_ns: f64) -> BurnWindows {
        BurnWindows {
            min_events: 4,
            ..BurnWindows::scaled_to(horizon_ns)
        }
    }

    fn ev(t_ns: f64, ok: bool) -> SloEvent {
        SloEvent {
            t_ns,
            tenant: 0,
            class: "raw-ntt",
            ok,
            latency_ns: 1000.0,
        }
    }

    #[test]
    fn clean_stream_never_alerts() {
        let mut eng = SloEngine::new(vec![avail_spec(windows(1e6))]);
        for i in 0..1000 {
            eng.record(&ev(i as f64 * 1e3, true));
        }
        assert!(eng.alerts().is_empty());
        let rates = eng.burn_rates();
        assert_eq!(rates[0].1, 0.0);
    }

    #[test]
    fn sustained_failures_alert_once_per_episode() {
        let mut eng = SloEngine::new(vec![avail_spec(windows(1e6))]);
        // Clean warm-up, a failure burst, recovery, a second burst.
        for i in 0..200 {
            eng.record(&ev(i as f64 * 1e3, true));
        }
        for i in 200..260 {
            eng.record(&ev(i as f64 * 1e3, false));
        }
        for i in 260..700 {
            eng.record(&ev(i as f64 * 1e3, true));
        }
        for i in 700..760 {
            eng.record(&ev(i as f64 * 1e3, false));
        }
        let alerts = eng.alerts();
        assert_eq!(alerts.len(), 2, "one alert per degradation: {alerts:?}");
        assert!(alerts[0].t_ns >= 200e3 && alerts[0].t_ns < 260e3);
        assert!(alerts[1].t_ns >= 700e3 && alerts[1].t_ns < 760e3);
        assert!(alerts[0].fast_burn >= 14.4);
        assert!(alerts[0].slow_burn >= 14.4);
    }

    #[test]
    fn latency_objective_counts_slow_jobs_as_bad() {
        let spec = SloSpec {
            name: "lat",
            tenant: None,
            class: None,
            // NB: burn rate is capped at `1/budget`, so the default 14.4
            // threshold is only reachable for targets above ~0.93.
            objective: Objective::Latency {
                threshold_ns: 500.0,
                target: 0.99,
            },
            windows: windows(1e6),
        };
        let mut eng = SloEngine::new(vec![spec]);
        for i in 0..100 {
            let mut e = ev(i as f64 * 1e3, true);
            e.latency_ns = if i >= 50 { 10_000.0 } else { 100.0 };
            eng.record(&e);
        }
        assert!(
            !eng.alerts().is_empty(),
            "a latency regression must burn the budget"
        );
    }

    #[test]
    fn tenant_and_class_scoping() {
        let spec = SloSpec {
            name: "t3",
            tenant: Some(3),
            class: Some("raw-ntt"),
            objective: Objective::Availability { target: 0.99 },
            windows: windows(1e6),
        };
        let mut eng = SloEngine::new(vec![spec]);
        for i in 0..100 {
            let mut e = ev(i as f64 * 1e3, false);
            e.tenant = 1; // wrong tenant: never counts
            eng.record(&e);
        }
        assert!(eng.alerts().is_empty(), "scoped spec must ignore others");
        for i in 100..200 {
            let mut e = ev(i as f64 * 1e3, false);
            e.tenant = 3;
            eng.record(&e);
        }
        assert!(!eng.alerts().is_empty());
    }

    #[test]
    fn min_events_gate_suppresses_noise() {
        let w = BurnWindows {
            min_events: 50,
            ..windows(1e6)
        };
        let mut eng = SloEngine::new(vec![avail_spec(w)]);
        for i in 0..10 {
            eng.record(&ev(i as f64 * 1e3, false));
        }
        assert!(eng.alerts().is_empty(), "under min_events nothing fires");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut eng = SloEngine::new(vec![avail_spec(windows(1e6))]);
            for i in 0..500 {
                eng.record(&ev(i as f64 * 997.0, i % 37 != 0));
            }
            eng.alerts().to_vec()
        };
        assert_eq!(run(), run());
    }
}
