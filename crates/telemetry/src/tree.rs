//! Hierarchical view over a flat list of recorded spans.
//!
//! Spans carry an optional explicit parent id; spans recorded without one
//! (e.g. per-kernel device spans exported from a machine timeline) are
//! attached by *interval containment*: the candidate parent must sit at a
//! strictly higher [`SpanLevel`] and fully contain the child's interval,
//! and among candidates the smallest (tightest) interval wins.

use crate::span::Span;

/// Relative slack allowed when comparing simulated timestamps. The cost
/// model sums many f64 charges, so exact endpoint equality is one ulp
/// away from false; everything structural stays well above this.
const REL_EPS: f64 = 1e-9;

fn eps_for(span: &Span) -> f64 {
    REL_EPS * (span.t_end_ns.abs().max(span.t_start_ns.abs()).max(1.0))
}

fn contains(parent: &Span, child: &Span) -> bool {
    let eps = eps_for(parent).max(eps_for(child));
    parent.t_start_ns <= child.t_start_ns + eps && child.t_end_ns <= parent.t_end_ns + eps
}

/// A parent/child index over a span slice.
pub struct SpanTree<'a> {
    spans: &'a [Span],
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl<'a> SpanTree<'a> {
    /// Builds the tree: explicit parent ids are honoured; parentless
    /// spans get the tightest containing span of a strictly higher level
    /// (ties broken by lowest id); everything else becomes a root.
    pub fn build(spans: &'a [Span]) -> Self {
        let n = spans.len();
        let mut parent: Vec<Option<usize>> = vec![None; n];

        for (i, s) in spans.iter().enumerate() {
            if let Some(pid) = s.parent {
                parent[i] = spans.iter().position(|p| p.id == pid);
            } else {
                let mut best: Option<usize> = None;
                for (j, p) in spans.iter().enumerate() {
                    if j == i || p.level <= s.level || !contains(p, s) {
                        continue;
                    }
                    best = match best {
                        None => Some(j),
                        Some(b) => {
                            let (bd, pd) = (spans[b].duration_ns(), p.duration_ns());
                            if pd < bd || (pd == bd && p.id < spans[b].id) {
                                Some(j)
                            } else {
                                Some(b)
                            }
                        }
                    };
                }
                parent[i] = best;
            }
        }

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (i, p) in parent.iter().enumerate() {
            match p {
                Some(j) => children[*j].push(i),
                None => roots.push(i),
            }
        }
        SpanTree {
            spans,
            parent,
            children,
            roots,
        }
    }

    /// Indices of spans with no parent.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Child indices of span `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Parent index of span `i`, if any.
    pub fn parent_of(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Root-to-`i` chain of span names (used for folded-stack export).
    pub fn path(&self, i: usize) -> Vec<&str> {
        let mut rev = vec![self.spans[i].name.as_str()];
        let mut cur = i;
        while let Some(p) = self.parent[cur] {
            rev.push(self.spans[p].name.as_str());
            cur = p;
        }
        rev.reverse();
        rev
    }

    /// Span duration minus the summed duration of its direct children —
    /// the "self time" a flamegraph attributes to the frame itself.
    pub fn self_time_ns(&self, i: usize) -> f64 {
        let kids: f64 = self.children[i]
            .iter()
            .map(|&c| self.spans[c].duration_ns())
            .sum();
        (self.spans[i].duration_ns() - kids).max(0.0)
    }

    /// Checks the structural invariants the exporters rely on:
    ///
    /// 1. every span has `t_start <= t_end`;
    /// 2. every child's interval is contained in its parent's;
    /// 3. spans sharing a parent (or both roots) *and* a track do not
    ///    overlap — they render on one Perfetto line.
    ///
    /// Returns the first violation as a human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        for s in self.spans {
            if s.t_end_ns < s.t_start_ns - eps_for(s) {
                return Err(format!(
                    "span {} '{}' ends before it starts ({} > {})",
                    s.id, s.name, s.t_start_ns, s.t_end_ns
                ));
            }
        }
        for (i, p) in self.parent.iter().enumerate() {
            if let Some(j) = p {
                let (child, parent) = (&self.spans[i], &self.spans[*j]);
                if !contains(parent, child) {
                    return Err(format!(
                        "span {} '{}' [{}, {}] escapes parent {} '{}' [{}, {}]",
                        child.id,
                        child.name,
                        child.t_start_ns,
                        child.t_end_ns,
                        parent.id,
                        parent.name,
                        parent.t_start_ns,
                        parent.t_end_ns
                    ));
                }
            }
        }
        // Sibling groups: same parent slot (None == virtual root).
        let n = self.spans.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.spans[a]
                .t_start_ns
                .partial_cmp(&self.spans[b].t_start_ns)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for (oi, &a) in order.iter().enumerate() {
            for &b in order.iter().skip(oi + 1) {
                if self.parent[a] != self.parent[b] || self.spans[a].track != self.spans[b].track {
                    continue;
                }
                let (first, second) = (&self.spans[a], &self.spans[b]);
                let eps = eps_for(first).max(eps_for(second));
                if second.t_start_ns < first.t_end_ns - eps {
                    return Err(format!(
                        "siblings overlap on track '{}': {} '{}' [{}, {}] vs {} '{}' [{}, {}]",
                        first.track,
                        first.id,
                        first.name,
                        first.t_start_ns,
                        first.t_end_ns,
                        second.id,
                        second.name,
                        second.t_start_ns,
                        second.t_end_ns
                    ));
                }
            }
        }
        Ok(())
    }

    /// Sum of root-span durations — the tree's total covered time.
    pub fn total_root_ns(&self) -> f64 {
        self.roots
            .iter()
            .map(|&r| self.spans[r].duration_ns())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanLevel;

    fn span(id: u64, parent: Option<u64>, level: SpanLevel, track: &str, t0: f64, t1: f64) -> Span {
        Span {
            id,
            parent,
            name: format!("s{id}"),
            level,
            category: "test",
            track: track.to_string(),
            t_start_ns: t0,
            t_end_ns: t1,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn derives_tightest_containing_parent() {
        let spans = vec![
            span(1, None, SpanLevel::Fabric, "m", 0.0, 100.0),
            span(2, Some(1), SpanLevel::Fabric, "m", 0.0, 60.0),
            span(3, None, SpanLevel::Device, "m/gpu0", 10.0, 20.0),
        ];
        let tree = SpanTree::build(&spans);
        // The device span nests under the tighter phase span, not the root.
        assert_eq!(tree.parent_of(2), Some(1));
        assert_eq!(tree.roots(), &[0]);
        tree.validate().expect("valid tree");
    }

    #[test]
    fn rejects_child_escaping_parent() {
        let spans = vec![
            span(1, None, SpanLevel::Fabric, "m", 0.0, 50.0),
            span(2, Some(1), SpanLevel::Device, "m/gpu0", 40.0, 80.0),
        ];
        let tree = SpanTree::build(&spans);
        assert!(tree.validate().is_err());
    }

    #[test]
    fn rejects_overlapping_siblings_on_one_track() {
        let spans = vec![
            span(1, None, SpanLevel::Fabric, "m", 0.0, 100.0),
            span(2, Some(1), SpanLevel::Fabric, "m", 0.0, 60.0),
            span(3, Some(1), SpanLevel::Fabric, "m", 50.0, 90.0),
        ];
        let tree = SpanTree::build(&spans);
        assert!(tree.validate().is_err());
    }

    #[test]
    fn siblings_on_distinct_tracks_may_overlap() {
        let spans = vec![
            span(1, None, SpanLevel::Device, "m/gpu0", 0.0, 60.0),
            span(2, None, SpanLevel::Device, "m/gpu1", 0.0, 60.0),
        ];
        let tree = SpanTree::build(&spans);
        tree.validate().expect("parallel devices are fine");
        assert_eq!(tree.total_root_ns(), 120.0);
    }

    #[test]
    fn self_time_subtracts_children() {
        let spans = vec![
            span(1, None, SpanLevel::Fabric, "m", 0.0, 100.0),
            span(2, Some(1), SpanLevel::Fabric, "m", 0.0, 30.0),
            span(3, Some(1), SpanLevel::Fabric, "m", 40.0, 80.0),
        ];
        let tree = SpanTree::build(&spans);
        assert_eq!(tree.self_time_ns(0), 30.0);
        assert_eq!(tree.path(2), vec!["s1", "s3"]);
    }
}
