//! Nearest-rank latency summaries — the **exact reference**.
//!
//! This is the percentile math the proving service reports through
//! `ServiceMetrics`; it lives here so every layer shares one
//! implementation (the serve crate re-exports it unchanged).
//!
//! [`LatencyStats::from_samples`] sorts the *full sample set*, so it is
//! O(n log n) time and O(n) memory per call. That makes it the exact
//! yardstick for tests (see the reconciliation tests in
//! [`crate::StreamHist`]) and the backing math for byte-frozen report
//! tables, but the wrong tool for anything that would retain every
//! sample across a whole run: long-lived producers (fleet hedging,
//! merged multi-cluster summaries) use [`crate::StreamHist`], which
//! holds O(occupied buckets) memory with a bounded relative error,
//! instead of accumulating unbounded sample vectors.

/// Latency distribution summary (nearest-rank percentiles).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Samples summarized.
    pub count: usize,
    /// Mean, ns.
    pub mean_ns: f64,
    /// Median, ns.
    pub p50_ns: f64,
    /// 95th percentile, ns.
    pub p95_ns: f64,
    /// 99th percentile, ns.
    pub p99_ns: f64,
    /// Maximum, ns.
    pub max_ns: f64,
}

impl LatencyStats {
    /// Summarizes a set of latency samples (order irrelevant).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pick = |p: f64| {
            // Nearest-rank: ceil(p·n) as a 1-based rank.
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ns: pick(0.50),
            p95_ns: pick(0.95),
            p99_ns: pick(0.99),
            max_ns: *sorted.last().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50.0);
        assert_eq!(s.p95_ns, 95.0);
        assert_eq!(s.p99_ns, 99.0);
        assert_eq!(s.max_ns, 100.0);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencyStats::from_samples(&[42.0]);
        assert_eq!(s.p50_ns, 42.0);
        assert_eq!(s.p99_ns, 42.0);
        assert_eq!(s.max_ns, 42.0);
    }

    #[test]
    fn empty_samples_are_zeroed() {
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }
}
