//! Trace exporters: Chrome/Perfetto `trace.json` and folded stacks.
//!
//! The Chrome Trace Event Format is the JSON-array flavour accepted by
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev):
//! complete events (`"ph":"X"`) for spans, instant events (`"ph":"i"`)
//! for markers, and metadata events naming one thread per track.
//! Timestamps are microseconds in the file (the viewer convention); the
//! simulated-nanosecond values are carried losslessly in `args`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{AttrValue, Session};
use crate::tree::SpanTree;

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(x) => x.to_string(),
        AttrValue::F64(x) => format!("{x:.3}"),
        AttrValue::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

/// Assigns a stable Perfetto thread id per track, in first-appearance
/// order over spans then instants — deterministic for identical runs.
fn track_ids(session: &Session) -> BTreeMap<String, u64> {
    let mut ids = BTreeMap::new();
    let mut next = 0u64;
    let tracks = session
        .spans
        .iter()
        .map(|s| s.track.as_str())
        .chain(session.instants.iter().map(|i| i.track.as_str()));
    for t in tracks {
        if !ids.contains_key(t) {
            ids.insert(t.to_string(), next);
            next += 1;
        }
    }
    ids
}

/// Renders a [`Session`] as a Chrome Trace Event Format JSON document.
pub fn chrome_trace_json(session: &Session) -> String {
    let ids = track_ids(session);
    let mut events: Vec<String> = Vec::new();

    events.push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"unintt simulated clock\"}}"
            .to_string(),
    );
    // Name one thread per track, in tid order so the file is stable.
    let mut by_tid: Vec<(&String, &u64)> = ids.iter().collect();
    by_tid.sort_by_key(|(_, &tid)| tid);
    for (track, tid) in &by_tid {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(track)
        ));
    }

    for s in &session.spans {
        let tid = ids[&s.track];
        let mut args = format!(
            "\"level\":\"{}\",\"span_id\":{},\"t_start_ns\":{:.3},\"t_end_ns\":{:.3}",
            s.level.as_str(),
            s.id,
            s.t_start_ns,
            s.t_end_ns
        );
        if let Some(p) = s.parent {
            let _ = write!(args, ",\"parent_id\":{p}");
        }
        for (k, v) in &s.attrs {
            let _ = write!(args, ",\"{}\":{}", escape_json(k), attr_json(v));
        }
        events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":0,\"tid\":{tid},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
            escape_json(&s.name),
            escape_json(s.category),
            s.t_start_ns * 1e-3,
            s.duration_ns() * 1e-3,
        ));
    }

    for i in &session.instants {
        let tid = ids[&i.track];
        let mut args = format!("\"t_ns\":{:.3}", i.t_ns);
        for (k, v) in &i.attrs {
            let _ = write!(args, ",\"{}\":{}", escape_json(k), attr_json(v));
        }
        events.push(format!(
            "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":0,\"tid\":{tid},\
             \"ts\":{:.3},\"s\":\"t\",\"args\":{{{args}}}}}",
            escape_json(&i.name),
            i.kind.as_str(),
            i.t_ns * 1e-3,
        ));
    }

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// Renders a [`Session`] as folded stacks (`inferno` / `flamegraph.pl`
/// input): one `track;frame;frame value` line per span, where the value
/// is the span's *self* time in integer nanoseconds.
pub fn folded_stacks(session: &Session) -> String {
    let tree = SpanTree::build(&session.spans);
    let mut lines: Vec<String> = Vec::new();
    for i in 0..session.spans.len() {
        let self_ns = tree.self_time_ns(i);
        if self_ns <= 0.0 {
            continue;
        }
        let mut stack = vec![session.spans[i].track.as_str()];
        stack.extend(tree.path(i));
        lines.push(format!("{} {}", stack.join(";"), self_ns.round() as u64));
    }
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Instant, InstantKind, Span, SpanLevel};

    fn demo_session() -> Session {
        Session {
            spans: vec![
                Span {
                    id: 1,
                    parent: None,
                    name: "unintt-forward".into(),
                    level: SpanLevel::Fabric,
                    category: "transform",
                    track: "machine".into(),
                    t_start_ns: 0.0,
                    t_end_ns: 100.0,
                    attrs: vec![("batch", 1u64.into())],
                },
                Span {
                    id: 2,
                    parent: Some(1),
                    name: "local-phase".into(),
                    level: SpanLevel::Fabric,
                    category: "phase",
                    track: "machine".into(),
                    t_start_ns: 0.0,
                    t_end_ns: 60.0,
                    attrs: vec![],
                },
            ],
            instants: vec![Instant {
                name: "fault-drop".into(),
                kind: InstantKind::Fault,
                track: "machine".into(),
                t_ns: 30.0,
                attrs: vec![("seq", 0u64.into())],
            }],
        }
    }

    #[test]
    fn chrome_trace_has_metadata_spans_and_instants() {
        let json = chrome_trace_json(&demo_session());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"unintt-forward\""));
        assert!(json.contains("\"s\":\"t\""));
        // µs conversion: the 100 ns root renders as dur 0.100 µs.
        assert!(json.contains("\"dur\":0.100"));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        assert_eq!(
            chrome_trace_json(&demo_session()),
            chrome_trace_json(&demo_session())
        );
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let folded = folded_stacks(&demo_session());
        // Root self time = 100 - 60; the child keeps its full 60.
        assert!(folded.contains("machine;unintt-forward 40"));
        assert!(folded.contains("machine;unintt-forward;local-phase 60"));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
