//! Streaming log-bucketed latency histograms (HDR-style).
//!
//! [`StreamHist`] summarizes an unbounded stream of positive samples in
//! O(occupied buckets) memory with a bounded *relative* quantile error,
//! so serving-layer report paths can track per-class latency
//! distributions over millions of jobs without retaining every sample
//! (the exact [`crate::LatencyStats`] keeps all samples and exists as
//! the reconciliation reference for tests and legacy byte-frozen
//! tables).
//!
//! # Bucketing
//!
//! Buckets are derived from the IEEE-754 bit pattern of the sample:
//! the exponent selects an octave and the top [`SUB_BITS`] mantissa
//! bits split each octave into [`SUB_BUCKETS`] linear sub-buckets.
//! This is pure integer math — no `ln`/`log2` calls — so bucket
//! assignment is exact and deterministic on every platform, which keeps
//! merged fleet summaries byte-identical run to run. A bucket spanning
//! `[lo, lo + lo/SUB_BUCKETS)` is reported at its midpoint, bounding
//! the relative quantile error by `1 / (2 · SUB_BUCKETS)` ≈ 0.78 %.
//!
//! # Merging
//!
//! Bucket indices are absolute (a function of the value only), so
//! [`StreamHist::merge`] is a per-bucket count addition: per-cluster
//! histograms fold into one fleet-wide distribution losslessly with
//! respect to the bucketing.

use std::collections::BTreeMap;

use crate::latency::LatencyStats;

/// Mantissa bits used to subdivide each octave.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Worst-case relative error of a reported quantile: half a bucket
/// width relative to the bucket's lower bound.
pub const MAX_REL_ERROR: f64 = 1.0 / (2.0 * SUB_BUCKETS as f64);

/// A streaming log-bucketed histogram with bounded relative error.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamHist {
    /// Occupied buckets only: absolute bucket index → count.
    buckets: BTreeMap<u64, u64>,
    /// Samples `<= 0` (latencies should never be negative; a zero
    /// sample has no octave, so it gets its own bucket at value 0).
    zero: u64,
    /// Total samples observed (including zeros).
    count: u64,
    /// Exact running sum (for the mean).
    sum: f64,
    /// Exact minimum observed.
    min: f64,
    /// Exact maximum observed.
    max: f64,
}

/// Absolute bucket index of a positive finite sample: biased exponent
/// concatenated with the top mantissa bits. Monotone in the value.
fn bucket_index(v: f64) -> u64 {
    let bits = v.to_bits();
    bits >> (52 - SUB_BITS)
}

/// Lower bound of a bucket: the smallest f64 mapping to this index.
fn bucket_lower(index: u64) -> f64 {
    f64::from_bits(index << (52 - SUB_BITS))
}

/// Representative (midpoint) value of a bucket.
fn bucket_mid(index: u64) -> f64 {
    let lo = bucket_lower(index);
    // The octave spans [2^e, 2^(e+1)); each sub-bucket is 2^e/SUB_BUCKETS
    // wide, i.e. the octave base divided by SUB_BUCKETS.
    let octave_base = f64::from_bits((index >> SUB_BITS) << 52);
    lo + octave_base / (2.0 * SUB_BUCKETS as f64)
}

impl StreamHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite samples are ignored; samples
    /// `<= 0` land in a dedicated zero bucket.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v <= 0.0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Folds another histogram into this one (per-bucket addition).
    pub fn merge(&mut self, other: &StreamHist) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of occupied buckets (the memory footprint).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.zero > 0)
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (nearest-rank over buckets): the midpoint of
    /// the bucket holding the `ceil(q·count)`-th smallest sample,
    /// clamped to the exact observed `[min, max]`. Relative error vs
    /// the exact nearest-rank sample is bounded by [`MAX_REL_ERROR`].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        if rank <= seen {
            return 0.0;
        }
        for (&idx, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Summarizes into the shared [`LatencyStats`] shape (streaming
    /// percentiles; `count`, `mean_ns` and `max_ns` are exact).
    pub fn summary(&self) -> LatencyStats {
        LatencyStats {
            count: self.count as usize,
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            max_ns: self.max(),
        }
    }

    /// The 99.9th percentile, the tail the SLO engine watches.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_nearest_rank(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        samples[rank - 1]
    }

    /// A deterministic pseudo-random latency stream (no external RNG).
    fn lcg_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Spread over ~4 decades: 1e3..1e7 ns.
                1e3 + (x >> 11) as f64 / (1u64 << 53) as f64 * 1e7
            })
            .collect()
    }

    #[test]
    fn quantiles_match_exact_within_bound() {
        let samples = lcg_stream(0x5151, 10_000);
        let mut h = StreamHist::new();
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        for q in [0.50, 0.95, 0.99, 0.999] {
            let exact = exact_nearest_rank(&mut sorted, q);
            let approx = h.quantile(q);
            let rel = ((approx - exact) / exact).abs();
            assert!(
                rel <= 0.02,
                "q={q}: approx {approx} vs exact {exact} (rel {rel})"
            );
        }
    }

    #[test]
    fn summary_reconciles_with_exact_latency_stats() {
        let samples = lcg_stream(0xe21, 4_096);
        let mut h = StreamHist::new();
        for &s in &samples {
            h.observe(s);
        }
        let exact = LatencyStats::from_samples(&samples);
        let approx = h.summary();
        assert_eq!(approx.count, exact.count);
        assert!((approx.mean_ns - exact.mean_ns).abs() / exact.mean_ns < 1e-12);
        assert_eq!(approx.max_ns, exact.max_ns, "max is tracked exactly");
        for (a, e) in [
            (approx.p50_ns, exact.p50_ns),
            (approx.p95_ns, exact.p95_ns),
            (approx.p99_ns, exact.p99_ns),
        ] {
            assert!(((a - e) / e).abs() <= 0.02, "{a} vs {e}");
        }
    }

    #[test]
    fn merge_equals_observing_everything_in_one_histogram() {
        let a_samples = lcg_stream(1, 500);
        let b_samples = lcg_stream(2, 700);
        let mut a = StreamHist::new();
        let mut b = StreamHist::new();
        let mut whole = StreamHist::new();
        for &s in &a_samples {
            a.observe(s);
            whole.observe(s);
        }
        for &s in &b_samples {
            b.observe(s);
            whole.observe(s);
        }
        a.merge(&b);
        assert_eq!(
            a.buckets, whole.buckets,
            "merge must be exact at the bucket level"
        );
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // The running sum depends on addition order; only quantiles and
        // the mean need to agree, to float tolerance.
        assert!((a.sum() - whole.sum()).abs() / whole.sum() < 1e-12);
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn bucket_math_is_monotone_and_bounded() {
        let mut last = 0u64;
        let mut v = 1.0e3;
        while v < 1.0e12 {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone in the value");
            last = idx;
            let lo = bucket_lower(idx);
            let mid = bucket_mid(idx);
            assert!(lo <= v, "lower bound must not exceed the member value");
            assert!(
                ((mid - v) / v).abs() <= 1.0 / SUB_BUCKETS as f64,
                "midpoint must stay within one bucket width of the value"
            );
            v *= 1.01;
        }
    }

    #[test]
    fn memory_stays_bounded_over_wide_streams() {
        let mut h = StreamHist::new();
        for &s in lcg_stream(9, 100_000).iter() {
            h.observe(s);
        }
        // 4 decades ≈ 14 octaves × 64 sub-buckets is the ceiling.
        assert!(h.occupied_buckets() < 1024, "{}", h.occupied_buckets());
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn zeros_and_empty_and_singletons() {
        let mut h = StreamHist::new();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.summary(), LatencyStats::default());
        h.observe(0.0);
        h.observe(42.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), 0.0, "the zero bucket sorts first");
        assert_eq!(h.max(), 42.0);
        assert!(h.quantile(1.0) <= 42.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2, "non-finite samples are ignored");
    }

    #[test]
    fn deterministic_across_observation_orders_at_bucket_level() {
        let samples = lcg_stream(7, 2_000);
        let mut fwd = StreamHist::new();
        let mut rev = StreamHist::new();
        for &s in &samples {
            fwd.observe(s);
        }
        for &s in samples.iter().rev() {
            rev.observe(s);
        }
        assert_eq!(fwd.buckets, rev.buckets);
        assert_eq!(fwd.quantile(0.99), rev.quantile(0.99));
    }
}
