//! A minimal JSON parser plus a Chrome-trace schema check.
//!
//! The workspace's vendored `serde` is a no-op marker stub and there is
//! no `serde_json`, so validating the emitted trace needs a real parser.
//! This one covers the full JSON grammar the exporters produce (objects,
//! arrays, strings with escapes, numbers, booleans, null) — enough for a
//! round-trip structural check, which is what the CI smoke test wants.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} (found {:?})",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// What [`validate_chrome_trace`] learned about a trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events of every phase.
    pub events: usize,
    /// `"ph":"X"` complete (span) events.
    pub complete: usize,
    /// `"ph":"i"` instant events.
    pub instants: usize,
    /// `"ph":"M"` metadata events.
    pub metadata: usize,
    /// Distinct `tid`s seen across non-metadata events.
    pub tracks: usize,
}

/// Parses and structurally validates a Chrome Trace Event Format
/// document: top-level `traceEvents` array; every event an object with
/// string `ph` and `name`, numeric `ts`/`dur` where required; instants
/// carry a scope. Returns counts for smoke assertions.
pub fn validate_chrome_trace(input: &str) -> Result<TraceSummary, String> {
    let doc = parse(input)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;

    let mut summary = TraceSummary {
        events: events.len(),
        complete: 0,
        instants: 0,
        metadata: 0,
        tracks: 0,
    };
    let mut tids = std::collections::BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?;
        match ph {
            "X" => {
                let ts = e.get("ts").and_then(|v| v.as_f64());
                let dur = e.get("dur").and_then(|v| v.as_f64());
                if ts.is_none() || dur.is_none() {
                    return Err(format!("event {i}: complete event needs ts and dur"));
                }
                if dur.unwrap_or(0.0) < 0.0 {
                    return Err(format!("event {i}: negative duration"));
                }
                summary.complete += 1;
            }
            "i" => {
                if e.get("ts").and_then(|v| v.as_f64()).is_none() {
                    return Err(format!("event {i}: instant event needs ts"));
                }
                e.get("s")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("event {i}: instant event needs scope"))?;
                summary.instants += 1;
            }
            "M" => summary.metadata += 1,
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
        if ph != "M" {
            if let Some(tid) = e.get("tid").and_then(|v| v.as_f64()) {
                tids.insert(tid as u64);
            }
        }
    }
    summary.tracks = tids.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#)
            .expect("parse");
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn validates_the_exporter_output() {
        use crate::span::{Session, Span, SpanLevel};
        let session = Session {
            spans: vec![Span {
                id: 1,
                parent: None,
                name: "k".into(),
                level: SpanLevel::Device,
                category: "compute",
                track: "gpu0".into(),
                t_start_ns: 0.0,
                t_end_ns: 10.0,
                attrs: vec![],
            }],
            instants: vec![],
        };
        let json = crate::chrome_trace_json(&session);
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.complete, 1);
        assert_eq!(summary.tracks, 1);
        assert!(summary.metadata >= 2);
    }

    #[test]
    fn rejects_missing_trace_events() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
    }
}
