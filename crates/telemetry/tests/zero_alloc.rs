//! Proves the disabled hot path allocates nothing: a counting global
//! allocator wraps the system one, and every recording entry point is
//! driven with telemetry off.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_sink_allocates_nothing() {
    unintt_telemetry::set_enabled(false);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000u64 {
        unintt_telemetry::record_span(|| -> unintt_telemetry::Span {
            unreachable!("span closure must not run while disabled")
        });
        unintt_telemetry::record_instant(|| -> unintt_telemetry::Instant {
            unreachable!("instant closure must not run while disabled")
        });
        unintt_telemetry::counter_add("hot_counter", i);
        unintt_telemetry::gauge_set("hot_gauge", i as f64);
        unintt_telemetry::gauge_max("hot_gauge_max", i as f64);
        unintt_telemetry::histogram_observe("hot_hist", i as f64);
        assert!(unintt_telemetry::reserve_span_id().is_none());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled telemetry must not allocate on the hot path"
    );
}
