//! Prometheus text-exposition conformance tests.
//!
//! The registry's `render_prometheus` output is consumed verbatim by
//! scrape-shaped tooling, so it must follow the exposition-format rules:
//! `# HELP` before `# TYPE`, one header pair per family, escaped label
//! values, cumulative histogram `_bucket` series ending in `+Inf` plus
//! `_sum`/`_count`, and a fully deterministic (sorted) ordering so two
//! identical runs render byte-identical text.

use unintt_telemetry::{escape_label_value, Registry};

fn sample_registry() -> Registry {
    let mut r = Registry::empty();
    r.describe("jobs_total", "Jobs accepted by the service");
    r.describe("slo_burn_rate", "Fast-window SLO burn rate");
    r.describe("lat_ns", "Job latency, simulated ns");
    r.counter_add("jobs_total", 7);
    r.counter_add_labeled("shed_jobs", "tenant", 3, 2);
    r.counter_add_labeled("shed_jobs", "tenant", 0, 1);
    r.gauge_set("queue_depth", 4.0);
    r.gauge_set_labeled(
        "slo_burn_rate",
        &[("class", "raw-ntt"), ("slo", "avail"), ("tenant", "3")],
        2.5,
    );
    r.gauge_set_labeled(
        "slo_burn_rate",
        &[("class", "plonk-prove"), ("slo", "lat"), ("tenant", "all")],
        0.25,
    );
    r.histogram_observe("lat_ns", 5e2);
    r.histogram_observe("lat_ns", 5e3);
    r.histogram_observe("lat_ns", 1e13);
    r
}

#[test]
fn help_precedes_type_for_described_families() {
    let text = sample_registry().render_prometheus();
    let help = text
        .find("# HELP jobs_total Jobs accepted by the service")
        .expect("HELP line present");
    let ty = text.find("# TYPE jobs_total counter").expect("TYPE line");
    assert!(help < ty, "HELP must come before TYPE:\n{text}");
    // Families without a description still get a TYPE line.
    assert!(text.contains("# TYPE queue_depth gauge"));
    assert!(!text.contains("# HELP queue_depth"));
}

#[test]
fn one_header_pair_per_family() {
    let text = sample_registry().render_prometheus();
    for needle in [
        "# TYPE shed_jobs counter",
        "# TYPE slo_burn_rate gauge",
        "# TYPE lat_ns histogram",
        "# HELP slo_burn_rate Fast-window SLO burn rate",
    ] {
        assert_eq!(text.matches(needle).count(), 1, "{needle}:\n{text}");
    }
}

#[test]
fn label_values_are_escaped() {
    assert_eq!(escape_label_value(r"a\b"), r"a\\b");
    assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
    assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
    let mut r = Registry::empty();
    r.gauge_set_labeled("g", &[("path", "a\\b\"c\nd")], 1.0);
    let text = r.render_prometheus();
    assert!(
        text.contains("g{path=\"a\\\\b\\\"c\\nd\"} 1"),
        "escaped series line:\n{text}"
    );
    assert_eq!(
        text.matches('\n').count(),
        2,
        "escaping must not introduce raw newlines inside a sample line"
    );
}

#[test]
fn labeled_gauge_series_render_sorted_with_all_labels() {
    let text = sample_registry().render_prometheus();
    let a = text
        .find("slo_burn_rate{class=\"plonk-prove\",slo=\"lat\",tenant=\"all\"} 0.25")
        .expect("plonk series");
    let b = text
        .find("slo_burn_rate{class=\"raw-ntt\",slo=\"avail\",tenant=\"3\"} 2.5")
        .expect("raw-ntt series");
    assert!(a < b, "series must render in sorted label order");
}

#[test]
fn histogram_series_are_cumulative_and_end_in_inf() {
    let text = sample_registry().render_prometheus();
    assert!(text.contains("lat_ns_bucket{le=\"1000\"} 1"));
    assert!(text.contains("lat_ns_bucket{le=\"10000\"} 2"));
    assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
    assert!(text.contains("lat_ns_sum 10000000005500"));
    assert!(text.contains("lat_ns_count 3"));
    // +Inf must be the last bucket, followed by _sum then _count.
    let inf = text.find("le=\"+Inf\"").unwrap();
    let sum = text.find("lat_ns_sum").unwrap();
    let count = text.find("lat_ns_count").unwrap();
    assert!(
        inf < sum && sum < count,
        "bucket/sum/count ordering:\n{text}"
    );
}

#[test]
fn rendering_is_deterministic_and_sorted() {
    // Build the same registry with insertions in a different order; the
    // rendered text must be byte-identical.
    let mut r2 = Registry::empty();
    r2.histogram_observe("lat_ns", 1e13);
    r2.gauge_set_labeled(
        "slo_burn_rate",
        &[("class", "raw-ntt"), ("slo", "avail"), ("tenant", "3")],
        2.5,
    );
    r2.counter_add_labeled("shed_jobs", "tenant", 0, 1);
    r2.gauge_set("queue_depth", 4.0);
    r2.describe("lat_ns", "Job latency, simulated ns");
    r2.counter_add("jobs_total", 7);
    r2.histogram_observe("lat_ns", 5e3);
    r2.describe("slo_burn_rate", "Fast-window SLO burn rate");
    r2.gauge_set_labeled(
        "slo_burn_rate",
        &[("class", "plonk-prove"), ("slo", "lat"), ("tenant", "all")],
        0.25,
    );
    r2.counter_add_labeled("shed_jobs", "tenant", 3, 2);
    r2.describe("jobs_total", "Jobs accepted by the service");
    r2.histogram_observe("lat_ns", 5e2);
    assert_eq!(
        sample_registry().render_prometheus(),
        r2.render_prometheus()
    );
    // Families render name-sorted within each section.
    let text = sample_registry().render_prometheus();
    let jobs = text.find("# TYPE jobs_total").unwrap();
    let shed = text.find("# TYPE shed_jobs").unwrap();
    assert!(jobs < shed, "counters sorted by name");
}

#[test]
fn overwriting_a_labeled_series_keeps_one_sample() {
    let mut r = Registry::empty();
    r.gauge_set_labeled("g", &[("k", "v")], 1.0);
    r.gauge_set_labeled("g", &[("k", "v")], 9.0);
    let text = r.render_prometheus();
    assert_eq!(text.matches("g{k=\"v\"}").count(), 1);
    assert!(text.contains("g{k=\"v\"} 9"));
}
