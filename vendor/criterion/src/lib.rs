//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The workspace builds without crates.io access, so this provides the
//! types and macros the `benches/` targets use. Instead of statistical
//! sampling it executes every benchmark body a small fixed number of
//! times and prints the mean wall-clock — enough to smoke-run `cargo
//! bench` and compare orders of magnitude, not a replacement for real
//! Criterion runs on a connected machine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Iterations per benchmark body (fixed; no adaptive sampling).
const ITERS: u32 = 3;

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How setup cost is amortized in [`Bencher::iter_batched`]. Ignored by
/// the stub (each batch runs its setup fresh).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared throughput of a benchmark (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark instance.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Self {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares throughput (ignored by the stub).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F, N>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        N: std::fmt::Display,
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher::new();
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed / b.iters
    } else {
        Duration::ZERO
    };
    println!("bench {name:<56} {mean:>12.2?}/iter ({} iters)", b.iters);
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
