//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op derives and defines the marker traits so
//! `use serde::{Deserialize, Serialize}` and `#[derive(Serialize,
//! Deserialize)]` compile unchanged. Nothing in the workspace performs
//! serde-based (de)serialization at runtime; the repo's own
//! `unintt_zkp::serialize` module handles proof bytes by hand.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de>: Sized {}
