//! Value-generation strategies (deterministic, non-shrinking).

use rand::rngs::StdRng;
use rand::Rng as _;

/// A source of values for one `x in strategy` binding.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.gen::<u128>() % span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.gen::<u128>() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.gen::<u128>() % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.gen::<u64>() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy over the full domain of `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — uniform over all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Choice among a fixed slice of values.
impl<T: Clone> Strategy for &[T] {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.is_empty(), "empty slice strategy");
        self[(rng.gen::<u64>() % self.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..4096).generate(&mut rng);
            assert!(w < 4096);
            let x = (1u64..1 << 32).generate(&mut rng);
            assert!((1..1u64 << 32).contains(&x));
        }
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
