//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the forms this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! `x in <range>` / `x in any::<T>()` bindings, `prop_assert!`,
//! `prop_assert_eq!`, and `prop_assume!`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test generator (seeded from the test name and case index, so every
//! run explores the same cases) and failing cases are reported without
//! shrinking. That trades minimal counterexamples for zero dependencies —
//! the right trade in an offline build environment.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic sampling strategies.
pub mod strategy_impl {}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    use crate::test_runner::{ProptestConfig, TestCaseError};

    /// Deterministic per-case RNG: the same (test, case) pair always draws
    /// the same inputs, in every environment.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37_79b9))
    }

    /// Drives one proptest-style test: runs `body` for each case, skipping
    /// rejected cases and panicking (with the case description) on failure.
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
    {
        let mut rejected = 0u32;
        for case in 0..config.cases {
            let mut rng = case_rng(test_name, case);
            let (desc, outcome) = body(&mut rng);
            match outcome {
                Ok(()) => {}
                Err(TestCaseError::Reject) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case {case}/{} failed for {test_name}({desc}): {msg}",
                        config.cases
                    );
                }
            }
        }
        // Mirror upstream's guard against vacuous tests.
        assert!(
            rejected < config.cases,
            "proptest: every case of {test_name} was rejected by prop_assume!"
        );
    }
}

/// Defines property tests. See the module docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::__rt::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let __desc = {
                    let mut parts: Vec<String> = Vec::new();
                    $(parts.push(format!("{} = {:?}", stringify!($arg), &$arg));)*
                    parts.join(", ")
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                (__desc, __outcome)
            });
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
