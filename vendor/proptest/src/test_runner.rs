//! Test-runner configuration and case outcomes.

/// Runner configuration (only the fields this workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}
