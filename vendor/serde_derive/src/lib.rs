//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace builds offline, so this stands in for `serde_derive`: the
//! derives accept the usual `#[serde(...)]` helper attributes and expand to
//! nothing. No code in the workspace serializes through serde at runtime —
//! the derives exist so type definitions keep their upstream shape.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
