//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` items the code actually uses — `Rng::gen`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng` — are provided here. The
//! generator is xoshiro256** seeded through SplitMix64: deterministic,
//! high-quality, and stable across platforms, which is all the tests and
//! simulator need (nothing here is used for cryptographic sampling).

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand`'s `Rng`).
pub trait Rng: RngCore {
    /// Samples a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unsized_rng_usable() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen::<u32>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = draw(&mut rng);
    }
}
