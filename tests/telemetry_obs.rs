//! Cross-crate telemetry invariants: span trees built from *real*
//! instrumented engine runs must nest correctly, and fault-injected runs
//! must mark every injected fault with a matching instant event.
//!
//! Each test (and each proptest case) runs inside its own exclusive
//! telemetry session, so these interleave safely with every other test
//! in the binary.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use unintt_core::{CommMode, RecoveryPolicy, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Field, Goldilocks, PrimeField};
use unintt_gpu_sim::{presets, FaultEvent, FaultKind, FaultPlan, FieldSpec, Machine};
use unintt_telemetry::{self as telemetry, InstantKind, Session, SpanLevel, SpanTree};

/// One functional forward transform with full device-span export,
/// recorded under a fresh telemetry session.
fn traced_forward(log_n: u32, gpus: usize, overlapped: bool, seed: u64) -> Session {
    let fs = FieldSpec::goldilocks();
    let cfg = presets::a100_nvlink(gpus);
    let mut opts = UniNttOptions::tuned_for(&fs);
    opts.comm_mode = if overlapped {
        CommMode::Overlapped
    } else {
        CommMode::Blocking
    };
    let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, opts, fs);
    let mut machine = Machine::new(cfg, fs);
    let mut rng = StdRng::seed_from_u64(seed);
    let input: Vec<Goldilocks> = (0..1usize << log_n)
        .map(|_| Goldilocks::random(&mut rng))
        .collect();
    let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);

    let _guard = telemetry::start_session();
    engine.forward(&mut machine, &mut data);
    machine.export_telemetry_spans();
    telemetry::take_session()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn span_trees_from_real_runs_validate(
        log_n in 8u32..12,
        log_g in 0u32..3,
        overlapped in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let session = traced_forward(log_n, 1usize << log_g, overlapped, seed);
        prop_assert!(!session.spans.is_empty());

        // Exactly one transform root, and phase spans beneath it.
        prop_assert_eq!(
            session.spans.iter().filter(|s| s.name == "unintt-forward").count(),
            1
        );
        prop_assert!(session.spans.iter().any(|s| s.level == SpanLevel::Fabric));
        prop_assert!(session.spans.iter().any(|s| s.level == SpanLevel::Device));

        // Tree invariants: children inside parents, no sibling overlap
        // on one track, intervals well-formed.
        let tree = SpanTree::build(&session.spans);
        if let Err(e) = tree.validate() {
            prop_assert!(false, "span tree invalid: {}", e);
        }
        prop_assert!(!tree.roots().is_empty());
    }
}

#[test]
fn fault_injected_runs_emit_matching_instants() {
    let fs = FieldSpec::goldilocks();
    let gpus = 4;
    let cfg = presets::a100_nvlink(gpus);
    let engine = UniNttEngine::<Goldilocks>::new(12, &cfg, UniNttOptions::tuned_for(&fs), fs);
    let mut machine = Machine::new(cfg, fs);
    machine.set_fault_plan(FaultPlan::scripted(vec![
        FaultEvent {
            seq: 0,
            kind: FaultKind::Drop,
        },
        FaultEvent {
            seq: 2,
            kind: FaultKind::Delay { factor: 2.5 },
        },
    ]));
    let input: Vec<Goldilocks> = (0..1usize << 12)
        .map(|i| Goldilocks::from_u64(0x0b5e_u64.wrapping_mul(i as u64 + 7)))
        .collect();
    let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);

    let _guard = telemetry::start_session();
    engine
        .try_forward(&mut machine, &mut data, &RecoveryPolicy::default())
        .expect("default recovery absorbs a drop and a delay");
    let session = telemetry::take_session();

    let fault_instants: Vec<_> = session
        .instants
        .iter()
        .filter(|i| i.kind == InstantKind::Fault)
        .collect();
    assert!(
        !machine.fault_log().is_empty(),
        "the scripted plan must actually fire"
    );
    assert_eq!(
        fault_instants.len(),
        machine.fault_log().len(),
        "one Fault instant per injected fault"
    );
    for (instant, event) in fault_instants.iter().zip(machine.fault_log()) {
        assert_eq!(instant.name, event.kind.name());
    }
    assert_eq!(
        telemetry::registry_snapshot()
            .counters
            .get("sim_faults_injected")
            .copied(),
        Some(machine.fault_log().len() as u64),
        "the faults counter tracks the fault log"
    );
}

#[test]
fn traced_and_untraced_runs_charge_identical_time() {
    let run_once = || {
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(4);
        let engine = UniNttEngine::<Goldilocks>::new(13, &cfg, UniNttOptions::tuned_for(&fs), fs);
        let mut machine = Machine::new(cfg, fs);
        engine.simulate_forward(&mut machine, 1);
        machine.max_clock_ns()
    };
    let traced = {
        let _guard = telemetry::start_session();
        run_once()
    };
    let untraced = run_once();
    assert_eq!(traced, untraced, "telemetry must never move the clock");
}
