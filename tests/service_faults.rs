//! Proving-service fault tolerance: seeded device-loss and packet-drop
//! faults injected into the service's cluster dispatches must never fail
//! a job under the default `RecoveryPolicy` — leases degrade, re-plan
//! and get repaired while every submission still completes with a
//! verified output (the service checks raw-NTT results against the CPU
//! reference internally when `verify_outputs` is on, the default).

use unintt_gpu_sim::FaultRates;
use unintt_serve::{ProofService, SchedulerPolicy, ServiceConfig, WorkloadSpec};

fn faulty_config(seed: u64) -> ServiceConfig {
    ServiceConfig {
        fault_rates: Some(FaultRates {
            drop_p: 0.01,
            device_loss_p: 0.004,
            ..FaultRates::default()
        }),
        fault_seed: seed,
        ..ServiceConfig::default()
    }
}

#[test]
fn device_loss_never_fails_jobs_under_default_policy() {
    let mut service = ProofService::new(faulty_config(0xfa_1117));
    service.submit_all(WorkloadSpec::raw_only(41, 96, 30_000.0).generate());
    let report = service.run();

    assert!(
        report.all_completed(),
        "every job must complete despite injected faults"
    );
    let raw = &report.metrics.classes["raw-ntt"];
    assert_eq!(raw.completed, raw.submitted);
    assert!(
        raw.retries + raw.replans > 0,
        "these rates should make the recovery layer visibly work \
         (retries {}, replans {})",
        raw.retries,
        raw.replans
    );
}

#[test]
fn faulty_runs_are_deterministic() {
    let run = || {
        let mut service = ProofService::new(faulty_config(0xfa_1117));
        service.submit_all(WorkloadSpec::raw_only(41, 64, 30_000.0).generate());
        service.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes, b.outcomes, "fault injection must be seeded");
}

#[test]
fn repaired_leases_keep_serving_after_device_loss() {
    // Heavier loss rate on a single lease: the lease dies, is repaired
    // on the simulated clock, and the remaining jobs still complete.
    let mut service = ProofService::new(ServiceConfig {
        num_leases: 1,
        ..faulty_config(7)
    });
    service.submit_all(WorkloadSpec::raw_only(13, 48, 10_000.0).generate());
    let report = service.run();
    assert!(report.all_completed());
    assert_eq!(report.metrics.leases.len(), 1);
    assert!(
        report.metrics.leases[0].dispatches > 0,
        "the single lease must have served the whole stream"
    );
}

#[test]
fn policies_preserve_the_zero_failure_guarantee() {
    for policy in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::Priority,
        SchedulerPolicy::ShortestJobFirst,
    ] {
        let mut service = ProofService::new(ServiceConfig {
            policy,
            ..faulty_config(99)
        });
        service.submit_all(WorkloadSpec::raw_only(17, 48, 30_000.0).generate());
        let report = service.run();
        assert!(
            report.all_completed(),
            "policy {} dropped a job under faults",
            policy.name()
        );
    }
}
