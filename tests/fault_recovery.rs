//! End-to-end fault recovery: a 4-GPU forward NTT whose all-to-all is
//! dropped by an injected fault must, after retry, produce output
//! bit-identical to the CPU reference — and the whole episode must be
//! deterministic under the fault plan's seed.

use unintt_core::{RecoveryPolicy, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Goldilocks, PrimeField};
use unintt_gpu_sim::{presets, FaultEvent, FaultKind, FaultPlan, FaultRates, FieldSpec, Machine};
use unintt_ntt::Ntt;

const LOG_N: u32 = 12;
const GPUS: usize = 4;

fn cpu_reference(input: &[Goldilocks]) -> Vec<Goldilocks> {
    let mut v = input.to_vec();
    Ntt::<Goldilocks>::new(LOG_N).forward(&mut v);
    v
}

fn test_input() -> Vec<Goldilocks> {
    (0..1usize << LOG_N)
        .map(|i| Goldilocks::from_u64(0xdead_beef_u64.wrapping_mul(i as u64 + 3)))
        .collect()
}

fn run_with_plan(plan: Option<FaultPlan>, policy: &RecoveryPolicy) -> (Vec<Goldilocks>, f64, u64) {
    let fs = FieldSpec::goldilocks();
    let cfg = presets::a100_nvlink(GPUS);
    let engine = UniNttEngine::<Goldilocks>::new(LOG_N, &cfg, UniNttOptions::tuned_for(&fs), fs);
    let mut machine = Machine::new(cfg, fs);
    if let Some(plan) = plan {
        machine.set_fault_plan(plan);
    }
    let input = test_input();
    let mut data = Sharded::distribute(&input, GPUS, ShardLayout::Cyclic);
    engine
        .try_forward(&mut machine, &mut data, policy)
        .expect("recovery should absorb the injected faults");
    (
        data.collect(),
        machine.max_clock_ns(),
        machine.stats().retries,
    )
}

#[test]
fn recovered_forward_ntt_matches_cpu_reference() {
    // The headline acceptance check: drop the transform's all-to-all on
    // the wire; the retry must complete and the output must be bit-exact.
    let plan = FaultPlan::scripted(vec![FaultEvent {
        seq: 0,
        kind: FaultKind::Drop,
    }]);
    let (output, _, retries) = run_with_plan(Some(plan), &RecoveryPolicy::default());
    assert!(retries > 0, "the drop must actually have been retried");
    assert_eq!(output, cpu_reference(&test_input()));
}

#[test]
fn recovery_is_deterministic_per_seed() {
    // Same seed ⇒ identical output AND identical simulated time, down to
    // the last nanosecond of backoff.
    let rates = FaultRates::transfers_only(0.2);
    let policy = RecoveryPolicy::default();
    let (out_a, ns_a, retries_a) = run_with_plan(Some(FaultPlan::random(42, rates)), &policy);
    let (out_b, ns_b, retries_b) = run_with_plan(Some(FaultPlan::random(42, rates)), &policy);
    assert_eq!(out_a, out_b);
    assert_eq!(ns_a, ns_b);
    assert_eq!(retries_a, retries_b);
    assert_eq!(out_a, cpu_reference(&test_input()));
}

#[test]
fn recovery_costs_simulated_time_but_not_correctness() {
    // A faulted-and-recovered run must take strictly longer on the
    // simulated clock than a clean one, and still agree with it exactly.
    let (clean, clean_ns, _) = run_with_plan(None, &RecoveryPolicy::none());
    let plan = FaultPlan::scripted(vec![FaultEvent {
        seq: 0,
        kind: FaultKind::Drop,
    }]);
    let (recovered, recovered_ns, _) = run_with_plan(Some(plan), &RecoveryPolicy::default());
    assert_eq!(clean, recovered);
    assert!(
        recovered_ns > clean_ns,
        "recovery charged no simulated time: {recovered_ns} vs {clean_ns}"
    );
}
