//! Cross-crate integration: the simulated multi-GPU engines against the
//! CPU NTT library over a wide configuration matrix.

use rand::{rngs::StdRng, SeedableRng};
use unintt_core::{
    single_gpu, FourStepMultiGpuEngine, ShardLayout, Sharded, UniNttEngine, UniNttOptions,
};
use unintt_ff::{BabyBear, Bn254Fr, Field, Goldilocks, TwoAdicField};
use unintt_gpu_sim::{presets, FieldSpec, Machine};
use unintt_ntt::Ntt;

fn random_vec<F: Field>(n: usize, seed: u64) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| F::random(&mut rng)).collect()
}

fn check_engine_matrix<F: TwoAdicField>(fs: FieldSpec, seed: u64) {
    for gpus in [1usize, 2, 4, 8] {
        for log_n in [6u32, 9, 11] {
            let input = random_vec::<F>(1 << log_n, seed + log_n as u64);
            let reference = {
                let ntt = Ntt::<F>::new(log_n);
                let mut out = input.clone();
                ntt.forward(&mut out);
                out
            };

            let cfg = presets::a100_nvlink(gpus);
            let engine = UniNttEngine::<F>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
            let mut machine = Machine::new(cfg, fs);
            let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
            engine.forward(&mut machine, &mut data);
            assert_eq!(
                data.collect(),
                reference,
                "{} gpus={gpus} log_n={log_n}",
                fs.name
            );
            engine.inverse(&mut machine, &mut data);
            assert_eq!(data.collect(), input, "{} roundtrip", fs.name);
        }
    }
}

#[test]
fn unintt_matrix_goldilocks() {
    check_engine_matrix::<Goldilocks>(FieldSpec::goldilocks(), 1);
}

#[test]
fn unintt_matrix_babybear() {
    check_engine_matrix::<BabyBear>(FieldSpec::babybear(), 2);
}

#[test]
fn unintt_matrix_bn254() {
    check_engine_matrix::<Bn254Fr>(FieldSpec::bn254_fr(), 3);
}

#[test]
fn all_engines_agree_on_one_input() {
    let log_n = 10u32;
    let gpus = 4usize;
    let fs = FieldSpec::goldilocks();
    let input = random_vec::<Goldilocks>(1 << log_n, 42);
    let cfg = presets::a100_nvlink(gpus);

    let reference = {
        let ntt = Ntt::<Goldilocks>::new(log_n);
        let mut out = input.clone();
        ntt.forward(&mut out);
        out
    };

    // UniNTT multi-GPU.
    let unintt = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
    let mut m1 = Machine::new(cfg.clone(), fs);
    let mut d1 = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
    unintt.forward(&mut m1, &mut d1);

    // Four-step baseline.
    let four_step = FourStepMultiGpuEngine::<Goldilocks>::new(log_n, &cfg, fs);
    let mut m2 = Machine::new(cfg.clone(), fs);
    let mut d2 = Sharded::distribute(&input, gpus, ShardLayout::NaturalBlocks);
    four_step.forward(&mut m2, &mut d2);

    // Single GPU.
    let single = single_gpu::engine::<Goldilocks>(log_n, &cfg, fs);
    let mut m3 = single_gpu::machine(&cfg, fs);
    let mut d3 = Sharded::distribute(&input, 1, ShardLayout::Cyclic);
    single.forward(&mut m3, &mut d3);

    assert_eq!(d1.collect(), reference);
    assert_eq!(d2.collect(), reference);
    assert_eq!(d3.collect(), reference);

    // And the performance relations hold on this very machine.
    assert!(
        m2.max_clock_ns() > m1.max_clock_ns(),
        "baseline slower than UniNTT"
    );
    assert!(
        m2.stats().interconnect_bytes_sent > m1.stats().interconnect_bytes_sent,
        "baseline moves more bytes"
    );
}

#[test]
fn engine_composes_with_pointwise_ops_for_convolution() {
    // Cyclic convolution computed entirely through the multi-GPU engine:
    // forward both, multiply in the (permuted) evaluation domain, inverse.
    let log_n = 9u32;
    let gpus = 8usize;
    let fs = FieldSpec::goldilocks();
    let cfg = presets::a100_nvlink(gpus);
    let a = random_vec::<Goldilocks>(1 << log_n, 7);
    let b = random_vec::<Goldilocks>(1 << log_n, 8);

    let expected = unintt_ntt::cyclic_convolution(&a, &b);

    let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
    let mut machine = Machine::new(cfg, fs);
    let mut da = Sharded::distribute(&a, gpus, ShardLayout::Cyclic);
    let mut db = Sharded::distribute(&b, gpus, ShardLayout::Cyclic);
    engine.forward(&mut machine, &mut da);
    engine.forward(&mut machine, &mut db);

    // Pointwise product shard by shard — valid because both outputs are in
    // the *same* permuted order (the whole point of permuted chaining).
    for (sa, sb) in da.shards_mut().iter_mut().zip(db.shards()) {
        for (x, y) in sa.iter_mut().zip(sb) {
            *x *= *y;
        }
    }
    engine.inverse(&mut machine, &mut da);
    assert_eq!(da.collect(), expected);
}
