//! Cross-crate integration: the full proof system on CPU and simulated
//! multi-GPU backends.

use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{Bn254Fr, Field, PrimeField};
use unintt_gpu_sim::presets;
use unintt_zkp::{
    cubic_circuit, prove, random_circuit, setup, verify, Backend, Circuit, Gate, Witness,
};

#[test]
fn proofs_for_many_circuit_sizes() {
    let mut rng = StdRng::seed_from_u64(1);
    for rows in [4usize, 16, 64, 256] {
        let (circuit, witness) = random_circuit(rows, &mut rng);
        let (pk, vk) = setup(&circuit, &mut rng);
        let proof = prove(&pk, &witness, &[], &mut Backend::cpu());
        assert!(verify(&vk, &proof, &[]), "rows={rows}");
    }
}

#[test]
fn simulated_backends_agree_across_gpu_counts() {
    let mut rng = StdRng::seed_from_u64(2);
    let (circuit, witness) = random_circuit(100, &mut rng); // n = 128
    let (pk, vk) = setup(&circuit, &mut rng);
    let reference = prove(&pk, &witness, &[], &mut Backend::cpu());

    for gpus in [1usize, 2, 4, 8] {
        let mut backend =
            Backend::simulated(presets::a100_nvlink(gpus), presets::a100_nvlink(gpus));
        let proof = prove(&pk, &witness, &[], &mut backend);
        assert_eq!(proof, reference, "gpus={gpus}");
        assert!(verify(&vk, &proof, &[]));
        if gpus > 1 {
            assert!(backend.report().msm_time_ns > 0.0);
        }
    }
}

#[test]
fn proof_does_not_verify_under_wrong_key() {
    let mut rng = StdRng::seed_from_u64(3);
    let (circuit, witness) = random_circuit(20, &mut rng);
    let (pk, _vk) = setup(&circuit, &mut rng);
    // A second setup has a different trapdoor: its key must reject.
    let (_pk2, vk2) = setup(&circuit, &mut rng);
    let proof = prove(&pk, &witness, &[], &mut Backend::cpu());
    assert!(!verify(&vk2, &proof, &[]));
}

#[test]
fn witness_for_different_circuit_rejected() {
    let mut rng = StdRng::seed_from_u64(4);
    let (circuit_a, _) = random_circuit(20, &mut rng);
    let (circuit_b, witness_b) = random_circuit(20, &mut rng);
    assert!(!circuit_a.is_satisfied(&witness_b));

    let (pk_a, vk_a) = setup(&circuit_a, &mut rng);
    // Prove circuit A with B's witness: the quotient cannot divide, so
    // either the prover panics (debug assert) or the verifier rejects.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        prove(&pk_a, &witness_b, &[], &mut Backend::cpu())
    }));
    if let Ok(proof) = result {
        assert!(!verify(&vk_a, &proof, &[]));
    }
    let _ = circuit_b;
}

#[test]
fn hand_built_range_style_circuit() {
    // b ∈ {0, 1} via b·b − b = 0, then c = a + 41·b.
    let b_is_bit = Gate {
        q_m: Bn254Fr::ONE,
        q_l: -Bn254Fr::ONE,
        ..Default::default()
    };
    let forty_one = Bn254Fr::from_u64(41);
    let linear = Gate {
        q_l: Bn254Fr::ONE,
        q_r: forty_one,
        q_o: -Bn254Fr::ONE,
        ..Default::default()
    };
    let circuit = Circuit::new(vec![b_is_bit, linear]);

    let (a, b) = (Bn254Fr::from_u64(1), Bn254Fr::ONE);
    let witness = circuit.pad_witness(Witness {
        a: vec![b, a],
        b: vec![b, b],
        c: vec![Bn254Fr::ZERO, a + forty_one * b],
    });
    assert!(circuit.is_satisfied(&witness));

    let mut rng = StdRng::seed_from_u64(5);
    let (pk, vk) = setup(&circuit, &mut rng);
    let proof = prove(&pk, &witness, &[], &mut Backend::cpu());
    assert!(verify(&vk, &proof, &[]));

    // A non-bit value of b breaks the bit gate.
    let bad = circuit.pad_witness(Witness {
        a: vec![Bn254Fr::from_u64(2), a],
        b: vec![Bn254Fr::from_u64(2), Bn254Fr::from_u64(2)],
        c: vec![Bn254Fr::ZERO, a + forty_one * Bn254Fr::from_u64(2)],
    });
    assert!(!circuit.is_satisfied(&bad));
}

#[test]
fn cubic_statement_binds_to_its_output() {
    let mut rng = StdRng::seed_from_u64(6);
    let (circuit3, witness3, y3) = cubic_circuit(Bn254Fr::from_u64(3));
    let (circuit5, _, y5) = cubic_circuit(Bn254Fr::from_u64(5));
    assert_ne!(y3, y5);
    // The gate set is identical for every x — it is the *public input* y
    // that distinguishes the statements.
    assert_eq!(circuit3, circuit5);
    let (pk, vk) = setup(&circuit3, &mut rng);
    let proof = prove(&pk, &witness3, &[y3], &mut Backend::cpu());
    assert!(verify(&vk, &proof, &[y3]));
    // The same proof must not pass for a different claimed output, nor
    // with the public input missing.
    assert!(!verify(&vk, &proof, &[y5]));
    assert!(!verify(&vk, &proof, &[]));
}
