//! Property-based invariants of the simulator and the decomposition
//! planner, fuzzing machine shapes and transform sizes.

use proptest::prelude::*;
use unintt_core::{DecompositionPlan, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Field, Goldilocks};
use unintt_gpu_sim::{presets, FieldSpec, Machine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_covers_all_stages(log_n in 4u32..28, log_g in 0u32..4, wide in any::<bool>()) {
        prop_assume!(log_n >= 2 * log_g);
        let machine = presets::a100_nvlink(1 << log_g);
        let elem_bytes = if wide { 32 } else { 8 };
        let plan = DecompositionPlan::plan(log_n, &machine, elem_bytes);
        prop_assert_eq!(plan.log_g + plan.log_m, log_n);
        prop_assert_eq!(plan.device_passes.iter().sum::<u32>(), plan.log_m);
        prop_assert!(plan.device_passes.iter().all(|&p| p <= plan.log_block_tile));
        prop_assert!(plan.log_warp_tile <= 5);
    }

    #[test]
    fn all_to_all_is_involution(log_g in 1u32..4, log_chunk in 0u32..6, seed in any::<u64>()) {
        let g = 1usize << log_g;
        let mut machine = Machine::new(presets::a100_nvlink(g), FieldSpec::goldilocks());
        let len = g << log_chunk;
        let mut shards: Vec<Vec<u64>> = (0..g)
            .map(|d| (0..len).map(|j| seed ^ ((d * len + j) as u64)).collect())
            .collect();
        let original = shards.clone();
        machine.all_to_all(&mut shards, 8).unwrap();
        machine.all_to_all(&mut shards, 8).unwrap();
        prop_assert_eq!(shards, original);
    }

    #[test]
    fn sharded_distribute_collect_roundtrip(
        log_n in 3u32..10,
        log_g in 0u32..4,
        layout_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(log_n >= 2 * log_g);
        let layout = [ShardLayout::Cyclic, ShardLayout::NaturalBlocks, ShardLayout::BlockCyclic][layout_idx];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let input: Vec<Goldilocks> =
            (0..1usize << log_n).map(|_| Goldilocks::random(&mut rng)).collect();
        let sharded = Sharded::distribute(&input, 1 << log_g, layout);
        prop_assert_eq!(sharded.collect(), input);
    }

    #[test]
    fn engine_forward_inverse_identity(log_n in 6u32..10, log_g in 0u32..4, seed in any::<u64>()) {
        prop_assume!(log_n >= 2 * log_g);
        let gpus = 1usize << log_g;
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(gpus);
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
        let mut machine = Machine::new(cfg, fs);

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let input: Vec<Goldilocks> =
            (0..1usize << log_n).map(|_| Goldilocks::random(&mut rng)).collect();
        let mut data = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
        engine.forward(&mut machine, &mut data);
        engine.inverse(&mut machine, &mut data);
        prop_assert_eq!(data.collect(), input);
    }

    #[test]
    fn simulated_time_monotone_in_size(log_n in 12u32..24, log_g in 1u32..4) {
        let gpus = 1usize << log_g;
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(gpus);
        let t = |ln: u32| {
            let engine = UniNttEngine::<Goldilocks>::new(ln, &cfg, UniNttOptions::tuned_for(&fs), fs);
            let mut machine = Machine::new(cfg.clone(), fs);
            engine.simulate_forward(&mut machine, 1);
            machine.max_clock_ns()
        };
        prop_assert!(t(log_n + 1) >= t(log_n), "doubling N must not get cheaper");
    }

    #[test]
    fn interconnect_bytes_exact(log_n in 10u32..24, log_g in 1u32..4) {
        prop_assume!(log_n >= 2 * log_g);
        let gpus = 1u64 << log_g;
        let fs = FieldSpec::goldilocks();
        let cfg = presets::a100_nvlink(gpus as usize);
        let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
        let mut machine = Machine::new(cfg, fs);
        engine.simulate_forward(&mut machine, 1);
        // Exactly one all-to-all: per device, shard_bytes * (G-1)/G.
        let shard_bytes = (1u64 << (log_n - log_g)) * 8;
        prop_assert_eq!(
            machine.stats().interconnect_bytes_sent,
            gpus * shard_bytes * (gpus - 1) / gpus
        );
    }
}
