//! Cross-crate integration: the hash-based commitment pipeline against the
//! NTT library and the multi-GPU simulator.

use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{Field, Goldilocks, PrimeField, TwoAdicField};
use unintt_fri::{commit_trace, fri, verify_trace, FriConfig, LdeBackend};
use unintt_gpu_sim::presets;
use unintt_ntt::{coset_ntt, Ntt};

fn random_trace(n: usize, width: usize, seed: u64) -> Vec<Vec<Goldilocks>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..width)
        .map(|_| (0..n).map(|_| Goldilocks::random(&mut rng)).collect())
        .collect()
}

#[test]
fn pipeline_roundtrip_across_machine_shapes() {
    let config = FriConfig::standard();
    let trace = random_trace(128, 3, 1);
    let reference = commit_trace(&trace, &config, &mut LdeBackend::cpu());
    assert!(verify_trace(&reference, &config));

    for gpus in [1usize, 2, 8] {
        let mut backend = LdeBackend::simulated(presets::a100_nvlink(gpus));
        let commitment = commit_trace(&trace, &config, &mut backend);
        assert_eq!(
            commitment.trace_root, reference.trace_root,
            "gpus={gpus}: LDE through the engine must be bit-identical"
        );
        assert!(verify_trace(&commitment, &config), "gpus={gpus}");
    }
}

#[test]
fn fri_accepts_exactly_degree_bound() {
    // Degree bound is n = N / blowup: a polynomial of degree n−1 passes,
    // and one of degree n (one too many coefficients) must fail.
    let config = FriConfig::standard();
    let log_degree = 7u32;
    let shift = Goldilocks::GENERATOR;
    let mut rng = StdRng::seed_from_u64(2);

    let build = |extra: bool, rng: &mut StdRng| {
        let mut coeffs: Vec<Goldilocks> = (0..1usize << log_degree)
            .map(|_| Goldilocks::random(rng))
            .collect();
        coeffs.resize(1 << (log_degree + config.log_blowup), Goldilocks::ZERO);
        if extra {
            coeffs[1 << log_degree] = Goldilocks::ONE;
        }
        let ntt = Ntt::<Goldilocks>::new(log_degree + config.log_blowup);
        coset_ntt(&ntt, &mut coeffs, shift);
        coeffs
    };

    let good = build(false, &mut rng);
    let n = good.len();
    let proof = fri::prove(&config, fri::embed(&good), shift);
    assert!(fri::verify(&config, &proof, n, shift));

    let bad = build(true, &mut rng);
    let proof = fri::prove(&config, fri::embed(&bad), shift);
    assert!(!fri::verify(&config, &proof, n, shift));
}

#[test]
fn extension_field_challenges_compose_with_base_codewords() {
    // DEEP-style consistency: evaluating the committed polynomial at an
    // extension-field point via barycentric interpolation over base-field
    // evaluations. This exercises GoldilocksExt2 against the NTT library.
    use unintt_ff::GoldilocksExt2;

    let log_n = 6u32;
    let n = 1usize << log_n;
    let mut rng = StdRng::seed_from_u64(3);
    let coeffs: Vec<Goldilocks> = (0..n).map(|_| Goldilocks::random(&mut rng)).collect();

    // Evaluate at a random extension point two ways.
    let zeta = GoldilocksExt2::random(&mut rng);
    let direct: GoldilocksExt2 = coeffs.iter().rev().fold(GoldilocksExt2::ZERO, |acc, &c| {
        acc * zeta + GoldilocksExt2::from_base(c)
    });

    // Via the evaluation form: barycentric over the subgroup.
    let ntt = Ntt::<Goldilocks>::new(log_n);
    let mut evals = coeffs.clone();
    ntt.forward(&mut evals);
    let omega = Goldilocks::two_adic_generator(log_n);
    // p(ζ) = (ζⁿ−1)/n · Σ evals[i]·ωⁱ/(ζ−ωⁱ)
    let zn = {
        let mut acc = GoldilocksExt2::ONE;
        for _ in 0..log_n {
            acc = acc.square();
        }
        let mut z = zeta;
        for _ in 0..log_n {
            z = z.square();
        }
        let _ = acc;
        z - GoldilocksExt2::ONE
    };
    let n_inv = GoldilocksExt2::from_base(Goldilocks::from_u64(n as u64).inverse().unwrap());
    let mut sum = GoldilocksExt2::ZERO;
    let mut wi = Goldilocks::ONE;
    for &e in &evals {
        let denom = (zeta - GoldilocksExt2::from_base(wi)).inverse().unwrap();
        sum += GoldilocksExt2::from_base(e * wi) * denom;
        wi *= omega;
    }
    let barycentric = zn * n_inv * sum;
    assert_eq!(direct, barycentric);
}

#[test]
fn wider_traces_cost_more_simulated_time() {
    let config = FriConfig::standard();
    let narrow = random_trace(256, 2, 4);
    let wide = random_trace(256, 8, 5);

    let mut b1 = LdeBackend::simulated(presets::a100_nvlink(4));
    let _ = commit_trace(&narrow, &config, &mut b1);
    let mut b2 = LdeBackend::simulated(presets::a100_nvlink(4));
    let _ = commit_trace(&wide, &config, &mut b2);
    assert!(b2.sim_time_ns() > b1.sim_time_ns());
}
