//! End-to-end ZKP pipeline: prove knowledge of `x` with `x³ + x + 5 = y`,
//! then prove a larger random circuit on three backends — CPU, the
//! status-quo simulated machine (multi-GPU MSM, single-GPU NTT), and the
//! UniNTT machine (both multi-GPU) — and show the end-to-end effect the
//! paper motivates.
//!
//! ```bash
//! cargo run --release --example proof_pipeline
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{Bn254Fr, PrimeField};
use unintt_gpu_sim::presets;
use unintt_zkp::{cubic_circuit, prove, random_circuit, setup, verify, Backend};

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);

    // Part 1: the classic toy statement.
    println!("--- proving x³ + x + 5 = y (x = 3) ---");
    let (circuit, witness, y) = cubic_circuit(Bn254Fr::from_u64(3));
    let (pk, vk) = setup(&circuit, &mut rng);
    let proof = prove(&pk, &witness, &[y], &mut Backend::cpu());
    println!("statement : y = {y}");
    println!("proof     : {} commitments + 9 evaluations", 5);
    println!("verified  : {}\n", verify(&vk, &proof, &[y]));
    assert!(verify(&vk, &proof, &[y]));

    // Part 2: a bigger circuit across the three backends.
    let rows = 1 << 10;
    println!("--- proving a random circuit of {rows} gates on three backends ---");
    let (circuit, witness) = random_circuit(rows, &mut rng);
    let (pk, vk) = setup(&circuit, &mut rng);

    let wall = std::time::Instant::now();
    let cpu_proof = prove(&pk, &witness, &[], &mut Backend::cpu());
    println!(
        "CPU backend      : proved in {:?} (wall clock)",
        wall.elapsed()
    );

    let mut status_quo = Backend::simulated(presets::a100_nvlink(1), presets::a100_nvlink(8));
    let sq_proof = prove(&pk, &witness, &[], &mut status_quo);
    let r_sq = status_quo.report();
    println!(
        "status quo       : {:>9.1} µs simulated  (NTT {:>4.1}% on 1 GPU, MSM on 8)",
        r_sq.total_ns() / 1e3,
        100.0 * r_sq.ntt_fraction()
    );

    let mut unintt = Backend::simulated(presets::a100_nvlink(8), presets::a100_nvlink(8));
    let u_proof = prove(&pk, &witness, &[], &mut unintt);
    let r_u = unintt.report();
    println!(
        "UniNTT system    : {:>9.1} µs simulated  (NTT {:>4.1}% on 8 GPUs, MSM on 8)",
        r_u.total_ns() / 1e3,
        100.0 * r_u.ntt_fraction()
    );

    assert_eq!(cpu_proof, sq_proof);
    assert_eq!(cpu_proof, u_proof);
    assert!(verify(&vk, &u_proof, &[]));
    println!("\nall three backends produced the identical, verifying proof ✓");
    println!(
        "end-to-end gain from multi-GPU NTT at this size: {:.2}x",
        r_sq.total_ns() / r_u.total_ns()
    );
    println!("(production circuits are 2^20+ gates; see `harness e8` for projections)");
}
