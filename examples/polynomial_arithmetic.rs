//! Polynomial arithmetic with the NTT library: large products, coset
//! low-degree extension (the STARK/FRI workhorse), and negacyclic
//! multiplication (the lattice-crypto workhorse) — the workloads whose
//! inner loop the paper accelerates.
//!
//! ```bash
//! cargo run --release --example polynomial_arithmetic
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{horner_eval, Field, Goldilocks};
use unintt_ntt::{
    low_degree_extension, negacyclic_mul_naive, poly_mul_naive, poly_mul_ntt, standard_shift,
    NegacyclicNtt, Ntt,
};

fn random_vec(n: usize, seed: u64) -> Vec<Goldilocks> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Goldilocks::random(&mut rng)).collect()
}

fn main() {
    // 1. Big polynomial product: O(n log n) vs O(n²).
    let degree = 1 << 13;
    let a = random_vec(degree, 1);
    let b = random_vec(degree, 2);

    let t = std::time::Instant::now();
    let fast = poly_mul_ntt(&a, &b);
    let t_fast = t.elapsed();
    let t = std::time::Instant::now();
    let slow = poly_mul_naive(&a, &b);
    let t_slow = t.elapsed();
    assert_eq!(fast, slow);
    println!(
        "degree-{degree} product : NTT {t_fast:?} vs schoolbook {t_slow:?} (identical results)"
    );

    // 2. Low-degree extension: evaluate a committed polynomial on a 4x
    // larger coset, as every STARK prover does per column.
    let n = 1 << 10;
    let evals = {
        let coeffs = random_vec(n, 3);
        let ntt = Ntt::<Goldilocks>::new(10);
        let mut e = coeffs.clone();
        ntt.forward(&mut e);
        // Spot-check the LDE against direct evaluation at one point.
        let shift = standard_shift::<Goldilocks>();
        let extended = low_degree_extension(&e, 2, shift);
        let omega_big = Ntt::<Goldilocks>::new(12).table().omega();
        let x = shift * omega_big.pow(1234);
        assert_eq!(extended[1234], horner_eval(&coeffs, x));
        println!(
            "LDE                  : 2^10 evaluations -> 2^12 coset evaluations (spot-checked)"
        );
        e
    };
    let _ = evals;

    // 3. Negacyclic multiplication in F[x]/(x^n + 1).
    let n = 1 << 8;
    let nc = NegacyclicNtt::<Goldilocks>::new(8);
    let p = random_vec(n, 4);
    let q = random_vec(n, 5);
    let prod = nc.negacyclic_mul(&p, &q);
    assert_eq!(prod, negacyclic_mul_naive(&p, &q));
    println!("negacyclic product   : x^{n} ≡ -1 wraparound verified against schoolbook");

    println!("\nall fast paths matched their quadratic reference implementations ✓");
}
