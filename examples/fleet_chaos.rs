//! Fleet resilience walkthrough: three independent clusters behind a
//! rendezvous shard router serve a bursty multi-tenant stream while a
//! scripted chaos plan kills one cluster mid-burst and revives it later.
//! In-flight and queued work fails over to the survivors, the circuit
//! breaker quarantines the dead cluster, half-open probes re-admit it
//! after revival — and the completed outputs are bit-identical to a
//! fault-free run. Everything happens on the simulated clock, so the
//! output is identical on every run.
//!
//! ```bash
//! cargo run --release --example fleet_chaos [jobs]
//! ```

use unintt_serve::{ChaosPlan, FleetConfig, FleetReport, FleetService, WorkloadSpec};

fn play(spec: &WorkloadSpec, chaos: ChaosPlan) -> FleetReport {
    let mut fleet = FleetService::new(FleetConfig {
        chaos,
        ..FleetConfig::default()
    });
    fleet.submit_all(spec.generate());
    fleet.run()
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96);

    println!("Fleet: 3 clusters x 2 leases of 2 nodes x 2 A100, {jobs} bursty jobs\n");

    // First pass: fault-free. Its horizon anchors the chaos schedule and
    // its digests are the bits every chaos run must reproduce.
    let spec = WorkloadSpec::bursty(0xc4a05, jobs, 50_000.0);
    let calm = play(&spec, ChaosPlan::none());
    let horizon = calm.metrics.horizon_ns;
    println!(
        "fault-free: {} completed in {:.1} ms ({:.0} jobs/s)",
        calm.metrics.completed(),
        horizon / 1e6,
        calm.metrics.throughput_jobs_per_s()
    );

    // Second pass: same stream, but cluster 0 dies a quarter of the way
    // in and comes back at 70% of the fault-free horizon.
    let storm = play(
        &spec,
        ChaosPlan::kill_revive(0, 0.25 * horizon, 0.7 * horizon),
    );
    let f = &storm.fleet;
    println!(
        "kill-revive: {} completed in {:.1} ms ({:.0} jobs/s)",
        storm.metrics.completed(),
        storm.metrics.horizon_ns / 1e6,
        storm.metrics.throughput_jobs_per_s()
    );
    println!(
        "  failovers {} | quarantines {} | probes {} | readmissions {} | hedges {}",
        f.failovers, f.quarantines, f.probes, f.readmissions, f.hedges
    );
    for (ci, (avail, state)) in f.availability.iter().zip(&f.final_states).enumerate() {
        println!(
            "  cluster {ci}: {:.1}% routable, drained {state}",
            100.0 * avail
        );
    }

    // The chaos harness invariants, asserted the same way E17 does.
    assert!(storm.zero_accepted_failures(), "no accepted job may fail");
    let calm_digests = calm.digests();
    let storm_digests = storm.digests();
    assert!(
        calm_digests
            .iter()
            .all(|(id, d)| storm_digests.get(id).is_none_or(|x| x == d)),
        "failover must not change output bits"
    );
    println!(
        "\nzero accepted-job failures; {} completed digests bit-identical to the fault-free run",
        storm_digests.len()
    );
}
