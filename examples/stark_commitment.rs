//! Transparent (hash-based) trace commitment: low-degree-extend an
//! execution trace, Merkle-commit it, and prove the extension is
//! low-degree with FRI — the STARK prover's opening move, on the CPU and
//! on the simulated multi-GPU machine.
//!
//! ```bash
//! cargo run --release --example stark_commitment
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unintt_ff::{Field, Goldilocks, GoldilocksExt2};
use unintt_fri::{
    commit_trace, open_trace, prove_stark, verify_opening, verify_stark, verify_trace,
    FibonacciAir, FriConfig, LdeBackend,
};
use unintt_gpu_sim::presets;

fn main() {
    let config = FriConfig::standard();
    let (rows, width) = (1usize << 12, 6);
    println!(
        "committing a {rows}×{width} Goldilocks trace (blowup {}, {} FRI queries)\n",
        1 << config.log_blowup,
        config.num_queries
    );

    // A toy "VM trace": column 0 is a Fibonacci run, the rest random.
    let mut rng = StdRng::seed_from_u64(99);
    let mut fib = vec![Goldilocks::ONE, Goldilocks::ONE];
    for i in 2..rows {
        let next = fib[i - 1] + fib[i - 2];
        fib.push(next);
    }
    let mut trace = vec![fib];
    for _ in 1..width {
        trace.push((0..rows).map(|_| Goldilocks::random(&mut rng)).collect());
    }

    // CPU reference.
    let wall = std::time::Instant::now();
    let cpu_commitment = commit_trace(&trace, &config, &mut LdeBackend::cpu());
    println!(
        "CPU backend    : committed in {:?} (wall clock)",
        wall.elapsed()
    );

    // Simulated machines.
    for gpus in [1usize, 8] {
        let mut backend = LdeBackend::simulated(presets::a100_nvlink(gpus));
        let commitment = commit_trace(&trace, &config, &mut backend);
        assert_eq!(
            commitment.trace_root, cpu_commitment.trace_root,
            "simulated backend must reproduce the CPU commitment"
        );
        println!(
            "{gpus}×A100 (sim)   : {:>9.1} µs simulated",
            backend.sim_time_ns() / 1e3
        );
    }

    assert!(verify_trace(&cpu_commitment, &config));
    println!(
        "\ncommitment root: {:016x}…  — verified ✓",
        cpu_commitment.trace_root.as_u64()
    );
    println!(
        "FRI: {} layers folded down to {} values, {} spot checks",
        cpu_commitment.fri_proof.layer_roots.len(),
        cpu_commitment.fri_proof.final_codeword.len(),
        cpu_commitment.fri_proof.queries.len()
    );

    // DEEP opening: prove the columns' values at a random out-of-domain
    // extension point (the STARK consistency-check primitive).
    let zeta = GoldilocksExt2::random(&mut rng);
    let opening = open_trace(&trace, zeta, &config, &mut LdeBackend::cpu());
    assert!(verify_opening(&opening, zeta, &config));
    println!(
        "DEEP opening at ζ ∈ F_p²: {} column evaluations proven and verified ✓",
        opening.evals.len()
    );
    // And the full STARK: prove a Fibonacci computation end to end.
    let (air, fib_trace) = FibonacciAir::generate(1 << 10);
    let stark = prove_stark(&air, &fib_trace, &config, &mut LdeBackend::cpu());
    assert!(verify_stark(&air, &stark, &config));
    println!("full STARK: proved fib(2^10) = {} — verified ✓", air.result);

    println!("\n(production traces are 2^20+ rows; see `harness e11` for projections)");
}
