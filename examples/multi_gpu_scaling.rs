//! Multi-GPU scaling explorer: sweep GPU counts, fields, and interconnect
//! topologies for one transform size, printing the speedup matrix — the
//! fast way to see where multi-GPU NTT pays off on *your* machine shape.
//!
//! ```bash
//! cargo run --release --example multi_gpu_scaling [log_n]
//! ```

use unintt_core::{single_gpu, UniNttEngine, UniNttOptions};
use unintt_ff::{Bn254Fr, Goldilocks, TwoAdicField};
use unintt_gpu_sim::{presets, FieldSpec, Machine, MachineConfig, Topology};

fn simulated_ns<F: TwoAdicField>(log_n: u32, cfg: &MachineConfig, fs: FieldSpec) -> f64 {
    let engine = UniNttEngine::<F>::new(log_n, cfg, UniNttOptions::tuned_for(&fs), fs);
    let mut machine = Machine::new(cfg.clone(), fs);
    engine.simulate_forward(&mut machine, 1);
    machine.max_clock_ns()
}

fn single_ns<F: TwoAdicField>(log_n: u32, fs: FieldSpec) -> f64 {
    let cfg = presets::a100_nvlink(1);
    let engine = single_gpu::engine::<F>(log_n, &cfg, fs);
    let mut machine = single_gpu::machine(&cfg, fs);
    engine.simulate_forward(&mut machine, 1);
    machine.max_clock_ns()
}

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    println!("UniNTT speedup vs 1×A100, transform size 2^{log_n}\n");
    println!(
        "{:<12} {:<22} {:>6} {:>6} {:>6}",
        "field", "topology", "2 GPU", "4 GPU", "8 GPU"
    );
    println!("{}", "-".repeat(56));

    for (fs, name) in [
        (FieldSpec::goldilocks(), "Goldilocks"),
        (FieldSpec::bn254_fr(), "BN254-Fr"),
    ] {
        let t1 = if name == "Goldilocks" {
            single_ns::<Goldilocks>(log_n, fs)
        } else {
            single_ns::<Bn254Fr>(log_n, fs)
        };
        for (topology, tname) in [
            (Topology::AllToAll, "NVSwitch all-to-all"),
            (Topology::Ring, "NVLink ring"),
            (Topology::HostBounce, "PCIe host-bounce"),
        ] {
            let mut cells = Vec::new();
            for gpus in [2usize, 4, 8] {
                let mut cfg = presets::a100_nvlink(gpus);
                cfg.interconnect.topology = topology;
                if topology == Topology::HostBounce {
                    cfg.interconnect.per_gpu_bandwidth_gbps = 32.0;
                    cfg.interconnect.host_aggregate_bandwidth_gbps = 64.0;
                    cfg.interconnect.latency_ns = 15_000.0;
                }
                let t = if name == "Goldilocks" {
                    simulated_ns::<Goldilocks>(log_n, &cfg, fs)
                } else {
                    simulated_ns::<Bn254Fr>(log_n, &cfg, fs)
                };
                cells.push(format!("{:.2}x", t1 / t));
            }
            println!(
                "{:<12} {:<22} {:>6} {:>6} {:>6}",
                name, tname, cells[0], cells[1], cells[2]
            );
        }
    }
    println!("\n>1x: the multi-GPU configuration beats a single GPU of the same model.");
    println!("Topology decides everything: NTT is communication-bound.");
}
