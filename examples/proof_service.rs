//! Multi-tenant proving service walkthrough: three tenants feed a mixed
//! stream of raw NTTs, a PLONK proof and a STARK commitment through the
//! channel front door, the coalescer folds compatible NTTs into shared
//! dispatches on two GPU leases, and the run ends with the per-class
//! latency/throughput report — all on the simulated clock, so the output
//! is identical on every run.
//!
//! ```bash
//! cargo run --release --example proof_service [jobs]
//! ```

use std::sync::mpsc;

use unintt_ntt::Direction;
use unintt_serve::{
    JobClass, JobSpec, Priority, ProofService, SchedulerPolicy, ServiceConfig, ServiceField,
    WorkloadMix, WorkloadSpec,
};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);

    println!("Proof service: {jobs} mixed jobs, 2 leases of 2 nodes x 2 A100\n");

    // A service with the default shape: 2 leases, 25 µs coalescing
    // window, priority scheduling, capacity-512 admission queue.
    let mut service = ProofService::new(ServiceConfig {
        policy: SchedulerPolicy::Priority,
        ..ServiceConfig::default()
    });

    // Tenants submit through a plain mpsc channel; the service drains it
    // into its backlog. Here the "tenants" are a seeded generator plus a
    // couple of hand-written jobs showing the typed front door.
    let (tx, rx) = mpsc::channel();
    let stream = WorkloadSpec {
        mix: WorkloadMix::mixed(),
        ..WorkloadSpec::raw_only(0x5e21ce, jobs, 40_000.0)
    }
    .generate();
    let last_arrival = stream.last().map_or(0.0, |j| j.arrival_ns);
    for spec in stream {
        tx.send(spec).expect("receiver alive");
    }

    // An urgent inverse NTT from tenant 9 and a background STARK
    // commitment, arriving just after the generated burst.
    tx.send(JobSpec {
        priority: Priority::High,
        ..JobSpec::new(
            9,
            JobClass::RawNtt {
                field: ServiceField::Goldilocks,
                log_n: 10,
                direction: Direction::Inverse,
            },
            last_arrival + 1_000.0,
        )
    })
    .expect("receiver alive");
    tx.send(JobSpec {
        priority: Priority::Low,
        ..JobSpec::new(
            9,
            JobClass::StarkCommit {
                log_trace: 8,
                columns: 4,
            },
            last_arrival + 2_000.0,
        )
    })
    .expect("receiver alive");

    let ids = service.ingest(&rx);
    println!("ingested {} jobs via the channel front door", ids.len());

    let report = service.run();
    println!("\n{}", report.metrics.render());

    // A few individual outcomes, to show what callers get back per job.
    println!("first outcomes:");
    for o in report.outcomes.iter().take(6) {
        println!(
            "  {} tenant {} {:<12} batch {} latency {:.1} us",
            o.id,
            o.tenant,
            o.class_name,
            o.batch_size,
            o.latency_ns() * 1e-3,
        );
    }
    assert!(
        report.all_completed(),
        "nothing should be shed at this load"
    );
}
