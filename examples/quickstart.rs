//! Quickstart: run one NTT three ways — CPU reference, simulated
//! single GPU, and simulated 8-GPU UniNTT — and check they agree bit for
//! bit while the simulated clocks tell the performance story.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rand::{rngs::StdRng, SeedableRng};
use unintt_core::{single_gpu, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Field, Goldilocks};
use unintt_gpu_sim::{presets, FieldSpec, Machine};
use unintt_ntt::Ntt;

fn main() {
    let log_n = 22u32;
    let n = 1usize << log_n;
    println!("forward NTT of 2^{log_n} Goldilocks elements\n");

    let mut rng = StdRng::seed_from_u64(7);
    let input: Vec<Goldilocks> = (0..n).map(|_| Goldilocks::random(&mut rng)).collect();

    // 1. CPU reference.
    let cpu = Ntt::<Goldilocks>::new(log_n);
    let mut expected = input.clone();
    cpu.forward(&mut expected);
    println!("CPU reference        : done (ground truth)");

    let fs = FieldSpec::goldilocks();
    let cfg = presets::a100_nvlink(8);

    // 2. Simulated single A100.
    let engine1 = single_gpu::engine::<Goldilocks>(log_n, &cfg, fs);
    let mut machine1 = single_gpu::machine(&cfg, fs);
    let mut data1 = Sharded::distribute(&input, 1, ShardLayout::Cyclic);
    engine1.forward(&mut machine1, &mut data1);
    assert_eq!(data1.collect(), expected, "single-GPU result must match");
    let t1 = machine1.max_clock_ns();
    println!("1×A100 (simulated)   : {:>10.1} µs", t1 / 1e3);

    // 3. UniNTT on eight simulated A100s.
    let engine8 = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::full(), fs);
    let mut machine8 = Machine::new(cfg, fs);
    let mut data8 = Sharded::distribute(&input, 8, ShardLayout::Cyclic);
    engine8.forward(&mut machine8, &mut data8);
    assert_eq!(data8.collect(), expected, "multi-GPU result must match");
    let t8 = machine8.max_clock_ns();
    println!("8×A100 UniNTT        : {:>10.1} µs", t8 / 1e3);

    println!("\nspeedup 8 vs 1 GPU   : {:.2}x", t1 / t8);
    let stats = machine8.stats();
    println!(
        "inter-GPU traffic    : {} bytes over {} collectives",
        stats.interconnect_bytes_sent, stats.collectives
    );

    // The simulator records an Nsight-style event timeline per device.
    println!("\nGPU 0 timeline (simulated):");
    for event in machine8.timeline(0).events() {
        println!(
            "  {:>8.1} µs  +{:>7.1} µs  {:<22} [{}]",
            event.start_ns / 1e3,
            event.duration_ns / 1e3,
            event.name,
            event.category
        );
    }

    println!("\nall three computations produced identical results ✓");
}
