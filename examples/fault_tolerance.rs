//! Fault-tolerance walkthrough: inject a straggler GPU and a dropped
//! all-to-all into an 8-GPU forward NTT, let the recovery layer repair
//! the run, and print the recovery timeline straight from the simulator
//! trace — where the fault hit, what it cost, and proof the output is
//! still bit-exact.
//!
//! ```bash
//! cargo run --release --example fault_tolerance [log_n]
//! ```

use unintt_core::{RecoveryPolicy, ShardLayout, Sharded, UniNttEngine, UniNttOptions};
use unintt_ff::{Goldilocks, PrimeField};
use unintt_gpu_sim::{presets, Category, FaultEvent, FaultKind, FaultPlan, FieldSpec, Machine};
use unintt_ntt::Ntt;

fn main() {
    let log_n: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    let gpus = 8;
    let fs = FieldSpec::goldilocks();

    println!("Fault-tolerant UniNTT: 2^{log_n} Goldilocks forward on {gpus}×A100\n");

    // The script, over two back-to-back transforms: GPU 5 turns into a
    // 2.5× straggler at the first transform's all-to-all (collective #0),
    // then the second transform's all-to-all (collective #1) is dropped
    // on the wire and must be retried.
    let plan = FaultPlan::scripted(vec![
        FaultEvent {
            seq: 0,
            kind: FaultKind::Straggler {
                device: 5,
                factor: 2.5,
            },
        },
        FaultEvent {
            seq: 1,
            kind: FaultKind::Drop,
        },
    ]);

    let cfg = presets::a100_nvlink(gpus);
    let engine = UniNttEngine::<Goldilocks>::new(log_n, &cfg, UniNttOptions::tuned_for(&fs), fs);
    let mut machine = Machine::new(cfg, fs);
    machine.set_fault_plan(plan);

    let input: Vec<Goldilocks> = (0..1usize << log_n)
        .map(|i| Goldilocks::from_u64(i as u64 + 1))
        .collect();
    let mut first = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);
    let mut second = Sharded::distribute(&input, gpus, ShardLayout::Cyclic);

    let policy = RecoveryPolicy::default();
    engine
        .try_forward(&mut machine, &mut first, &policy)
        .expect("straggler slows the run but cannot fail it");
    engine
        .try_forward(&mut machine, &mut second, &policy)
        .expect("the dropped all-to-all is retried within the policy budget");

    // --- What happened: the injected faults, in execution order. ---
    println!("injected faults:");
    for e in machine.fault_log() {
        println!("  collective #{:<3} {:?}", e.seq, e.kind);
    }

    // --- The recovery timeline, from the device trace. ---
    // Fault-category events are the detection timeouts, retry backoff,
    // and retransmissions the recovery layer charged to the clock.
    println!("\nrecovery timeline (GPU 0 trace, fault events only):");
    for e in machine.timeline(0).events() {
        if e.category == Category::Fault {
            println!(
                "  {:>10.2} µs  +{:>8.2} µs  {}",
                e.start_ns / 1e3,
                e.duration_ns / 1e3,
                e.name
            );
        }
    }

    // The straggler shows up as stretched kernels, not fault events:
    // compare a healthy device's busy time against GPU 5's.
    let busy = |d: usize| -> f64 {
        machine
            .timeline(d)
            .events()
            .iter()
            .filter(|e| e.category != Category::Fault)
            .map(|e| e.duration_ns)
            .sum()
    };
    println!(
        "\nstraggler impact: GPU 0 busy {:.1} µs, GPU 5 busy {:.1} µs ({:.2}× slower)",
        busy(0) / 1e3,
        busy(5) / 1e3,
        busy(5) / busy(0)
    );

    // --- The bill, and the proof the answer survived. ---
    let stats = machine.stats();
    println!("\nrecovery cost (counters sum across all {gpus} device streams):");
    println!("  retries:              {}", stats.retries);
    println!("  faults injected:      {}", stats.faults_injected);
    println!(
        "  fault time:           {:.1} µs of {:.1} µs total ({:.2}%)",
        stats.time_ns.get(Category::Fault) / 1e3,
        machine.max_clock_ns() / 1e3,
        100.0 * stats.time_ns.get(Category::Fault) / machine.max_clock_ns()
    );

    let mut reference = input;
    Ntt::<Goldilocks>::new(log_n).forward(&mut reference);
    assert_eq!(first.collect(), reference);
    assert_eq!(second.collect(), reference);
    println!("\nboth transforms bit-identical to the CPU reference ✓");
}
