//! Umbrella crate: see member crates. Hosts workspace-level integration tests and examples.
pub use unintt_core as core_engine;
